//! Cross-crate durability: the same storage substrate the server uses must
//! survive process "restarts" (drop + reopen) and torn writes, end to end
//! through the inverted index and the metadata engine.

use std::ops::Bound;

use memex::index::index::{IndexOptions, InvertedIndex};
use memex::index::search::{bm25_search, Bm25Params};
use memex::store::kv::{KvStore, KvStoreOptions};
use memex::store::rel::{ColType, Column, Database, Predicate, Schema, Value};
use memex::text::analyze::Analyzer;
use memex::text::vocab::Vocabulary;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("memex-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn indexed_corpus_survives_restart_and_answers_queries() {
    let dir = tmpdir("index");
    let analyzer = Analyzer::default();
    let mut vocab = Vocabulary::new();
    let docs = [
        (1u32, "bach organ fugue baroque music archive"),
        (2u32, "mountain cycling trail gear reviews"),
        (3u32, "bach cantata recordings and scores"),
    ];
    {
        let mut index = InvertedIndex::open_dir(&dir, IndexOptions::default()).unwrap();
        for (id, text) in docs {
            let tf = analyzer.index_document(&mut vocab, text);
            index.add_document(id, &tf).unwrap();
        }
        index.checkpoint().unwrap();
    }
    {
        let index = InvertedIndex::open_dir(&dir, IndexOptions::default()).unwrap();
        assert_eq!(index.num_docs(), 3);
        let bach = vocab.id(&memex::text::stem::stem("bach")).unwrap();
        let hits = bm25_search(&index, &[(bach, 1)], 10, Bm25Params::default()).unwrap();
        let pages: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert!(pages.contains(&1) && pages.contains(&3) && !pages.contains(&2));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metadata_db_and_term_store_recover_from_torn_wal() {
    let dir = tmpdir("torn");
    {
        let mut kv = KvStore::open_dir(&dir, "terms", KvStoreOptions::default()).unwrap();
        for i in 0..200u32 {
            kv.put(format!("df:{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        kv.wal_mut().sync().unwrap();
        // Crash mid-write of the last record.
        kv.wal_mut().tear_tail(5).unwrap();
    }
    {
        let mut kv = KvStore::open_dir(&dir, "terms", KvStoreOptions::default()).unwrap();
        assert!(kv.stats().recovered_torn_tail);
        // At most one record lost; everything else ordered and intact.
        assert!(kv.len() >= 199);
        let all = kv.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        kv.check().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn relational_catalog_round_trips_through_restart() {
    let dir = tmpdir("rel");
    {
        let mut db = Database::open_dir(&dir).unwrap();
        let users = db
            .create_table(
                Schema::new(
                    "users",
                    vec![
                        Column::unique("name", ColType::Text),
                        Column::new("joined", ColType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        for (i, name) in ["soumen", "sandy", "manyam", "mits"].iter().enumerate() {
            db.insert(
                &users,
                vec![Value::Text(name.to_string()), Value::Int(i as i64)],
            )
            .unwrap();
        }
        db.checkpoint().unwrap();
    }
    {
        let mut db = Database::open_dir(&dir).unwrap();
        let users = db.table("users").unwrap();
        assert_eq!(db.count(&users).unwrap(), 4);
        let hit = db
            .lookup_unique(&users, "name", &Value::Text("mits".into()))
            .unwrap();
        assert!(hit.is_some());
        // Uniqueness still enforced after restart.
        assert!(db
            .insert(&users, vec![Value::Text("soumen".into()), Value::Int(9)])
            .is_err());
        // Predicate scans still work.
        let recent = db
            .scan(
                &users,
                &Predicate::cmp("joined", memex::store::rel::CmpOp::Ge, Value::Int(2)),
            )
            .unwrap();
        assert_eq!(recent.len(), 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
