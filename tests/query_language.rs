//! End-to-end query-language test: the search-box syntax over a corpus
//! indexed through the full analyzer pipeline (positions included).

use memex::index::index::{IndexOptions, InvertedIndex};
use memex::index::query::{execute, Query};
use memex::text::analyze::Analyzer;
use memex::text::vocab::Vocabulary;
use memex::web::corpus::{Corpus, CorpusConfig};

#[test]
fn search_box_syntax_over_an_analyzed_corpus() {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: 3,
        pages_per_topic: 30,
        ..CorpusConfig::default()
    });
    let analyzer = Analyzer::default();
    let mut vocab = Vocabulary::new();
    let mut index = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
    for p in &corpus.pages {
        let full = format!("{} {}", p.title, p.text);
        analyzer.index_document(&mut vocab, &full);
        let seq = analyzer.intern_sequence(&mut vocab, &full);
        index.add_document_positional(p.id, &seq).unwrap();
    }
    index.commit().unwrap();

    // Topic names are two words, e.g. "classical music": ranked search
    // for the name should surface that topic.
    let name0 = corpus.topic_names[0].clone();
    let q = Query::parse(&name0);
    let hits = execute(&index, &vocab, &analyzer, &q, 10).unwrap();
    assert!(!hits.is_empty());
    let on_topic = hits.iter().filter(|h| corpus.topic_of(h.doc) == 0).count();
    assert!(on_topic * 2 > hits.len(), "ranked hits mostly on topic 0");

    // Exclusion: remove a topic-0 anchor word and topic-0 pages vanish
    // from the results for a generic shared term.
    let anchor = name0.split_whitespace().next().unwrap();
    let q = Query::parse(&format!("common0 -{anchor}"));
    let hits = execute(&index, &vocab, &analyzer, &q, 20).unwrap();
    for h in &hits {
        let text = format!(
            "{} {}",
            corpus.pages[h.doc as usize].title, corpus.pages[h.doc as usize].text
        );
        let stems: Vec<String> = analyzer.term_sequence(&text);
        let banned = analyzer.term_sequence(anchor);
        for b in &banned {
            assert!(
                !stems.contains(b),
                "excluded term {b} present in hit {}",
                h.doc
            );
        }
    }

    // Phrase: a literal two-word run from a real page must be findable.
    let page = &corpus.pages[corpus.pages.iter().position(|p| !p.is_front).unwrap()];
    let words: Vec<&str> = page.text.split_whitespace().take(2).collect();
    let q = Query::parse(&format!("\"{} {}\"", words[0], words[1]));
    let hits = execute(&index, &vocab, &analyzer, &q, 50).unwrap();
    assert!(
        hits.iter().any(|h| h.doc == page.id),
        "phrase {:?} should find its source page",
        words
    );

    // Must-term: +word restricts to documents containing it.
    let q = Query::parse(&format!("common1 +{anchor}"));
    let hits = execute(&index, &vocab, &analyzer, &q, 20).unwrap();
    let anchor_stem = &analyzer.term_sequence(anchor)[0];
    for h in &hits {
        let text = format!(
            "{} {}",
            corpus.pages[h.doc as usize].title, corpus.pages[h.doc as usize].text
        );
        assert!(analyzer.term_sequence(&text).contains(anchor_stem));
    }
}
