//! Facade-level scenario tests through the `memex` umbrella crate —
//! exactly what a downstream user of the library would write.

use std::sync::Arc;

use memex::core::memex::{Memex, MemexOptions};
use memex::core::servlet::{dispatch, Request, Response};
use memex::server::events::{ArchiveMode, ClientEvent, VisitEvent};
use memex::web::corpus::{Corpus, CorpusConfig};

fn small_world() -> (Arc<Corpus>, Memex) {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 3,
        pages_per_topic: 25,
        ..CorpusConfig::default()
    }));
    let memex = Memex::new(corpus.clone(), MemexOptions::default()).unwrap();
    (corpus, memex)
}

fn visit(user: u32, page: u32, time: u64, referrer: Option<u32>) -> ClientEvent {
    ClientEvent::Visit(VisitEvent {
        user,
        session: 0,
        page,
        url: format!("http://page{page}"),
        time,
        referrer,
    })
}

#[test]
fn privacy_modes_respected_through_the_facade() {
    let (_, mut memex) = small_world();
    memex.register_user(1, "private-person").unwrap();
    memex.register_user(2, "public-person").unwrap();
    memex.submit(ClientEvent::SetMode {
        user: 1,
        mode: ArchiveMode::Private,
        time: 0,
    });
    memex.submit(visit(1, 5, 10, None));
    memex.submit(visit(2, 5, 20, None));
    memex.run_demons().unwrap();
    // Community popularity counts only the public visit.
    let pop = memex.server.trails.popularity(0);
    assert_eq!(pop.get(&5), Some(&1));
    // The private user still recalls their own page.
    let own = memex.server.trails.user_pages(1, 0);
    assert_eq!(own, vec![5]);
}

#[test]
fn off_mode_archives_nothing() {
    let (_, mut memex) = small_world();
    memex.register_user(1, "ghost").unwrap();
    memex.submit(ClientEvent::SetMode {
        user: 1,
        mode: ArchiveMode::Off,
        time: 0,
    });
    assert!(!memex.submit(visit(1, 3, 10, None)));
    memex.run_demons().unwrap();
    assert!(memex.server.trails.is_empty());
    assert_eq!(memex.server.stats().events_mode_filtered, 1);
}

#[test]
fn bookmark_then_classify_marks_guesses() {
    let (corpus, mut memex) = small_world();
    memex.register_user(7, "curator").unwrap();
    // Bookmark two pages from different topics; visit a third unfiled page.
    let t0_pages = corpus.pages_of_topic(0);
    let t1_pages = corpus.pages_of_topic(1);
    for (i, &p) in t0_pages.iter().skip(8).take(3).enumerate() {
        memex.submit(visit(7, p, 10 + i as u64, None));
        memex.submit(ClientEvent::Bookmark {
            user: 7,
            page: p,
            url: corpus.pages[p as usize].url.clone(),
            folder: "/A".into(),
            time: 10,
        });
    }
    for (i, &p) in t1_pages.iter().skip(8).take(3).enumerate() {
        memex.submit(visit(7, p, 20 + i as u64, None));
        memex.submit(ClientEvent::Bookmark {
            user: 7,
            page: p,
            url: corpus.pages[p as usize].url.clone(),
            folder: "/B".into(),
            time: 20,
        });
    }
    // An unfiled interior page of topic 0.
    let unfiled = t0_pages[12];
    memex.submit(visit(7, unfiled, 30, None));
    memex.run_demons().unwrap();
    let fs = memex.folder_space(7);
    let a = fs
        .assignment(unfiled)
        .expect("the demon should have guessed");
    assert!(!a.confirmed, "guess must carry the '?'");
    assert_eq!(
        fs.taxonomy.path(a.folder),
        "/A",
        "topic-0 page belongs in folder A"
    );
}

#[test]
fn servlet_event_ingest_matches_direct_submit() {
    let (_, mut memex) = small_world();
    memex.register_user(1, "u").unwrap();
    let resp = dispatch(&mut memex, Request::Event(visit(1, 2, 5, None)));
    assert!(matches!(resp, Response::Ack { archived: true }));
    memex.run_demons().unwrap();
    assert_eq!(memex.server.trails.len(), 1);
}

#[test]
fn trails_follow_referrers_across_users() {
    let (_, mut memex) = small_world();
    memex.register_user(1, "a").unwrap();
    memex.register_user(2, "b").unwrap();
    memex.submit(visit(1, 10, 1, None));
    memex.submit(visit(1, 11, 2, Some(10)));
    memex.submit(visit(2, 11, 3, None));
    memex.submit(visit(2, 12, 4, Some(11)));
    memex.run_demons().unwrap();
    let ctx = memex
        .server
        .trails
        .replay_context(|p| (10..=12).contains(&p), 1, 0, 10);
    assert_eq!(ctx.nodes.len(), 3);
    assert!(ctx.edges.contains(&(10, 11, 1)));
    assert!(ctx.edges.contains(&(11, 12, 1)));
}

#[test]
fn phrase_recall_finds_exact_word_runs() {
    let (corpus, mut memex) = small_world();
    memex.register_user(1, "phraser").unwrap();
    // Visit an interior page and query a 3-word run from its own text.
    let page = corpus
        .pages
        .iter()
        .find(|p| !p.is_front && p.text.split_whitespace().count() >= 10)
        .expect("an interior page");
    memex.submit(visit(1, page.id, 50, None));
    memex.run_demons().unwrap();
    let words: Vec<&str> = page.text.split_whitespace().skip(2).take(3).collect();
    let phrase = words.join(" ");
    let hits = memex.recall_phrase(1, &phrase, 0, u64::MAX, 5).unwrap();
    assert!(
        hits.iter().any(|h| h.page == page.id),
        "phrase \"{phrase}\" should find page {} in {hits:?}",
        page.id
    );
    // A scrambled (non-consecutive) phrase from distant words should not
    // match as a phrase even though all words occur.
    let w: Vec<&str> = page.text.split_whitespace().collect();
    let scrambled = format!("{} {}", w[w.len() - 1], w[0]);
    let hits = memex.recall_phrase(1, &scrambled, 0, u64::MAX, 5).unwrap();
    // (The reversed pair could coincidentally be adjacent elsewhere; only
    // assert that the result set is never *larger* than the bag-of-words
    // recall for the same terms.)
    let bag = memex.recall(1, &scrambled, 0, u64::MAX, 5).unwrap();
    assert!(hits.len() <= bag.len());
    // Unknown vocabulary gives no hits rather than an error.
    assert!(memex
        .recall_phrase(1, "zzzunseen wordzzz", 0, u64::MAX, 5)
        .unwrap()
        .is_empty());
}

#[test]
fn umbrella_reexports_are_usable() {
    // The facade must expose every substrate for downstream use.
    let _ = memex::text::stem::stem("browsing");
    let _ = memex::store::kv::KvStore::open_memory().unwrap();
    let mut g = memex::graph::graph::WebGraph::new();
    g.add_edge(0, 1);
    let _ = memex::cluster::hac::hac_cut(&[], 1);
    let _ = memex::learn::taxonomy::Taxonomy::new();
    let c = memex::web::corpus::Corpus::generate(memex::web::corpus::CorpusConfig {
        num_topics: 2,
        pages_per_topic: 3,
        ..Default::default()
    });
    assert_eq!(c.num_pages(), 6);
}
