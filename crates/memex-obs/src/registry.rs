//! The metrics registry and its cheap instrument handles.
//!
//! Registration (name → slot) takes a lock once; after that every handle is
//! an `Arc` to an atomic slot, so the hot path is a single relaxed atomic
//! op. A registry built with [`MetricsRegistry::disabled`] hands out inert
//! handles whose operations compile to a predictable branch — cheap enough
//! to leave instrumentation in benchmark builds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::histogram::HistogramCore;
use crate::snapshot::{Event, Snapshot};

const EVENT_RING_CAPACITY: usize = 64;

#[derive(Debug, Default)]
struct CounterCore {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCore {
    value: AtomicI64,
}

enum Slot {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

struct Inner {
    enabled: bool,
    slots: RwLock<BTreeMap<String, Slot>>,
    /// subsystem → bounded ring of recent annotated events.
    events: Mutex<BTreeMap<String, Vec<Event>>>,
    event_seq: AtomicU64,
}

/// A shareable registry of named instruments. Cloning shares storage.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.inner.enabled)
            .finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        Self::with_enabled(true)
    }

    /// A registry whose handles are all no-ops (for benchmarks that need
    /// the instrumentation overhead gone).
    pub fn disabled() -> MetricsRegistry {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                enabled,
                slots: RwLock::new(BTreeMap::new()),
                events: Mutex::new(BTreeMap::new()),
                event_seq: AtomicU64::new(0),
            }),
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Get or register the counter `name` (convention: `subsystem.verb`).
    /// Registering the same name twice returns a handle to the same slot;
    /// a name already registered as a different kind returns a disabled
    /// handle (observability must never take down serving) and notes the
    /// mismatch in the `metrics` event ring.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.inner.enabled {
            return Counter { core: None };
        }
        if let Slot::Counter(c) = self.slot(name, || Slot::Counter(Arc::default())) {
            Counter { core: Some(c) }
        } else {
            self.note_kind_mismatch(name, "counter");
            Counter { core: None }
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.inner.enabled {
            return Gauge { core: None };
        }
        if let Slot::Gauge(g) = self.slot(name, || Slot::Gauge(Arc::default())) {
            Gauge { core: Some(g) }
        } else {
            self.note_kind_mismatch(name, "gauge");
            Gauge { core: None }
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.inner.enabled {
            return Histogram { core: None };
        }
        if let Slot::Histogram(h) = self.slot(name, || Slot::Histogram(Arc::default())) {
            Histogram { core: Some(h) }
        } else {
            self.note_kind_mismatch(name, "histogram");
            Histogram { core: None }
        }
    }

    /// Record a registration-kind mismatch where an operator will see it.
    fn note_kind_mismatch(&self, name: &str, wanted: &str) {
        self.event(
            "metrics",
            format!("metric {name:?} already registered as a non-{wanted}; handle disabled"),
        );
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        {
            // Recover from poison: a panicking thread elsewhere must not
            // cascade into every metric touch.
            let slots = self.inner.slots.read().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = slots.get(name) {
                return s.shallow_clone();
            }
        }
        let mut slots = self.inner.slots.write().unwrap_or_else(|e| e.into_inner());
        slots
            .entry(name.to_string())
            .or_insert_with(make)
            .shallow_clone()
    }

    /// Time a scope into histogram `name` (nanoseconds):
    /// `let _g = registry.span("index.invert");`
    pub fn span(&self, name: &str) -> SpanGuard {
        if !self.inner.enabled {
            return SpanGuard {
                hist: Histogram { core: None },
                start: None,
            };
        }
        SpanGuard {
            hist: self.histogram(name),
            start: Some(Instant::now()),
        }
    }

    /// Append an annotated event to `subsystem`'s bounded ring.
    pub fn event(&self, subsystem: &str, message: impl Into<String>) {
        if !self.inner.enabled {
            return;
        }
        let seq = self.inner.event_seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.inner.events.lock().unwrap_or_else(|e| e.into_inner());
        let ring = events.entry(subsystem.to_string()).or_default();
        if ring.len() >= EVENT_RING_CAPACITY {
            ring.remove(0);
        }
        ring.push(Event {
            seq,
            message: message.into(),
        });
    }

    /// Point-in-time copy of every instrument and event ring.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        {
            let slots = self.inner.slots.read().unwrap_or_else(|e| e.into_inner());
            for (name, slot) in slots.iter() {
                match slot {
                    Slot::Counter(c) => {
                        snap.counters
                            .push((name.clone(), c.value.load(Ordering::Relaxed)));
                    }
                    Slot::Gauge(g) => {
                        snap.gauges
                            .push((name.clone(), g.value.load(Ordering::Relaxed)));
                    }
                    Slot::Histogram(h) => {
                        snap.histograms.push((name.clone(), h.snapshot()));
                    }
                }
            }
        }
        {
            let events = self.inner.events.lock().unwrap_or_else(|e| e.into_inner());
            for (subsystem, ring) in events.iter() {
                snap.events.push((subsystem.clone(), ring.clone()));
            }
        }
        snap
    }
}

impl Slot {
    fn shallow_clone(&self) -> Slot {
        match self {
            Slot::Counter(c) => Slot::Counter(Arc::clone(c)),
            Slot::Gauge(g) => Slot::Gauge(Arc::clone(g)),
            Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
        }
    }
}

/// Monotone counter handle. `None` core = inert (disabled registry).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.core {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// Up/down gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    core: Option<Arc<GaugeCore>>,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.core {
            g.value.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.core {
            g.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if it is below (high-watermark tracking).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if let Some(g) = &self.core {
            g.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.core
            .as_ref()
            .map_or(0, |g| g.value.load(Ordering::Relaxed))
    }
}

/// Histogram handle (record arbitrary u64 values; spans record nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.core {
            h.record(value);
        }
    }

    pub fn snapshot(&self) -> crate::histogram::HistogramSnapshot {
        self.core.as_ref().map(|h| h.snapshot()).unwrap_or_default()
    }

    /// Time a scope into this histogram (nanoseconds, recorded on drop).
    /// Inert handles return a guard that records nothing.
    pub fn start_span(&self) -> SpanGuard {
        SpanGuard {
            start: self.core.is_some().then(Instant::now),
            hist: self.clone(),
        }
    }
}

/// Scope timer: records elapsed nanoseconds into its histogram on drop.
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct SpanGuard {
    hist: Histogram,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same slot.
        assert_eq!(reg.counter("t.hits").get(), 5);
        let g = reg.gauge("t.depth");
        g.set(7);
        g.add(-2);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("t.hits");
        c.inc();
        assert_eq!(c.get(), 0);
        reg.event("t", "ignored");
        let _g = reg.span("t.latency");
        drop(_g);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_record_latency() {
        let reg = MetricsRegistry::new();
        {
            let _g = reg.span("t.work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.histogram("t.work").snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 2_000_000, "recorded {} ns", snap.sum);
    }

    #[test]
    fn event_ring_is_bounded() {
        let reg = MetricsRegistry::new();
        for i in 0..200 {
            reg.event("demo", format!("e{i}"));
        }
        let snap = reg.snapshot();
        let (_, ring) = &snap.events[0];
        assert_eq!(ring.len(), EVENT_RING_CAPACITY);
        assert_eq!(ring.last().unwrap().message, "e199");
        assert!(ring[0].seq < ring[1].seq);
    }

    #[test]
    fn kind_mismatch_degrades_to_a_disabled_handle() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.x");
        c.inc();
        // Wrong kind: no panic, a disabled handle, and an operator-visible
        // event — the counter keeps its slot.
        let g = reg.gauge("t.x");
        g.set(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("t.x"), 1);
        assert!(snap.gauges.iter().all(|(n, _)| n != "t.x"));
        let (sub, ring) = &snap.events[0];
        assert_eq!(sub, "metrics");
        assert!(ring[0].message.contains("already registered"));
    }
}
