//! End-to-end request tracing: span trees, a flight recorder, and a
//! slow-request log.
//!
//! Aggregate metrics (the rest of this crate) answer "what is p99?";
//! tracing answers "why was *this* request 40 ms when the median is
//! 200 µs". The design is `std`-only and lock-light:
//!
//! - [`TraceId`]s are 64-bit, SplitMix64-derived from a seedable
//!   [`TraceIdGen`] so tests are deterministic.
//! - A request's spans are collected into a **thread-local** builder —
//!   the serving layer handles one request per worker thread, so span
//!   open/close/annotate never touches a shared lock. Deep layers
//!   (index, store) call the free functions [`span`] / [`annotate`]
//!   with zero plumbing; when no trace is active they cost one
//!   thread-local read and a branch.
//! - On completion the span tree is published to a bounded **flight
//!   recorder** ring (atomic cursor, per-slot mutex — contention is one
//!   pointer swap per trace) and, when the root span exceeds the
//!   configured threshold, to the bounded **slow-request log**.
//! - [`render_chrome_trace`] exports traces as Chrome `trace_event`
//!   JSON, loadable in `about:tracing` / Perfetto.
//!
//! A [`Tracer`] built disabled hands out inert guards; the entire layer
//! can be toggled at runtime ([`Tracer::configure`]).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

use crate::registry::{Counter, MetricsRegistry};
use crate::snapshot::json_string;

/// SplitMix64 finalizer: a full-avalanche mix of a 64-bit state.
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A 64-bit trace identifier. `0` is reserved for "no trace".
pub type TraceId = u64;

/// Seedable generator of unique [`TraceId`]s: the SplitMix64 sequence
/// starting at `seed`. Deterministic for a fixed seed, lock-free.
#[derive(Debug)]
pub struct TraceIdGen {
    state: AtomicU64,
}

const SPLITMIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl TraceIdGen {
    pub fn seeded(seed: u64) -> TraceIdGen {
        TraceIdGen {
            state: AtomicU64::new(seed),
        }
    }

    /// Next id in the sequence (never 0).
    pub fn next(&self) -> TraceId {
        let z = self
            .state
            .fetch_add(SPLITMIX_GAMMA, Ordering::Relaxed)
            .wrapping_add(SPLITMIX_GAMMA);
        let id = splitmix64(z);
        if id == 0 {
            1
        } else {
            id
        }
    }

    pub fn reseed(&self, seed: u64) {
        self.state.store(seed, Ordering::Relaxed);
    }
}

/// One completed span of a trace. Times are nanoseconds relative to the
/// root span's start, so span trees survive serialization across hosts
/// with unrelated clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Per-trace span id; ids increase with creation order, so a child's
    /// id is always greater than its parent's.
    pub id: u32,
    /// Parent span id; `None` marks the root.
    pub parent: Option<u32>,
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
    /// `key=value` annotations attached while the span was open.
    pub annotations: Vec<(String, String)>,
}

impl SpanData {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up an annotation value by key.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One completed trace: a span tree for a single request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceData {
    pub trace_id: TraceId,
    /// Spans in completion order; the root is last. Use
    /// [`TraceData::root`] / [`TraceData::span`] for lookups.
    pub spans: Vec<SpanData>,
}

impl TraceData {
    /// The root span (the one without a parent), if the tree is sane.
    pub fn root(&self) -> Option<&SpanData> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Wall time covered by the root span.
    pub fn duration_ns(&self) -> u64 {
        self.root().map_or(0, SpanData::duration_ns)
    }

    /// First span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&SpanData> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Structural sanity: exactly one root, unique ids, every parent id
    /// resolves to a span in the tree, and no span ends before it starts
    /// or outlives the root.
    pub fn is_complete(&self) -> bool {
        let roots = self.spans.iter().filter(|s| s.parent.is_none()).count();
        if roots != 1 {
            return false;
        }
        let Some(root) = self.root() else {
            return false;
        };
        let mut ids: Vec<u32> = self.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.spans.len() {
            return false;
        }
        self.spans.iter().all(|s| {
            s.end_ns >= s.start_ns
                && s.end_ns <= root.end_ns
                && s.parent.is_none_or(|p| ids.binary_search(&p).is_ok())
        })
    }
}

/// Tuning knobs for a [`Tracer`]. `Copy` so server configs can embed it.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Master switch; a disabled tracer hands out inert guards.
    pub enabled: bool,
    /// Flight-recorder capacity (completed traces retained, newest wins).
    pub recorder_capacity: usize,
    /// Root spans at or above this duration are retained in the slow log.
    pub slow_threshold_ns: u64,
    /// Slow-log capacity (oldest entries dropped first).
    pub slow_capacity: usize,
    /// Seed for server-generated trace ids (requests that arrive without
    /// a propagated trace context).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            recorder_capacity: 256,
            slow_threshold_ns: 10_000_000, // 10 ms
            slow_capacity: 64,
            seed: 0x4d45_4d45_5800, // "MEMEX"
        }
    }
}

#[derive(Debug, Clone, Default)]
struct TraceMetrics {
    started: Counter,
    completed: Counter,
    slow_retained: Counter,
    slow_dropped: Counter,
}

/// The flight recorder: a fixed ring of slots indexed by an atomic
/// cursor. Writers claim a slot with one `fetch_add` and swap an `Arc`
/// under the slot's own mutex, so concurrent completions contend only
/// when they land on the same slot.
struct Ring {
    slots: Vec<Mutex<Option<Arc<TraceData>>>>,
    cursor: AtomicUsize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }
}

struct TracerInner {
    enabled: AtomicBool,
    slow_threshold_ns: AtomicU64,
    slow_capacity: AtomicUsize,
    ring: RwLock<Ring>,
    slow: Mutex<VecDeque<Arc<TraceData>>>,
    ids: TraceIdGen,
    metrics: Mutex<TraceMetrics>,
}

/// A shareable tracing sink. Cloning shares storage (like
/// [`MetricsRegistry`]).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(TraceConfig::default())
    }
}

impl Tracer {
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(config.enabled),
                slow_threshold_ns: AtomicU64::new(config.slow_threshold_ns),
                slow_capacity: AtomicUsize::new(config.slow_capacity),
                ring: RwLock::new(Ring::with_capacity(config.recorder_capacity)),
                slow: Mutex::new(VecDeque::new()),
                ids: TraceIdGen::seeded(config.seed),
                metrics: Mutex::new(TraceMetrics::default()),
            }),
        }
    }

    /// Re-apply a configuration to a live tracer. Swapping the recorder
    /// capacity discards previously recorded traces.
    pub fn configure(&self, config: TraceConfig) {
        self.inner.enabled.store(config.enabled, Ordering::Relaxed);
        self.inner
            .slow_threshold_ns
            .store(config.slow_threshold_ns, Ordering::Relaxed);
        self.inner
            .slow_capacity
            .store(config.slow_capacity, Ordering::Relaxed);
        self.inner.ids.reseed(config.seed);
        let needs_resize = {
            let ring = lock_read(&self.inner.ring);
            ring.slots.len() != config.recorder_capacity
        };
        if needs_resize {
            let mut ring = lock_write(&self.inner.ring);
            *ring = Ring::with_capacity(config.recorder_capacity);
        }
    }

    /// Wire `trace.*` / `slowlog.*` counters into `registry`.
    pub fn attach_registry(&self, registry: &MetricsRegistry) {
        let metrics = TraceMetrics {
            started: registry.counter("trace.started"),
            completed: registry.counter("trace.completed"),
            slow_retained: registry.counter("slowlog.retained"),
            slow_dropped: registry.counter("slowlog.dropped"),
        };
        *lock_mutex(&self.inner.metrics) = metrics;
    }

    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Generate a fresh trace id from this tracer's seeded sequence.
    pub fn next_id(&self) -> TraceId {
        self.inner.ids.next()
    }

    fn metrics(&self) -> TraceMetrics {
        lock_mutex(&self.inner.metrics).clone()
    }

    /// Begin a trace rooted at `name`, adopting the propagated `id` when
    /// present (wire trace context) or minting one otherwise. Returns an
    /// inert guard when tracing is off or this thread already has an
    /// active trace (nested roots fold into the outer trace's tree).
    pub fn start_trace(&self, name: &str, id: Option<TraceId>) -> TraceGuard {
        self.start_trace_at(name, id, Instant::now())
    }

    /// [`Tracer::start_trace`] with an explicit start instant, for roots
    /// that must cover work already performed (e.g. frame decode that
    /// revealed the trace id).
    pub fn start_trace_at(&self, name: &str, id: Option<TraceId>, started: Instant) -> TraceGuard {
        if !self.enabled() {
            return TraceGuard { active: false };
        }
        let already_active = CURRENT.with(|c| c.borrow().is_some());
        if already_active {
            return TraceGuard { active: false };
        }
        let trace_id = id.unwrap_or_else(|| self.next_id());
        self.metrics().started.inc();
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(ActiveTrace {
                tracer: self.clone(),
                trace_id,
                origin: started,
                finished: Vec::new(),
                stack: vec![OpenSpan {
                    id: 0,
                    parent: None,
                    name: name.to_string(),
                    start_ns: 0,
                    annotations: Vec::new(),
                }],
                next_id: 1,
            });
        });
        TraceGuard { active: true }
    }

    /// Completed traces, newest first: the slow log when `slow_only`,
    /// else the flight recorder. At most `limit` traces are returned.
    pub fn collect(&self, slow_only: bool, limit: usize) -> Vec<TraceData> {
        if slow_only {
            let slow = lock_mutex(&self.inner.slow);
            return slow
                .iter()
                .rev()
                .take(limit)
                .map(|t| t.as_ref().clone())
                .collect();
        }
        let ring = lock_read(&self.inner.ring);
        let cap = ring.slots.len();
        if cap == 0 {
            return Vec::new();
        }
        let cursor = ring.cursor.load(Ordering::Relaxed);
        let mut out = Vec::new();
        // Walk backwards from the most recently claimed slot.
        for back in 1..=cap {
            if out.len() >= limit {
                break;
            }
            let idx = (cursor.wrapping_sub(back)) % cap;
            let slot = &ring.slots[idx];
            if let Some(t) = lock_mutex(slot).as_ref() {
                out.push(t.as_ref().clone());
            }
        }
        out
    }

    /// Number of traces currently held by the flight recorder.
    pub fn recorded(&self) -> usize {
        let ring = lock_read(&self.inner.ring);
        let mut n = 0;
        for slot in &ring.slots {
            if lock_mutex(slot).is_some() {
                n += 1;
            }
        }
        n
    }

    /// Publish a completed trace to the ring and (if slow) the slow log.
    fn finish(&self, trace: TraceData) {
        let metrics = self.metrics();
        let trace = Arc::new(trace);
        let threshold = self.inner.slow_threshold_ns.load(Ordering::Relaxed);
        if trace.duration_ns() >= threshold {
            let cap = self.inner.slow_capacity.load(Ordering::Relaxed);
            if cap > 0 {
                let mut slow = lock_mutex(&self.inner.slow);
                slow.push_back(Arc::clone(&trace));
                metrics.slow_retained.inc();
                while slow.len() > cap {
                    slow.pop_front();
                    metrics.slow_dropped.inc();
                }
            }
        }
        let ring = lock_read(&self.inner.ring);
        if !ring.slots.is_empty() {
            let idx = ring.cursor.fetch_add(1, Ordering::Relaxed) % ring.slots.len();
            let slot = &ring.slots[idx];
            *lock_mutex(slot) = Some(trace);
        }
        metrics.completed.inc();
    }
}

// Poison recovery: tracing must never take a subsystem down, so a
// panicked peer's poison is absorbed (the data is a ring of Arcs — the
// state behind a poisoned lock is still the state).
fn lock_mutex<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn lock_write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Thread-local active trace
// ---------------------------------------------------------------------------

struct OpenSpan {
    id: u32,
    parent: Option<u32>,
    name: String,
    start_ns: u64,
    annotations: Vec<(String, String)>,
}

struct ActiveTrace {
    tracer: Tracer,
    trace_id: TraceId,
    origin: Instant,
    finished: Vec<SpanData>,
    stack: Vec<OpenSpan>,
    next_id: u32,
}

impl ActiveTrace {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn close_top(&mut self, end_ns: u64) {
        if let Some(open) = self.stack.pop() {
            self.finished.push(SpanData {
                id: open.id,
                parent: open.parent,
                name: open.name,
                start_ns: open.start_ns,
                end_ns,
                annotations: open.annotations,
            });
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Closes the root span and publishes the trace when dropped. Returned
/// by [`Tracer::start_trace`]; inert when tracing was off.
#[must_use = "dropping the guard completes the trace; binding to _ completes it immediately"]
pub struct TraceGuard {
    active: bool,
}

impl TraceGuard {
    /// Whether this guard owns a live trace.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Complete the trace now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(mut at) = CURRENT.with(|c| c.borrow_mut().take()) else {
            return;
        };
        // Close every span still open (leaked child guards unwound by a
        // panic close here), root last.
        let end = at.now_ns();
        while !at.stack.is_empty() {
            at.close_top(end);
        }
        let trace = TraceData {
            trace_id: at.trace_id,
            spans: std::mem::take(&mut at.finished),
        };
        at.tracer.finish(trace);
    }
}

/// Open a child span of the current trace. No-op (one thread-local read)
/// when no trace is active on this thread.
pub fn span(name: &str) -> SpanScope {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(at) = cur.as_mut() else {
            return SpanScope { id: None };
        };
        let id = at.next_id;
        at.next_id += 1;
        let parent = at.stack.last().map(|s| s.id);
        let start_ns = at.now_ns();
        at.stack.push(OpenSpan {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            annotations: Vec::new(),
        });
        SpanScope { id: Some(id) }
    })
}

/// Append an already-timed child span (e.g. work measured before the
/// trace could start) under the currently open span.
pub fn record_span(name: &str, start: Instant, end: Instant) {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(at) = cur.as_mut() else { return };
        let id = at.next_id;
        at.next_id += 1;
        let parent = at.stack.last().map(|s| s.id);
        let start_ns = start.saturating_duration_since(at.origin).as_nanos() as u64;
        let end_ns = end.saturating_duration_since(at.origin).as_nanos() as u64;
        at.finished.push(SpanData {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            annotations: Vec::new(),
        });
    });
}

/// Attach `key=value` to the innermost open span (the root, between
/// children). No-op without an active trace.
pub fn annotate(key: &str, value: impl std::fmt::Display) {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(at) = cur.as_mut() else { return };
        if let Some(top) = at.stack.last_mut() {
            top.annotations.push((key.to_string(), value.to_string()));
        }
    });
}

/// The id of the trace active on this thread, if any.
pub fn active_trace_id() -> Option<TraceId> {
    CURRENT.with(|c| c.borrow().as_ref().map(|at| at.trace_id))
}

/// Guard for a span opened with [`span`]; closes it (and any leaked
/// children above it) on drop.
#[must_use = "a span closes on drop; binding it to _ closes it immediately"]
pub struct SpanScope {
    id: Option<u32>,
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            let Some(at) = cur.as_mut() else { return };
            let end = at.now_ns();
            // Span ids increase with depth: everything at or above `id`
            // on the stack belongs to this scope or a leaked child.
            while at.stack.last().is_some_and(|top| top.id >= id) {
                at.close_top(end);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Chrome trace_event exporter
// ---------------------------------------------------------------------------

/// Render traces as Chrome `trace_event` JSON (complete `"X"` events),
/// loadable in `about:tracing` or <https://ui.perfetto.dev>. Each trace
/// gets its own `tid` lane; timestamps are microseconds with nanosecond
/// fractions preserved.
pub fn render_chrome_trace(traces: &[TraceData]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (lane, trace) in traces.iter().enumerate() {
        for span in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"memex\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":{}",
                json_string(&span.name),
                lane + 1,
                span.start_ns as f64 / 1_000.0,
                span.duration_ns() as f64 / 1_000.0,
                trace.trace_id,
                span.id,
            ));
            if let Some(parent) = span.parent {
                out.push_str(&format!(",\"parent\":{parent}"));
            }
            for (k, v) in &span.annotations {
                out.push_str(&format!(",{}:{}", json_string(k), json_string(v)));
            }
            out.push_str("}}");
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_tracer() -> Tracer {
        Tracer::new(TraceConfig {
            enabled: true,
            recorder_capacity: 8,
            slow_threshold_ns: u64::MAX,
            slow_capacity: 4,
            seed: 7,
        })
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = TraceIdGen::seeded(42);
        let b = TraceIdGen::seeded(42);
        let ids: Vec<TraceId> = (0..64).map(|_| a.next()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        assert!((0..64).all(|i| b.next() == ids[i]));
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len());
    }

    #[test]
    fn span_tree_shape_and_annotations() {
        let tracer = enabled_tracer();
        let guard = tracer.start_trace("root", Some(99));
        annotate("who", "root");
        {
            let _a = span("child_a");
            annotate("k", 1);
            {
                let _b = span("grandchild");
            }
        }
        {
            let _c = span("child_b");
        }
        guard.finish();
        let traces = tracer.collect(false, 10);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.trace_id, 99);
        assert!(t.is_complete(), "{t:?}");
        assert_eq!(t.spans.len(), 4);
        let root = t.root().unwrap();
        assert_eq!(root.name, "root");
        assert_eq!(root.annotation("who"), Some("root"));
        let a = t.span("child_a").unwrap();
        assert_eq!(a.parent, Some(root.id));
        assert_eq!(a.annotation("k"), Some("1"));
        let g = t.span("grandchild").unwrap();
        assert_eq!(g.parent, Some(a.id));
        let b = t.span("child_b").unwrap();
        assert_eq!(b.parent, Some(root.id));
        assert!(g.start_ns >= a.start_ns && g.end_ns <= a.end_ns);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::new(TraceConfig::default());
        let guard = tracer.start_trace("root", None);
        assert!(!guard.is_active());
        assert!(active_trace_id().is_none());
        let _s = span("ignored");
        annotate("k", "v");
        drop(guard);
        assert!(tracer.collect(false, 10).is_empty());
    }

    #[test]
    fn ring_keeps_last_n() {
        let tracer = enabled_tracer(); // capacity 8
        for i in 0..20u64 {
            tracer.start_trace("t", Some(1000 + i)).finish();
        }
        let traces = tracer.collect(false, usize::MAX);
        assert_eq!(traces.len(), 8);
        // Newest first.
        let ids: Vec<TraceId> = traces.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, (1012..1020).rev().collect::<Vec<_>>());
        assert_eq!(tracer.collect(false, 3).len(), 3);
    }

    #[test]
    fn slow_log_retains_over_threshold_and_is_bounded() {
        let tracer = Tracer::new(TraceConfig {
            enabled: true,
            recorder_capacity: 32,
            slow_threshold_ns: 0, // everything is slow
            slow_capacity: 3,
            seed: 1,
        });
        for i in 0..5u64 {
            tracer.start_trace("slowpoke", Some(i + 1)).finish();
        }
        let slow = tracer.collect(true, usize::MAX);
        assert_eq!(slow.len(), 3);
        assert_eq!(slow[0].trace_id, 5); // newest first
                                         // High threshold: nothing lands in the slow log.
        let picky = enabled_tracer();
        picky.start_trace("fast", None).finish();
        assert!(picky.collect(true, usize::MAX).is_empty());
        assert_eq!(picky.collect(false, usize::MAX).len(), 1);
    }

    #[test]
    fn nested_root_folds_into_outer_trace() {
        let tracer = enabled_tracer();
        let outer = tracer.start_trace("outer", Some(5));
        let inner = tracer.start_trace("inner", Some(6));
        assert!(!inner.is_active());
        drop(inner); // must not complete the outer trace
        assert_eq!(active_trace_id(), Some(5));
        drop(outer);
        let traces = tracer.collect(false, 10);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].trace_id, 5);
    }

    #[test]
    fn trace_counters_flow_through_registry() {
        let reg = MetricsRegistry::new();
        let tracer = Tracer::new(TraceConfig {
            enabled: true,
            recorder_capacity: 4,
            slow_threshold_ns: 0,
            slow_capacity: 1,
            seed: 3,
        });
        tracer.attach_registry(&reg);
        for _ in 0..3 {
            tracer.start_trace("t", None).finish();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("trace.started"), 3);
        assert_eq!(snap.counter("trace.completed"), 3);
        assert_eq!(snap.counter("slowlog.retained"), 3);
        assert_eq!(snap.counter("slowlog.dropped"), 2);
    }

    #[test]
    fn record_span_backfills_timed_work() {
        let tracer = enabled_tracer();
        let t0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let guard = tracer.start_trace_at("root", Some(11), t0);
        record_span("pre_work", t0, Instant::now());
        drop(guard);
        let t = &tracer.collect(false, 1)[0];
        assert!(t.is_complete());
        let pre = t.span("pre_work").unwrap();
        assert_eq!(pre.start_ns, 0);
        assert!(pre.duration_ns() >= 1_000_000);
    }

    #[test]
    fn chrome_export_is_balanced_and_escaped() {
        let tracer = enabled_tracer();
        let guard = tracer.start_trace("net.req", Some(0xABCD));
        annotate("weird\"key", "line\nbreak");
        {
            let _c = span("child");
        }
        drop(guard);
        let json = render_chrome_trace(&tracer.collect(false, 10));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"net.req\""));
        assert!(json.contains("000000000000abcd"));
        assert!(json.contains("weird\\\"key"));
        assert!(json.contains("line\\nbreak"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
