//! Point-in-time snapshots and their three exporters: a human-readable
//! text table, Prometheus exposition format, and JSON.

use crate::histogram::{HistogramSnapshot, NUM_BUCKETS};

/// One annotated entry from a subsystem's bounded event ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Registry-wide sequence number (total order across subsystems).
    pub seq: u64,
    pub message: String,
}

/// Everything a registry knew at one instant. All vectors are sorted by
/// name (the registry stores instruments in a `BTreeMap`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub events: Vec<(String, Vec<Event>)>,
}

impl Snapshot {
    /// Look up a counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a gauge value by name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Fold another registry's snapshot into this one (e.g. the process
    /// global registry into a server's). Counters and histogram buckets
    /// add; gauges and event rings from `other` win on a name collision,
    /// new names are appended in sorted position.
    pub fn absorb(&mut self, other: Snapshot) {
        for (name, v) in other.counters {
            match self
                .counters
                .binary_search_by(|(n, _)| n.as_str().cmp(&name))
            {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name, v)),
            }
        }
        for (name, v) in other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
                Ok(i) => self.gauges[i].1 = v,
                Err(i) => self.gauges.insert(i, (name, v)),
            }
        }
        for (name, h) in other.histograms {
            match self
                .histograms
                .binary_search_by(|(n, _)| n.as_str().cmp(&name))
            {
                Ok(i) => self.histograms[i].1 = self.histograms[i].1.merge(&h),
                Err(i) => self.histograms.insert(i, (name, h)),
            }
        }
        for (name, ring) in other.events {
            match self.events.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
                Ok(i) => self.events[i].1 = ring,
                Err(i) => self.events.insert(i, (name, ring)),
            }
        }
    }

    /// Human-readable table, one instrument per line; histograms report
    /// count / mean / p50 / p99 / max in adaptively-scaled time units.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            let width = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            let width = self.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== histograms (ns) ==\n");
            let width = self
                .histograms
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} mean={} p50={} p99={} max={}\n",
                    h.count,
                    format_scaled(h.mean() as u64),
                    format_scaled(h.percentile(0.5)),
                    format_scaled(h.percentile(0.99)),
                    format_scaled(h.percentile(1.0)),
                ));
            }
        }
        if !self.events.is_empty() {
            out.push_str("== recent events ==\n");
            for (subsystem, ring) in &self.events {
                for ev in ring {
                    out.push_str(&format!("  [{:>6}] {subsystem}: {}\n", ev.seq, ev.message));
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Prometheus exposition format. Dots in metric names become
    /// underscores; histograms export cumulative `_bucket` series plus
    /// `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = promify(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = promify(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let name = promify(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (idx, &n) in h.buckets.iter().enumerate() {
                cumulative += n;
                if n == 0 && idx != NUM_BUCKETS - 1 {
                    continue;
                }
                let le = if idx == NUM_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    crate::histogram::bucket_upper_bound(idx).to_string()
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            if h.buckets[NUM_BUCKETS - 1] == 0 && cumulative != h.count {
                // Shouldn't happen, but keep the series self-consistent.
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// JSON object with `counters`, `gauges`, `histograms` (count / sum /
    /// percentiles), and `events` keys. Hand-rolled: the workspace has no
    /// serde.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        push_joined(&mut out, &self.counters, |out, (name, v)| {
            out.push_str(&format!("{}:{v}", json_string(name)));
        });
        out.push_str("},\"gauges\":{");
        push_joined(&mut out, &self.gauges, |out, (name, v)| {
            out.push_str(&format!("{}:{v}", json_string(name)));
        });
        out.push_str("},\"histograms\":{");
        push_joined(&mut out, &self.histograms, |out, (name, h)| {
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                json_string(name),
                h.count,
                h.sum,
                h.mean(),
                h.percentile(0.5),
                h.percentile(0.9),
                h.percentile(0.99),
                h.percentile(1.0),
            ));
        });
        out.push_str("},\"events\":{");
        push_joined(&mut out, &self.events, |out, (subsystem, ring)| {
            out.push_str(&format!("{}:[", json_string(subsystem)));
            push_joined(out, ring, |out, ev| {
                out.push_str(&format!(
                    "{{\"seq\":{},\"message\":{}}}",
                    ev.seq,
                    json_string(&ev.message)
                ));
            });
            out.push(']');
        });
        out.push_str("}}");
        out
    }
}

fn push_joined<T>(out: &mut String, items: &[T], mut f: impl FnMut(&mut String, &T)) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        f(out, item);
    }
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn promify(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Render a nanosecond quantity with a unit that keeps it readable.
fn format_scaled(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{}us", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{}s", ns / 1_000_000_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.push(("store.wal.appends".into(), 42));
        snap.gauges.push(("server.bus.depth".into(), 7));
        let mut h = HistogramSnapshot::default();
        for v in [100u64, 200, 400, 800] {
            h.buckets[crate::histogram::bucket_of(v)] += 1;
            h.count += 1;
            h.sum += v;
        }
        snap.histograms.push(("index.query.latency".into(), h));
        snap.events.push((
            "server".into(),
            vec![Event {
                seq: 3,
                message: "overload: discarded 2 events".into(),
            }],
        ));
        snap
    }

    #[test]
    fn text_mentions_every_instrument() {
        let text = sample().render_text();
        assert!(text.contains("store.wal.appends"));
        assert!(text.contains("server.bus.depth"));
        assert!(text.contains("index.query.latency"));
        assert!(text.contains("overload: discarded 2 events"));
    }

    #[test]
    fn prometheus_is_underscored_and_cumulative() {
        let prom = sample().render_prometheus();
        assert!(prom.contains("# TYPE store_wal_appends counter"));
        assert!(prom.contains("store_wal_appends 42"));
        assert!(prom.contains("# TYPE server_bus_depth gauge"));
        assert!(prom.contains("index_query_latency_count 4"));
        assert!(prom.contains("le=\"+Inf\"} 4"));
    }

    #[test]
    fn json_parses_shallowly() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"store.wal.appends\":42"));
        assert!(json.contains("\"count\":4"));
        // Balanced braces (cheap structural check without a parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn absorb_merges_and_inserts() {
        let mut a = sample();
        let mut b = Snapshot::default();
        b.counters.push(("store.wal.appends".into(), 8)); // collides: adds
        b.counters.push(("web.crawl.fetches".into(), 3)); // new: inserts
        b.histograms.push(("index.query.latency".into(), {
            let mut h = HistogramSnapshot::default();
            h.buckets[crate::histogram::bucket_of(50)] += 1;
            h.count = 1;
            h.sum = 50;
            h
        }));
        a.absorb(b);
        assert_eq!(a.counter("store.wal.appends"), 50);
        assert_eq!(a.counter("web.crawl.fetches"), 3);
        assert_eq!(a.histogram("index.query.latency").unwrap().count, 5);
        // Still sorted by name.
        let names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("store.wal.appends"), 42);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("server.bus.depth"), 7);
        assert_eq!(snap.histogram("index.query.latency").unwrap().count, 4);
    }
}
