//! Fixed-bucket log₂ histograms.
//!
//! Values (typically latencies in nanoseconds) land in bucket
//! `floor(log2(v)) + 1` (bucket 0 holds exact zeros), so 64 buckets cover
//! the whole `u64` range with ≤ 2× relative error on percentile readouts —
//! plenty for operational latency work, and recording is two relaxed
//! atomic increments plus one add.

use std::sync::atomic::{AtomicU64, Ordering};

pub const NUM_BUCKETS: usize = 64;

/// Index of the bucket holding `value`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `idx`.
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Shared histogram storage (lives in the registry; handles are cheap).
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram, with percentile readout and merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; NUM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Value at quantile `q` (clamped to `[0, 1]`), reported as the upper
    /// bound of the bucket containing that rank. Monotone in `q`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(idx);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Mean of recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Combine two snapshots; counts and sums add, percentiles reflect the
    /// union population.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets;
        for (b, o) in buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(bucket_of(1000)), 1023);
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let core = HistogramCore::default();
        for v in 1..=1000u64 {
            core.record(v);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 1000);
        let p50 = snap.percentile(0.5);
        // True median is 500; the log2 readout may overshoot by < 2x.
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        assert!(snap.percentile(1.0) >= 1000);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.percentile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }
}
