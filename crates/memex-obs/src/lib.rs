//! # memex-obs — zero-dependency observability
//!
//! A `std`-only metrics layer shared by every Memex subsystem:
//!
//! - [`MetricsRegistry`] — a shareable registry of named instruments.
//!   Registration takes a lock once; the handles it returns
//!   ([`Counter`], [`Gauge`], [`Histogram`]) each hold an `Arc` to an
//!   atomic slot, so the hot path is a **single relaxed atomic op**.
//! - log₂ [`HistogramSnapshot`]s with percentile readout and lossless
//!   merge — 64 fixed buckets cover the full `u64` range.
//! - Scoped span timers: `let _g = obs::span("index.invert");` records
//!   elapsed nanoseconds into a histogram when the guard drops.
//! - A bounded ring of recent annotated [`Event`]s per subsystem.
//! - [`Snapshot`] with three exporters: human text table
//!   ([`Snapshot::render_text`]), Prometheus exposition
//!   ([`Snapshot::render_prometheus`]), and JSON
//!   ([`Snapshot::render_json`]).
//!
//! Metric names follow the `subsystem.verb` convention
//! (`store.wal.appends`, `index.query.latency`); the Prometheus exporter
//! maps `.` to `_`.
//!
//! The whole layer can be disabled at construction
//! ([`MetricsRegistry::disabled`]): every handle becomes inert and the
//! remaining cost is one well-predicted branch.
//!
//! Components that belong to a particular server instance take a registry
//! via an `attach_registry`-style constructor so tests stay isolated;
//! free-standing code uses the process-wide [`global()`] registry.

mod histogram;
mod registry;
mod snapshot;
pub mod trace;

pub use histogram::{bucket_of, bucket_upper_bound, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, SpanGuard};
pub use snapshot::{Event, Snapshot};
pub use trace::{SpanData, TraceConfig, TraceData, TraceId, Tracer};

use std::sync::OnceLock;

/// The process-wide registry, for code with no natural owner to hang a
/// per-instance registry on (e.g. free functions, one-shot tools).
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Time a scope into the [`global()`] registry:
/// `let _g = memex_obs::span("index.invert");`
pub fn span(name: &str) -> SpanGuard {
    global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("obs.test.global").add(3);
        let _g = span("obs.test.span");
        drop(_g);
        let snap = global().snapshot();
        assert!(snap.counter("obs.test.global") >= 3);
        assert!(snap.histogram("obs.test.span").is_some());
    }
}
