//! Property and concurrency tests for the observability layer, plus the
//! overhead microchecks the PR's acceptance demands: a counter increment
//! stays under 50ns amortised, and a disabled registry adds no measurable
//! cost over the bare loop.

use std::time::Instant;

use proptest::prelude::*;

use memex_obs::{bucket_of, Counter, HistogramSnapshot, MetricsRegistry, NUM_BUCKETS};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot::default();
    for &v in values {
        snap.buckets[bucket_of(v)] += 1;
        snap.count += 1;
        snap.sum = snap.sum.saturating_add(v);
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Percentile readout is monotone in the quantile: for any recorded
    /// population and any q1 <= q2, p(q1) <= p(q2).
    #[test]
    fn percentiles_are_monotone_in_quantile(
        values in proptest::collection::vec(0u64..2_000_000, 1..200),
        qs in proptest::collection::vec(0.0f64..1.0, 2..12),
    ) {
        let snap = snapshot_of(&values);
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let readouts: Vec<u64> = qs.iter().map(|&q| snap.percentile(q)).collect();
        for w in readouts.windows(2) {
            prop_assert!(w[0] <= w[1], "p({:?}) decreased: {:?}", qs, readouts);
        }
        // And every readout brackets the data: never below the min value's
        // bucket bound nor above the max value's bucket bound.
        let max = *values.iter().max().unwrap();
        prop_assert!(snap.percentile(1.0) >= max);
    }

    /// Merging histograms preserves total count and sum, and the merged
    /// percentiles reflect the union population.
    #[test]
    fn merge_preserves_count_and_sum(
        a in proptest::collection::vec(0u64..1_000_000, 0..120),
        b in proptest::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let sa = snapshot_of(&a);
        let sb = snapshot_of(&b);
        let merged = sa.merge(&sb);
        prop_assert_eq!(merged.count, sa.count + sb.count);
        prop_assert_eq!(merged.sum, sa.sum + sb.sum);
        let bucket_total: u64 = merged.buckets.iter().sum();
        prop_assert_eq!(bucket_total, merged.count);
        // Merge is symmetric.
        prop_assert_eq!(sb.merge(&sa), merged);
        // The union's max is visible at p100.
        let all_max = a.iter().chain(&b).max().copied();
        if let Some(m) = all_max {
            prop_assert!(merged.percentile(1.0) >= m);
        }
        // Bucket index sanity for the whole u64 range.
        prop_assert!(bucket_of(u64::MAX) == NUM_BUCKETS - 1);
    }
}

/// N threads x M increments on one shared counter sum exactly — the relaxed
/// atomic never drops an update.
#[test]
fn concurrent_increments_sum_exactly() {
    const THREADS: usize = 8;
    const INCREMENTS: usize = 25_000;
    let reg = MetricsRegistry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = reg.counter("smoke.hits");
            let h = reg.histogram("smoke.values");
            std::thread::spawn(move || {
                for i in 0..INCREMENTS {
                    c.inc();
                    h.record(i as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("smoke.hits"), (THREADS * INCREMENTS) as u64);
    let hist = snap.histogram("smoke.values").unwrap();
    assert_eq!(hist.count, (THREADS * INCREMENTS) as u64);
    assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
}

fn ns_per_op(c: &Counter, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        c.inc();
    }
    std::hint::black_box(c.get());
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The hot path budget: one enabled increment amortises under 50ns, and an
/// inert handle (disabled registry) is no slower than enabled — the branch
/// predicts perfectly.
#[test]
fn counter_increment_is_cheap() {
    const ITERS: u64 = 2_000_000;
    let enabled = MetricsRegistry::new().counter("bench.hits");
    let disabled = MetricsRegistry::disabled().counter("bench.hits");
    // Warm up (page in, train the predictor), then measure.
    ns_per_op(&enabled, ITERS / 10);
    ns_per_op(&disabled, ITERS / 10);
    let hot = ns_per_op(&enabled, ITERS);
    let inert = ns_per_op(&disabled, ITERS);
    // Generous ceiling for shared CI machines; uncontended fetch_add is
    // single-digit ns on anything modern.
    assert!(hot < 50.0, "enabled increment {hot:.1} ns/op");
    assert!(inert < 50.0, "inert increment {inert:.1} ns/op");
    assert_eq!(disabled.get(), 0, "inert handles never record");
}
