//! Exporter golden tests: the four render targets (text, Prometheus,
//! JSON, Chrome `trace_event`) are wire formats consumed by external
//! tools, so their exact output is pinned here. A formatting change that
//! breaks these is a format change, not a refactor.

use memex_obs::trace::render_chrome_trace;
use memex_obs::{
    Event, HistogramSnapshot, MetricsRegistry, Snapshot, SpanData, TraceData, NUM_BUCKETS,
};

/// A deterministic snapshot covering every section: two counters, one
/// gauge, one histogram with two known observations (100ns → bucket 7
/// with upper bound 127, 1000ns → bucket 10 with upper bound 1023), one
/// event ring.
fn golden_snapshot() -> Snapshot {
    let mut h = HistogramSnapshot {
        buckets: [0; NUM_BUCKETS],
        count: 2,
        sum: 1100,
    };
    h.buckets[7] = 1;
    h.buckets[10] = 1;
    Snapshot {
        counters: vec![
            ("net.req.ok".to_string(), 7),
            ("trace.started".to_string(), 2),
        ],
        gauges: vec![("net.conn.active".to_string(), -1)],
        histograms: vec![("servlet.recall.latency".to_string(), h)],
        events: vec![(
            "store".to_string(),
            vec![Event {
                seq: 1,
                message: "checkpoint done".to_string(),
            }],
        )],
    }
}

#[test]
fn text_export_is_stable() {
    let expected = "\
== counters ==
  net.req.ok     7
  trace.started  2
== gauges ==
  net.conn.active  -1
== histograms (ns) ==
  servlet.recall.latency  count=2 mean=550ns p50=127ns p99=1023ns max=1023ns
== recent events ==
  [     1] store: checkpoint done
";
    assert_eq!(golden_snapshot().render_text(), expected);
}

#[test]
fn prometheus_export_is_stable() {
    let expected = "\
# TYPE net_req_ok counter
net_req_ok 7
# TYPE trace_started counter
trace_started 2
# TYPE net_conn_active gauge
net_conn_active -1
# TYPE servlet_recall_latency histogram
servlet_recall_latency_bucket{le=\"127\"} 1
servlet_recall_latency_bucket{le=\"1023\"} 2
servlet_recall_latency_bucket{le=\"+Inf\"} 2
servlet_recall_latency_sum 1100
servlet_recall_latency_count 2
";
    assert_eq!(golden_snapshot().render_prometheus(), expected);
}

#[test]
fn json_export_is_stable() {
    let expected = concat!(
        "{\"counters\":{\"net.req.ok\":7,\"trace.started\":2},",
        "\"gauges\":{\"net.conn.active\":-1},",
        "\"histograms\":{\"servlet.recall.latency\":",
        "{\"count\":2,\"sum\":1100,\"mean\":550.0,\"p50\":127,\"p90\":1023,\"p99\":1023,\"max\":1023}},",
        "\"events\":{\"store\":[{\"seq\":1,\"message\":\"checkpoint done\"}]}}",
    );
    assert_eq!(golden_snapshot().render_json(), expected);
}

#[test]
fn json_export_escapes_hostile_strings() {
    let snap = Snapshot {
        counters: vec![("quote\"back\\slash".to_string(), 1)],
        gauges: Vec::new(),
        histograms: Vec::new(),
        events: vec![(
            "ctrl".to_string(),
            vec![Event {
                seq: 2,
                message: "line\nbreak\ttab\rret\u{1}bell".to_string(),
            }],
        )],
    };
    let json = snap.render_json();
    assert!(json.contains("\"quote\\\"back\\\\slash\":1"));
    assert!(json.contains("\"line\\nbreak\\ttab\\rret\\u0001bell\""));
    // No raw control bytes survive into the output.
    assert!(json.chars().all(|c| c as u32 >= 0x20));
}

#[test]
fn empty_registry_exports_are_well_formed() {
    let snap = MetricsRegistry::new().snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.render_text(), "(no metrics recorded)\n");
    assert_eq!(snap.render_prometheus(), "");
    assert_eq!(
        snap.render_json(),
        "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"events\":{}}"
    );
    assert_eq!(
        render_chrome_trace(&[]),
        "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
    );
}

#[test]
fn chrome_trace_export_is_stable() {
    let trace = TraceData {
        trace_id: 0xABC,
        spans: vec![
            SpanData {
                id: 0,
                parent: None,
                name: "net.req".to_string(),
                start_ns: 0,
                end_ns: 5500,
                annotations: vec![("cache_hit".to_string(), "true".to_string())],
            },
            SpanData {
                id: 1,
                parent: Some(0),
                name: "net.decode".to_string(),
                start_ns: 1000,
                end_ns: 2500,
                annotations: Vec::new(),
            },
        ],
    };
    let expected = concat!(
        "{\"traceEvents\":[",
        "{\"name\":\"net.req\",\"cat\":\"memex\",\"ph\":\"X\",\"pid\":1,\"tid\":1,",
        "\"ts\":0.000,\"dur\":5.500,\"args\":{\"trace_id\":\"0000000000000abc\",",
        "\"span_id\":0,\"cache_hit\":\"true\"}},",
        "{\"name\":\"net.decode\",\"cat\":\"memex\",\"ph\":\"X\",\"pid\":1,\"tid\":1,",
        "\"ts\":1.000,\"dur\":1.500,\"args\":{\"trace_id\":\"0000000000000abc\",",
        "\"span_id\":1,\"parent\":0}}",
        "],\"displayTimeUnit\":\"ms\"}",
    );
    assert_eq!(render_chrome_trace(&[trace]), expected);
}
