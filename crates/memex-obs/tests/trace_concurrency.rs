//! Flight-recorder concurrency: many threads completing traces while
//! readers drain the ring and reconfiguration swaps it out from under
//! them. Runs under the nightly TSan matrix — the interesting assertion
//! there is "no data race", but the structural invariants are checked
//! here too: every collected trace is a complete tree, and the recorder
//! never yields a torn or duplicated entry.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use memex_obs::trace::{annotate, span};
use memex_obs::{MetricsRegistry, TraceConfig, Tracer};

fn tracer(capacity: usize) -> Tracer {
    Tracer::new(TraceConfig {
        enabled: true,
        recorder_capacity: capacity,
        slow_threshold_ns: 0, // everything is "slow": exercises both sinks
        slow_capacity: 32,
        seed: 0xC0FFEE,
    })
}

#[test]
fn concurrent_completion_and_collection_yield_only_complete_trees() {
    const WRITERS: usize = 8;
    const TRACES_PER_WRITER: usize = 200;

    let t = tracer(64);
    let registry = MetricsRegistry::new();
    t.attach_registry(&registry);
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let t = t.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for trace in t.collect(false, 64) {
                        assert!(trace.is_complete(), "torn trace escaped: {trace:?}");
                        assert!(trace.trace_id != 0);
                        seen += 1;
                    }
                    for trace in t.collect(true, 16) {
                        assert!(trace.is_complete(), "torn slow entry: {trace:?}");
                    }
                }
                seen
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..TRACES_PER_WRITER {
                    let guard = t.start_trace("net.req", None);
                    annotate("writer", w);
                    {
                        let _child = span("servlet");
                        annotate("i", i);
                        let _grandchild = span("store.kv.get");
                    }
                    guard.finish();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    // The readers race each other for the same ring: one of them seeing
    // nothing is a legal schedule, both seeing nothing is a bug.
    let seen: usize = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .sum();
    assert!(seen > 0, "readers saw nothing");

    // Every completion was counted; the bounded ring holds the newest
    // (distinct, complete) traces up to capacity.
    let total = (WRITERS * TRACES_PER_WRITER) as u64;
    let snap = registry.snapshot();
    assert_eq!(snap.counter("trace.started"), total);
    assert_eq!(snap.counter("trace.completed"), total);
    let retained = t.collect(false, usize::MAX);
    assert_eq!(retained.len(), 64.min(t.recorded()));
    let ids: HashSet<u64> = retained.iter().map(|t| t.trace_id).collect();
    assert_eq!(ids.len(), retained.len(), "recorder duplicated a trace");
    assert!(retained.iter().all(|t| t.is_complete()));
}

#[test]
fn reconfiguration_races_with_writers_without_losing_structure() {
    let t = tracer(16);
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let t = t.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut produced = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let guard = t.start_trace("net.req", None);
                    let _child = span("servlet");
                    drop(_child);
                    guard.finish();
                    produced += 1;
                }
                produced
            })
        })
        .collect();

    // Flip capacity and enablement under live traffic.
    for i in 0..50 {
        t.configure(TraceConfig {
            enabled: true,
            recorder_capacity: if i % 2 == 0 { 4 } else { 32 },
            slow_threshold_ns: u64::MAX,
            slow_capacity: 8,
            seed: i,
        });
        t.set_enabled(i % 3 != 0);
        for trace in t.collect(false, 32) {
            assert!(trace.is_complete(), "resize tore a trace: {trace:?}");
        }
    }
    t.set_enabled(true);
    stop.store(true, Ordering::Relaxed);
    let produced: usize = writers.into_iter().map(|w| w.join().expect("writer")).sum();
    assert!(produced > 0);
    assert!(t.collect(false, 32).iter().all(|t| t.is_complete()));
}
