//! Property tests for the server: under any interleaving of events, mode
//! switches and demon scheduling, both demons process the *same* surviving
//! event stream, privacy filtering is exact, and staleness accounting adds
//! up.

use std::sync::Arc;

use proptest::prelude::*;

use memex_server::events::{ArchiveMode, ClientEvent, VisitEvent};
use memex_server::fetcher::CorpusFetcher;
use memex_server::pipeline::{MemexServer, ServerOptions};
use memex_web::corpus::{Corpus, CorpusConfig};

#[derive(Debug, Clone)]
enum Action {
    Visit { user: u32, page: u32 },
    Bookmark { user: u32, page: u32 },
    SetMode { user: u32, mode: u8 },
    RunTrail { batches: usize },
    RunIndex { batches: usize },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        5 => (0u32..3, 0u32..20).prop_map(|(user, page)| Action::Visit { user, page }),
        2 => (0u32..3, 0u32..20).prop_map(|(user, page)| Action::Bookmark { user, page }),
        1 => (0u32..3, 0u8..3).prop_map(|(user, mode)| Action::SetMode { user, mode }),
        2 => (1usize..4).prop_map(|batches| Action::RunTrail { batches }),
        2 => (1usize..4).prop_map(|batches| Action::RunIndex { batches }),
    ]
}

fn corpus() -> Arc<Corpus> {
    Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 2,
        pages_per_topic: 10,
        interior_tokens: (5, 10),
        ..CorpusConfig::default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipeline_invariants_under_any_interleaving(actions in proptest::collection::vec(action_strategy(), 0..80)) {
        let corpus = corpus();
        let mut server = MemexServer::new(CorpusFetcher::new(corpus), ServerOptions::default()).unwrap();
        for u in 0..3 {
            server.register_user(u, &format!("u{u}")).unwrap();
        }
        let mut time = 0u64;
        // Our own reference model of what should survive ingest.
        let mut expected_visits = 0u64;
        let mut expected_bookmarks = 0u64;
        let mut expected_filtered = 0u64;
        let mut modes = [ArchiveMode::Community; 3];
        for action in &actions {
            match action {
                Action::Visit { user, page } => {
                    time += 1;
                    let archived = server.submit(ClientEvent::Visit(VisitEvent {
                        user: *user,
                        session: 0,
                        page: *page,
                        url: String::new(),
                        time,
                        referrer: None,
                    }));
                    if modes[*user as usize] == ArchiveMode::Off {
                        prop_assert!(!archived);
                        expected_filtered += 1;
                    } else {
                        prop_assert!(archived);
                        expected_visits += 1;
                    }
                }
                Action::Bookmark { user, page } => {
                    time += 1;
                    let archived = server.submit(ClientEvent::Bookmark {
                        user: *user,
                        page: *page,
                        url: String::new(),
                        folder: "/F".into(),
                        time,
                    });
                    if modes[*user as usize] == ArchiveMode::Off {
                        prop_assert!(!archived);
                        expected_filtered += 1;
                    } else {
                        prop_assert!(archived);
                        expected_bookmarks += 1;
                    }
                }
                Action::SetMode { user, mode } => {
                    let m = match mode {
                        0 => ArchiveMode::Off,
                        1 => ArchiveMode::Private,
                        _ => ArchiveMode::Community,
                    };
                    modes[*user as usize] = m;
                    server.submit(ClientEvent::SetMode { user: *user, mode: m, time });
                }
                Action::RunTrail { batches } => {
                    server.run_trail_demon(*batches);
                }
                Action::RunIndex { batches } => {
                    server.run_index_demon(*batches).unwrap();
                }
            }
            // Staleness never exceeds the published backlog and is
            // consistent per consumer.
            for r in server.staleness() {
                prop_assert_eq!(r.staleness, r.published - r.applied);
            }
        }
        server.drain_demons().unwrap();
        let stats = server.stats();
        prop_assert_eq!(stats.events_mode_filtered, expected_filtered);
        prop_assert_eq!(stats.visits_trailed, expected_visits);
        prop_assert_eq!(server.trails.len() as u64, expected_visits);
        prop_assert_eq!(stats.bookmarks_recorded, expected_bookmarks);
        prop_assert_eq!(server.bookmarks.len() as u64, expected_bookmarks);
        prop_assert!(server.staleness().iter().all(|r| r.staleness == 0));
        // The RDBMS bookmark table agrees with the in-memory mirror.
        let mut via_db = 0usize;
        for u in 0..3 {
            via_db += server.bookmarks_of(u).unwrap().len();
        }
        prop_assert_eq!(via_db as u64, expected_bookmarks);
    }

    /// Privacy is decided at ingest time: flipping the mode later never
    /// rewrites history.
    #[test]
    fn privacy_decided_at_ingest(flips in proptest::collection::vec(0u8..3, 1..10)) {
        let corpus = corpus();
        let mut server = MemexServer::new(CorpusFetcher::new(corpus), ServerOptions::default()).unwrap();
        server.register_user(0, "u").unwrap();
        let mut expected_public = 0usize;
        let mut expected_total = 0usize;
        for (i, &flip) in flips.iter().enumerate() {
            let mode = match flip {
                0 => ArchiveMode::Off,
                1 => ArchiveMode::Private,
                _ => ArchiveMode::Community,
            };
            server.submit(ClientEvent::SetMode { user: 0, mode, time: i as u64 });
            server.submit(ClientEvent::Visit(VisitEvent {
                user: 0,
                session: 0,
                page: (i % 5) as u32,
                url: String::new(),
                time: i as u64,
                referrer: None,
            }));
            if mode != ArchiveMode::Off {
                expected_total += 1;
                if mode == ArchiveMode::Community {
                    expected_public += 1;
                }
            }
        }
        server.drain_demons().unwrap();
        prop_assert_eq!(server.trails.len(), expected_total);
        let public = server.trails.visits().iter().filter(|v| v.public).count();
        prop_assert_eq!(public, expected_public);
    }
}
