//! The Memex server core: guaranteed-immediate event ingest onto a
//! loosely-consistent bus, plus the background demons (Fig. 3).
//!
//! The flow mirrors the paper's block diagram:
//!
//! ```text
//! client events ──submit()──► bounded VersionedLog bus  ──┬─► trail demon   (TrailGraph)
//!        (privacy filter,       (publish = watermark)     └─► index demon   (fetch page,
//!         overload discard)                                    analyze, invert, RDBMS rows,
//!                                                              web-graph edges)
//! ```
//!
//! Ingest never blocks on mining: when the bus is saturated the server
//! "recovers … even if it has to discard a few client events" — discards
//! are counted, which experiment F3 reports against the offered load.

use std::collections::{HashMap, HashSet};

use memex_graph::graph::WebGraph;
use memex_graph::trail::{TrailGraph, Visit};
use memex_index::index::{IndexOptions, InvertedIndex};
use memex_obs::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot};
use memex_store::error::StoreResult;
use memex_store::rel::{ColType, Column, Database, Predicate, Schema, TableHandle, Value};
use memex_store::version::{Consumer, StalenessReport, VersionedLog};
use memex_text::analyze::Analyzer;
use memex_text::vocab::{TermId, Vocabulary};

use crate::events::{ArchiveMode, ClientEvent};
use crate::fetcher::{FetchError, PageFetcher, RetryPolicy};

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Maximum bus batches retained before ingest starts discarding.
    pub max_retained_batches: usize,
    pub index: IndexOptions,
    /// How hard the index demon tries before abandoning a page.
    pub retry: RetryPolicy,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_retained_batches: 100_000,
            index: IndexOptions::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Operational counters (F3 reports these). Since the observability
/// refactor this is a point-in-time *view* assembled from the server's
/// [`MetricsRegistry`]; the API is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub events_submitted: u64,
    /// Dropped because the user's mode was `Off`.
    pub events_mode_filtered: u64,
    /// Dropped because the bus was saturated.
    pub events_discarded_overload: u64,
    pub visits_trailed: u64,
    pub pages_fetched: u64,
    pub docs_indexed: u64,
    pub bookmarks_recorded: u64,
    /// Retries the index demon spent on transient fetch failures.
    pub fetch_retries: u64,
    /// Pages given up on after the retry policy was exhausted.
    pub pages_abandoned: u64,
}

/// Registry handles behind [`ServerStats`] plus span/gauge instruments.
struct ServerMetrics {
    events_submitted: Counter,
    events_mode_filtered: Counter,
    events_discarded_overload: Counter,
    visits_trailed: Counter,
    pages_fetched: Counter,
    docs_indexed: Counter,
    bookmarks_recorded: Counter,
    fetch_retries: Counter,
    pages_abandoned: Counter,
    /// Published-but-retained batches on the bus.
    bus_depth: Gauge,
    fetch_latency: Histogram,
}

impl ServerMetrics {
    fn new(registry: &MetricsRegistry) -> ServerMetrics {
        ServerMetrics {
            events_submitted: registry.counter("server.events.submitted"),
            events_mode_filtered: registry.counter("server.events.mode_filtered"),
            events_discarded_overload: registry.counter("server.events.discarded_overload"),
            visits_trailed: registry.counter("server.trail.visits"),
            pages_fetched: registry.counter("server.fetch.pages"),
            docs_indexed: registry.counter("server.index.docs"),
            bookmarks_recorded: registry.counter("server.bookmarks.recorded"),
            fetch_retries: registry.counter("server.fetch.retries"),
            pages_abandoned: registry.counter("server.fetch.abandoned"),
            bus_depth: registry.gauge("server.bus.depth"),
            fetch_latency: registry.histogram("server.fetch.latency"),
        }
    }
}

/// An event as archived: the privacy decision is resolved at ingest time.
#[derive(Debug, Clone)]
pub struct ArchivedEvent {
    pub event: ClientEvent,
    /// Visible to the community (false = private archive).
    pub public: bool,
}

/// A recorded bookmark (also mirrored into the RDBMS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookmarkRecord {
    pub user: u32,
    pub page: u32,
    pub folder: String,
    pub time: u64,
}

/// The server.
pub struct MemexServer<F: PageFetcher> {
    fetcher: F,
    opts: ServerOptions,
    /// RDBMS metadata (paper: "pages, links, users, and topics").
    pub db: Database,
    users_t: TableHandle,
    pages_t: TableHandle,
    bookmarks_t: TableHandle,
    bus: VersionedLog<ArchivedEvent>,
    trail_consumer: Consumer<ArchivedEvent>,
    index_consumer: Consumer<ArchivedEvent>,
    /// Term store + postings (the Berkeley-DB side).
    pub index: InvertedIndex,
    pub vocab: Vocabulary,
    analyzer: Analyzer,
    /// The community trail graph.
    pub trails: TrailGraph,
    /// Hyperlink graph discovered by the fetch demon.
    pub web: WebGraph,
    modes: HashMap<u32, ArchiveMode>,
    fetched: HashSet<u32>,
    /// Pages the retry policy gave up on — remembered so a hot page that
    /// keeps reappearing in events cannot stall the demon over and over.
    abandoned: HashSet<u32>,
    tf_cache: HashMap<u32, Vec<(TermId, u32)>>,
    page_bytes: HashMap<u32, u32>,
    pub bookmarks: Vec<BookmarkRecord>,
    registry: MetricsRegistry,
    metrics: ServerMetrics,
}

impl<F: PageFetcher> MemexServer<F> {
    /// Stand up a server over `fetcher` with in-memory storage and its own
    /// (enabled) metrics registry.
    pub fn new(fetcher: F, opts: ServerOptions) -> StoreResult<MemexServer<F>> {
        Self::with_registry(fetcher, opts, MetricsRegistry::new())
    }

    /// Stand up a server that reports into `registry` — pass
    /// [`MetricsRegistry::disabled`] to turn the observability layer off,
    /// or a shared registry to aggregate several servers. Every subsystem
    /// the server owns (bus, RDBMS, inverted index) registers here too.
    pub fn with_registry(
        fetcher: F,
        opts: ServerOptions,
        registry: MetricsRegistry,
    ) -> StoreResult<MemexServer<F>> {
        let mut db = Database::open_memory()?;
        db.attach_registry(&registry);
        let users_t = db.create_table(Schema::new(
            "users",
            vec![
                Column::unique("name", ColType::Text),
                Column::unique("client_id", ColType::Int),
            ],
        )?)?;
        let pages_t = db.create_table(Schema::new(
            "pages",
            vec![
                Column::unique("url", ColType::Text),
                Column::unique("page_id", ColType::Int),
                Column::new("title", ColType::Text),
                Column::new("bytes", ColType::Int),
                Column::new("fetched_at", ColType::Int),
            ],
        )?)?;
        let bookmarks_t = db.create_table(Schema::new(
            "bookmarks",
            vec![
                Column::new("user", ColType::Int),
                Column::new("page", ColType::Int),
                Column::new("folder", ColType::Text),
                Column::new("time", ColType::Int),
            ],
        )?)?;
        db.create_index(&bookmarks_t, "user")?;
        let bus = VersionedLog::new();
        bus.attach_registry(&registry);
        let trail_consumer = bus.register("trail-demon");
        let index_consumer = bus.register("index-demon");
        let mut index = InvertedIndex::open_memory(opts.index)?;
        index.attach_registry(&registry);
        let metrics = ServerMetrics::new(&registry);
        Ok(MemexServer {
            fetcher,
            opts,
            db,
            users_t,
            pages_t,
            bookmarks_t,
            bus,
            trail_consumer,
            index_consumer,
            index,
            vocab: Vocabulary::new(),
            analyzer: Analyzer::default(),
            trails: TrailGraph::new(),
            web: WebGraph::new(),
            modes: HashMap::new(),
            fetched: HashSet::new(),
            abandoned: HashSet::new(),
            tf_cache: HashMap::new(),
            page_bytes: HashMap::new(),
            bookmarks: Vec::new(),
            registry,
            metrics,
        })
    }

    /// The server's metrics registry (counters, gauges, histograms and
    /// event rings for every subsystem this server owns).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Point-in-time snapshot of every metric (see [`Snapshot`] exporters).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Register a user (RDBMS row); idempotent per client id.
    pub fn register_user(&mut self, client_id: u32, name: &str) -> StoreResult<()> {
        if self
            .db
            .lookup_unique(
                &self.users_t,
                "client_id",
                &Value::Int(i64::from(client_id)),
            )?
            .is_some()
        {
            return Ok(());
        }
        self.db.insert(
            &self.users_t,
            vec![
                Value::Text(name.to_string()),
                Value::Int(i64::from(client_id)),
            ],
        )?;
        self.modes.insert(client_id, ArchiveMode::Community);
        Ok(())
    }

    /// The user's current archive mode.
    pub fn mode(&self, user: u32) -> ArchiveMode {
        self.modes.get(&user).copied().unwrap_or_default()
    }

    /// Guaranteed-immediate ingest. Returns true if archived, false if
    /// filtered or discarded.
    pub fn submit(&mut self, event: ClientEvent) -> bool {
        self.metrics.events_submitted.inc();
        if let ClientEvent::SetMode { user, mode, .. } = &event {
            self.modes.insert(*user, *mode);
            return true;
        }
        let mode = self.mode(event.user());
        if mode == ArchiveMode::Off {
            self.metrics.events_mode_filtered.inc();
            return false;
        }
        // Overload shedding: trim applied batches, then check saturation.
        if self.bus.retained() >= self.opts.max_retained_batches {
            self.bus.trim();
            if self.bus.retained() >= self.opts.max_retained_batches {
                self.metrics.events_discarded_overload.inc();
                self.registry.event(
                    "server",
                    format!(
                        "overload: bus saturated at {} batches, discarding",
                        self.bus.retained()
                    ),
                );
                return false;
            }
        }
        let public = mode == ArchiveMode::Community;
        self.bus.append(vec![ArchivedEvent { event, public }]);
        self.bus.publish();
        self.metrics.bus_depth.set(self.bus.retained() as i64);
        true
    }

    /// Run the trail demon: consumes events into the trail graph.
    /// Returns events processed.
    pub fn run_trail_demon(&mut self, max_batches: usize) -> usize {
        let mut processed = 0usize;
        for (_, batch) in self.trail_consumer.poll_up_to(max_batches) {
            for ae in batch.iter() {
                if let ClientEvent::Visit(v) = &ae.event {
                    self.trails.record(Visit {
                        user: v.user,
                        session: v.session,
                        page: v.page,
                        time: v.time,
                        referrer: v.referrer,
                        public: ae.public,
                    });
                    self.metrics.visits_trailed.inc();
                }
                processed += 1;
            }
        }
        processed
    }

    /// Run the fetch+index demon: fetches unseen pages, analyzes them,
    /// feeds the inverted index, the RDBMS page table, the web graph and
    /// the bookmark table. Returns events processed.
    pub fn run_index_demon(&mut self, max_batches: usize) -> StoreResult<usize> {
        let mut processed = 0usize;
        for (_, batch) in self.index_consumer.poll_up_to(max_batches) {
            for ae in batch.iter() {
                match &ae.event {
                    ClientEvent::Visit(v) => {
                        self.ensure_fetched(v.page)?;
                    }
                    ClientEvent::Bookmark {
                        user,
                        page,
                        url: _,
                        folder,
                        time,
                    } => {
                        self.ensure_fetched(*page)?;
                        self.db.insert(
                            &self.bookmarks_t,
                            vec![
                                Value::Int(i64::from(*user)),
                                Value::Int(i64::from(*page)),
                                Value::Text(folder.clone()),
                                Value::Int(*time as i64),
                            ],
                        )?;
                        self.bookmarks.push(BookmarkRecord {
                            user: *user,
                            page: *page,
                            folder: folder.clone(),
                            time: *time,
                        });
                        self.metrics.bookmarks_recorded.inc();
                    }
                    ClientEvent::SetMode { .. } => {}
                }
                processed += 1;
            }
        }
        Ok(processed)
    }

    /// Drive both demons to quiescence (test/bench convenience; a deployed
    /// server calls the `run_*_demon` steps from its demon loops).
    pub fn drain_demons(&mut self) -> StoreResult<()> {
        loop {
            let a = self.run_trail_demon(usize::MAX);
            let b = self.run_index_demon(usize::MAX)?;
            if a == 0 && b == 0 {
                return Ok(());
            }
        }
    }

    /// Fetch-with-retry: transient failures back off (virtual time — the
    /// demon never sleeps) and retry up to the policy's attempt and
    /// deadline budgets; once exhausted the page is counted abandoned and
    /// the demon moves on. The demon therefore *never stalls* on a flaky
    /// page — the fetch loop is bounded no matter what the fetcher does.
    fn ensure_fetched(&mut self, page: u32) -> StoreResult<()> {
        if self.fetched.contains(&page) || self.abandoned.contains(&page) {
            return Ok(());
        }
        let policy = self.opts.retry;
        let mut attempt = 0u32;
        let mut waited_ms = 0u64;
        let content = loop {
            attempt += 1;
            let outcome = {
                let _span = self.metrics.fetch_latency.start_span();
                self.fetcher.try_fetch(page)
            };
            match outcome {
                Ok(content) => break content,
                Err(FetchError::NotFound) => return Ok(()), // dead link; the demon shrugs
                Err(FetchError::Transient { reason }) => {
                    if attempt >= policy.max_attempts.max(1) || waited_ms >= policy.deadline_ms {
                        self.abandoned.insert(page);
                        self.metrics.pages_abandoned.inc();
                        self.registry.event(
                            "server",
                            format!(
                                "abandoning page {page} after {attempt} attempts \
                                 ({waited_ms}ms backoff): {reason}"
                            ),
                        );
                        return Ok(());
                    }
                    waited_ms += policy.backoff_ms(page, attempt);
                    self.metrics.fetch_retries.inc();
                }
            }
        };
        self.fetched.insert(page);
        self.metrics.pages_fetched.inc();
        // Analyze with the shared vocabulary and index (positionally, so
        // the search tab supports exact phrases).
        let full = format!("{} {}", content.title, content.text);
        let tf = self.analyzer.index_document(&mut self.vocab, &full);
        let seq = self.analyzer.intern_sequence(&mut self.vocab, &full);
        self.index.add_document_positional(page, &seq)?;
        self.metrics.docs_indexed.inc();
        self.tf_cache.insert(page, tf);
        self.page_bytes.insert(page, content.bytes);
        // Web graph edges.
        self.web.ensure_node(page);
        for &l in &content.links {
            self.web.add_edge(page, l);
        }
        // RDBMS page row.
        self.db.insert(
            &self.pages_t,
            vec![
                Value::Text(content.url),
                Value::Int(i64::from(page)),
                Value::Text(content.title),
                Value::Int(i64::from(content.bytes)),
                Value::Int(0),
            ],
        )?;
        Ok(())
    }

    /// Per-consumer staleness (published − applied epochs) — the coherence
    /// lag of Fig. 3's "loosely synchronized data repositories".
    pub fn staleness(&self) -> Vec<StalenessReport> {
        self.bus.staleness()
    }

    /// Analyzed term vector of a fetched page.
    pub fn tf(&self, page: u32) -> Option<&[(TermId, u32)]> {
        self.tf_cache.get(&page).map(Vec::as_slice)
    }

    /// Transfer size of a fetched page.
    pub fn page_bytes(&self, page: u32) -> Option<u32> {
        self.page_bytes.get(&page).copied()
    }

    /// Bookmarks of one user (RDBMS query path, exercising the index).
    pub fn bookmarks_of(&mut self, user: u32) -> StoreResult<Vec<BookmarkRecord>> {
        let rows = self.db.scan(
            &self.bookmarks_t,
            &Predicate::eq("user", Value::Int(i64::from(user))),
        )?;
        Ok(rows
            .into_iter()
            .map(|(_, row)| BookmarkRecord {
                user: row[0].as_int().unwrap_or(0) as u32,
                page: row[1].as_int().unwrap_or(0) as u32,
                folder: row[2].as_text().unwrap_or("").to_string(),
                time: row[3].as_int().unwrap_or(0) as u64,
            })
            .collect())
    }

    pub fn stats(&self) -> ServerStats {
        ServerStats {
            events_submitted: self.metrics.events_submitted.get(),
            events_mode_filtered: self.metrics.events_mode_filtered.get(),
            events_discarded_overload: self.metrics.events_discarded_overload.get(),
            visits_trailed: self.metrics.visits_trailed.get(),
            pages_fetched: self.metrics.pages_fetched.get(),
            docs_indexed: self.metrics.docs_indexed.get(),
            bookmarks_recorded: self.metrics.bookmarks_recorded.get(),
            fetch_retries: self.metrics.fetch_retries.get(),
            pages_abandoned: self.metrics.pages_abandoned.get(),
        }
    }

    /// The underlying fetcher — harnesses use this to read decorator
    /// state (e.g. [`crate::fetcher::FlakyFetcher::transient_failures`]).
    pub fn fetcher(&self) -> &F {
        &self.fetcher
    }

    /// Pages the retry policy gave up on (sorted for stable output).
    pub fn abandoned_pages(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.abandoned.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Flush durable state.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        self.index.checkpoint()?;
        self.db.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::VisitEvent;
    use crate::fetcher::{CorpusFetcher, FlakyConfig, FlakyFetcher};
    use memex_web::corpus::{Corpus, CorpusConfig};
    use std::sync::Arc;

    fn server() -> (Arc<Corpus>, MemexServer<CorpusFetcher>) {
        let corpus = Arc::new(Corpus::generate(CorpusConfig {
            num_topics: 3,
            pages_per_topic: 20,
            ..CorpusConfig::default()
        }));
        let s =
            MemexServer::new(CorpusFetcher::new(corpus.clone()), ServerOptions::default()).unwrap();
        (corpus, s)
    }

    fn visit(user: u32, page: u32, time: u64) -> ClientEvent {
        ClientEvent::Visit(VisitEvent {
            user,
            session: 0,
            page,
            url: format!("http://p{page}"),
            time,
            referrer: None,
        })
    }

    #[test]
    fn ingest_then_demons_index_and_trail() {
        let (corpus, mut s) = server();
        s.register_user(1, "soumen").unwrap();
        assert!(s.submit(visit(1, 0, 10)));
        assert!(s.submit(visit(1, 1, 20)));
        // Demons have not run: trail empty, staleness visible.
        assert!(s.trails.is_empty());
        assert!(s.staleness().iter().all(|r| r.staleness == 2));
        s.drain_demons().unwrap();
        assert_eq!(s.trails.len(), 2);
        assert_eq!(s.stats().pages_fetched, 2);
        assert_eq!(s.index.num_docs(), 2);
        assert!(s.staleness().iter().all(|r| r.staleness == 0));
        // The page made it into the RDBMS.
        let pages_t = s.db.table("pages").unwrap();
        let hit =
            s.db.lookup_unique(&pages_t, "url", &Value::Text(corpus.pages[0].url.clone()))
                .unwrap();
        assert!(hit.is_some());
    }

    #[test]
    fn privacy_modes_filter_and_mark() {
        let (_, mut s) = server();
        s.register_user(1, "u1").unwrap();
        s.submit(ClientEvent::SetMode {
            user: 1,
            mode: ArchiveMode::Off,
            time: 1,
        });
        assert!(!s.submit(visit(1, 0, 2)), "Off drops events");
        s.submit(ClientEvent::SetMode {
            user: 1,
            mode: ArchiveMode::Private,
            time: 3,
        });
        assert!(s.submit(visit(1, 1, 4)));
        s.submit(ClientEvent::SetMode {
            user: 1,
            mode: ArchiveMode::Community,
            time: 5,
        });
        assert!(s.submit(visit(1, 2, 6)));
        s.drain_demons().unwrap();
        assert_eq!(s.stats().events_mode_filtered, 1);
        assert_eq!(s.trails.len(), 2);
        let private = s.trails.visits().iter().find(|v| v.page == 1).unwrap();
        assert!(!private.public);
        let public = s.trails.visits().iter().find(|v| v.page == 2).unwrap();
        assert!(public.public);
    }

    #[test]
    fn overload_discards_but_keeps_serving() {
        let (corpus, _) = server();
        let mut s = MemexServer::new(
            CorpusFetcher::new(corpus),
            ServerOptions {
                max_retained_batches: 5,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        s.register_user(1, "u").unwrap();
        for i in 0..20u32 {
            s.submit(visit(1, i % 3, u64::from(i)));
        }
        assert!(s.stats().events_discarded_overload > 0);
        s.drain_demons().unwrap();
        // Everything that survived was processed consistently by BOTH demons.
        assert_eq!(s.stats().visits_trailed, s.trails.len() as u64);
        assert!(s.trails.len() <= 20 - s.stats().events_discarded_overload as usize);
    }

    #[test]
    fn bookmarks_flow_to_rdbms_and_memory() {
        let (corpus, mut s) = server();
        s.register_user(2, "mits").unwrap();
        s.submit(ClientEvent::Bookmark {
            user: 2,
            page: 5,
            url: corpus.pages[5].url.clone(),
            folder: "/Music/Western Classical".into(),
            time: 42,
        });
        s.drain_demons().unwrap();
        assert_eq!(s.bookmarks.len(), 1);
        let via_db = s.bookmarks_of(2).unwrap();
        assert_eq!(via_db, s.bookmarks);
        assert_eq!(via_db[0].folder, "/Music/Western Classical");
        // Bookmarking fetches the page too.
        assert!(s.tf(5).is_some());
        assert!(s.page_bytes(5).is_some());
    }

    #[test]
    fn demons_can_lag_independently() {
        let (_, mut s) = server();
        s.register_user(1, "u").unwrap();
        for i in 0..6u32 {
            s.submit(visit(1, i, u64::from(i)));
        }
        s.run_trail_demon(3);
        let reports = s.staleness();
        let trail = reports
            .iter()
            .find(|r| r.consumer == "trail-demon")
            .unwrap();
        let index = reports
            .iter()
            .find(|r| r.consumer == "index-demon")
            .unwrap();
        assert_eq!(trail.staleness, 3);
        assert_eq!(index.staleness, 6);
        s.drain_demons().unwrap();
        assert!(s.staleness().iter().all(|r| r.staleness == 0));
    }

    #[test]
    fn duplicate_user_registration_is_idempotent() {
        let (_, mut s) = server();
        s.register_user(1, "x").unwrap();
        s.register_user(1, "x").unwrap();
        let users_t = s.db.table("users").unwrap();
        assert_eq!(s.db.count(&users_t).unwrap(), 1);
    }

    #[test]
    fn web_graph_grows_from_fetches() {
        let (corpus, mut s) = server();
        s.register_user(1, "u").unwrap();
        s.submit(visit(1, 0, 1));
        s.drain_demons().unwrap();
        assert_eq!(s.web.out_links(0), corpus.graph.out_links(0));
    }

    fn flaky_server(
        transient_per_10k: u32,
        seed: u64,
    ) -> (Arc<Corpus>, MemexServer<FlakyFetcher<CorpusFetcher>>) {
        let corpus = Arc::new(Corpus::generate(CorpusConfig {
            num_topics: 3,
            pages_per_topic: 20,
            ..CorpusConfig::default()
        }));
        let fetcher = FlakyFetcher::new(
            CorpusFetcher::new(corpus.clone()),
            FlakyConfig {
                seed,
                transient_per_10k,
                ..FlakyConfig::default()
            },
        );
        let s = MemexServer::new(fetcher, ServerOptions::default()).unwrap();
        (corpus, s)
    }

    /// The acceptance scenario: with a 20%-flaky fetcher the index demon
    /// must run to completion (retrying through transient failures), the
    /// retry count must surface in the metrics snapshot, and any abandoned
    /// pages in ServerStats.
    #[test]
    fn index_demon_completes_against_flaky_fetcher() {
        let (_, mut s) = flaky_server(2_000, 42);
        s.register_user(1, "u").unwrap();
        for i in 0..60u32 {
            s.submit(visit(1, i, u64::from(i)));
        }
        s.drain_demons().unwrap();
        assert!(s.staleness().iter().all(|r| r.staleness == 0), "no stall");
        let stats = s.stats();
        assert_eq!(
            stats.pages_fetched + stats.pages_abandoned,
            60,
            "every page either fetched or explicitly abandoned"
        );
        assert!(stats.fetch_retries > 0, "20% flakiness must force retries");
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("server.fetch.retries"), stats.fetch_retries);
        assert_eq!(
            snap.counter("server.fetch.abandoned"),
            stats.pages_abandoned
        );
        assert_eq!(stats.pages_abandoned, s.abandoned_pages().len() as u64);
        // Fetched pages were fully indexed despite the noise.
        assert_eq!(stats.docs_indexed, stats.pages_fetched);
    }

    /// A fetcher that *always* fails transiently: the demon must abandon
    /// every page after the bounded retry budget and still drain the bus.
    #[test]
    fn total_fetch_outage_abandons_but_never_stalls() {
        let (_, mut s) = flaky_server(10_000, 7);
        s.register_user(1, "u").unwrap();
        for i in 0..10u32 {
            s.submit(visit(1, i, u64::from(i)));
        }
        s.drain_demons().unwrap();
        let stats = s.stats();
        assert_eq!(stats.pages_fetched, 0);
        assert_eq!(stats.pages_abandoned, 10);
        assert_eq!(s.abandoned_pages(), (0..10u32).collect::<Vec<_>>());
        // Budget: max_attempts per page, retries = attempts - 1.
        let per_page = u64::from(ServerOptions::default().retry.max_attempts) - 1;
        assert_eq!(stats.fetch_retries, 10 * per_page);
        assert!(s.staleness().iter().all(|r| r.staleness == 0));
        // Abandoned pages are remembered: replaying the same page does not
        // re-burn the retry budget.
        s.submit(visit(1, 3, 99));
        s.drain_demons().unwrap();
        assert_eq!(s.stats().fetch_retries, 10 * per_page);
        assert_eq!(s.stats().pages_abandoned, 10);
    }

    /// Same seed, same flakiness → byte-identical retry/abandon outcome.
    #[test]
    fn flaky_runs_reproduce_from_seed() {
        let run = |seed: u64| {
            let (_, mut s) = flaky_server(5_000, seed);
            s.register_user(1, "u").unwrap();
            for i in 0..30u32 {
                s.submit(visit(1, i, u64::from(i)));
            }
            s.drain_demons().unwrap();
            let st = s.stats();
            (
                st.pages_fetched,
                st.fetch_retries,
                st.pages_abandoned,
                s.abandoned_pages(),
            )
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234), run(4321), "schedules differ across seeds");
    }
}
