//! The fetch demon's page source. In 2000 this was an HTTP crawler; here
//! it is a trait so the server runs identically against the simulated
//! corpus (or any future real fetcher).

use memex_web::corpus::Corpus;

/// What a fetch returns: body text, out-links, transfer size.
#[derive(Debug, Clone)]
pub struct PageContent {
    pub url: String,
    pub title: String,
    pub text: String,
    pub links: Vec<u32>,
    pub bytes: u32,
}

/// A source of page content addressed by dense page id.
pub trait PageFetcher {
    fn fetch(&self, page: u32) -> Option<PageContent>;
    /// Number of addressable pages (ids are `0..num_pages`).
    fn num_pages(&self) -> usize;
}

/// Fetcher over the synthetic corpus (shared, so a server and its
/// surrounding harness can both hold the world).
pub struct CorpusFetcher {
    corpus: std::sync::Arc<Corpus>,
}

impl CorpusFetcher {
    pub fn new(corpus: std::sync::Arc<Corpus>) -> CorpusFetcher {
        CorpusFetcher { corpus }
    }

    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

impl PageFetcher for CorpusFetcher {
    fn fetch(&self, page: u32) -> Option<PageContent> {
        let p = self.corpus.pages.get(page as usize)?;
        Some(PageContent {
            url: p.url.clone(),
            title: p.title.clone(),
            text: p.text.clone(),
            links: self.corpus.graph.out_links(page).to_vec(),
            bytes: p.bytes,
        })
    }

    fn num_pages(&self) -> usize {
        self.corpus.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memex_web::corpus::CorpusConfig;

    #[test]
    fn corpus_fetcher_round_trip() {
        let corpus = Corpus::generate(CorpusConfig {
            num_topics: 2,
            pages_per_topic: 5,
            ..CorpusConfig::default()
        });
        let corpus = std::sync::Arc::new(corpus);
        let f = CorpusFetcher::new(corpus.clone());
        assert_eq!(f.num_pages(), 10);
        let c = f.fetch(3).expect("page 3 exists");
        assert_eq!(c.url, corpus.pages[3].url);
        assert_eq!(c.links, corpus.graph.out_links(3));
        assert!(f.fetch(999).is_none());
    }
}
