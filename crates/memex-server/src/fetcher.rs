//! The fetch demon's page source. In 2000 this was an HTTP crawler; here
//! it is a trait so the server runs identically against the simulated
//! corpus (or any future real fetcher).
//!
//! Real crawls fail: the paper's server "recovers from network and
//! programming errors quickly". To test that, [`FlakyFetcher`] wraps any
//! fetcher with seeded transient failures and simulated latency, and
//! [`RetryPolicy`] bounds how hard the index demon tries before counting
//! a page abandoned and moving on. Both are deterministic given a seed —
//! a failing run reproduces exactly.

use std::collections::HashMap;
use std::sync::Mutex;

use memex_store::vfs::SplitMix64;
use memex_web::corpus::Corpus;

/// What a fetch returns: body text, out-links, transfer size.
#[derive(Debug, Clone)]
pub struct PageContent {
    pub url: String,
    pub title: String,
    pub text: String,
    pub links: Vec<u32>,
    pub bytes: u32,
}

/// Why a fetch attempt produced no content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The page does not exist (dead link); retrying cannot help.
    NotFound,
    /// A transient failure (timeout, reset, 5xx); a retry may succeed.
    Transient { reason: String },
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::NotFound => write!(f, "page not found"),
            FetchError::Transient { reason } => write!(f, "transient fetch failure: {reason}"),
        }
    }
}

/// A source of page content addressed by dense page id.
pub trait PageFetcher {
    fn fetch(&self, page: u32) -> Option<PageContent>;

    /// Like [`PageFetcher::fetch`] but distinguishes *why* nothing came
    /// back — the retry loop treats [`FetchError::NotFound`] as final and
    /// [`FetchError::Transient`] as retryable. The default adapter maps
    /// `None` to `NotFound`, so plain fetchers never look retryable.
    fn try_fetch(&self, page: u32) -> Result<PageContent, FetchError> {
        self.fetch(page).ok_or(FetchError::NotFound)
    }

    /// Number of addressable pages (ids are `0..num_pages`).
    fn num_pages(&self) -> usize;
}

/// Fetcher over the synthetic corpus (shared, so a server and its
/// surrounding harness can both hold the world).
pub struct CorpusFetcher {
    corpus: std::sync::Arc<Corpus>,
}

impl CorpusFetcher {
    pub fn new(corpus: std::sync::Arc<Corpus>) -> CorpusFetcher {
        CorpusFetcher { corpus }
    }

    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

impl PageFetcher for CorpusFetcher {
    fn fetch(&self, page: u32) -> Option<PageContent> {
        let p = self.corpus.pages.get(page as usize)?;
        Some(PageContent {
            url: p.url.clone(),
            title: p.title.clone(),
            text: p.text.clone(),
            links: self.corpus.graph.out_links(page).to_vec(),
            bytes: p.bytes,
        })
    }

    fn num_pages(&self) -> usize {
        self.corpus.num_pages()
    }
}

// ---------------------------------------------------------------------------
// Fault injection: flaky fetches + bounded retry
// ---------------------------------------------------------------------------

/// Tuning for a [`FlakyFetcher`]. Probabilities are per 10 000 attempts so
/// the schedule is integer-deterministic across platforms.
#[derive(Debug, Clone, Copy)]
pub struct FlakyConfig {
    pub seed: u64,
    /// Probability (per 10 000 attempts) of a transient failure.
    pub transient_per_10k: u32,
    /// Simulated base latency per attempt, in virtual milliseconds.
    pub latency_ms: u64,
    /// Additional seeded-random latency, `0..=jitter_ms`.
    pub latency_jitter_ms: u64,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig {
            seed: 0,
            transient_per_10k: 0,
            latency_ms: 20,
            latency_jitter_ms: 80,
        }
    }
}

#[derive(Default)]
struct FlakyState {
    /// Attempts seen per page — the fault decision is a pure function of
    /// `(seed, page, attempt)`, so outcomes do not depend on the order in
    /// which different pages are fetched.
    attempts: HashMap<u32, u32>,
    transient_failures: u64,
    simulated_latency_ms: u64,
}

/// Decorator over any [`PageFetcher`] that injects deterministic transient
/// failures and accrues simulated (virtual — never slept) latency.
pub struct FlakyFetcher<F> {
    inner: F,
    cfg: FlakyConfig,
    state: Mutex<FlakyState>,
}

impl<F: PageFetcher> FlakyFetcher<F> {
    pub fn new(inner: F, cfg: FlakyConfig) -> FlakyFetcher<F> {
        FlakyFetcher {
            inner,
            cfg,
            state: Mutex::new(FlakyState::default()),
        }
    }

    /// Transient failures injected so far.
    pub fn transient_failures(&self) -> u64 {
        self.state.lock().unwrap().transient_failures
    }

    /// Total virtual latency accrued across all attempts (never slept).
    pub fn simulated_latency_ms(&self) -> u64 {
        self.state.lock().unwrap().simulated_latency_ms
    }

    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: PageFetcher> PageFetcher for FlakyFetcher<F> {
    fn fetch(&self, page: u32) -> Option<PageContent> {
        self.try_fetch(page).ok()
    }

    fn try_fetch(&self, page: u32) -> Result<PageContent, FetchError> {
        let fail = {
            let mut s = self.state.lock().unwrap();
            let attempt = s.attempts.entry(page).or_insert(0);
            *attempt += 1;
            let mut rng = SplitMix64::new(
                self.cfg
                    .seed
                    .wrapping_add(u64::from(page).wrapping_mul(0x9E37_79B9))
                    .wrapping_add(u64::from(*attempt) << 32),
            );
            let fail = self.cfg.transient_per_10k > 0
                && rng.next() % 10_000 < u64::from(self.cfg.transient_per_10k);
            let latency = self.cfg.latency_ms
                + if self.cfg.latency_jitter_ms > 0 {
                    rng.next() % (self.cfg.latency_jitter_ms + 1)
                } else {
                    0
                };
            s.simulated_latency_ms += latency;
            if fail {
                s.transient_failures += 1;
            }
            fail
        };
        if fail {
            return Err(FetchError::Transient {
                reason: format!("injected timeout on page {page}"),
            });
        }
        self.inner.try_fetch(page)
    }

    fn num_pages(&self) -> usize {
        self.inner.num_pages()
    }
}

/// Bounded retry with exponential backoff and deterministic jitter; all
/// time is virtual (the demon never sleeps in tests — the backoff values
/// only count against [`RetryPolicy::deadline_ms`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per page (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, in virtual milliseconds.
    pub base_backoff_ms: u64,
    /// Cap on a single backoff interval.
    pub max_backoff_ms: u64,
    /// Per-page budget of virtual time; once the accrued backoff crosses
    /// this, the page is abandoned even if attempts remain.
    pub deadline_ms: u64,
    /// Seed for the jitter, so schedules reproduce exactly.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            deadline_ms: 10_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff to wait after failed attempt number `attempt` (1-based)
    /// for `page`: exponential growth capped at `max_backoff_ms`, with
    /// deterministic "equal jitter" — the interval lands in
    /// `[cap/2, cap]`, keyed on `(jitter_seed, page, attempt)`.
    pub fn backoff_ms(&self, page: u32, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(20);
        let cap = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms)
            .max(1);
        let half = cap / 2;
        let mut rng = SplitMix64::new(
            self.jitter_seed
                .wrapping_add(u64::from(page).wrapping_mul(0x517C_C1B7_2722_0A95))
                .wrapping_add(u64::from(attempt)),
        );
        half + rng.next() % (cap - half + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memex_web::corpus::CorpusConfig;

    #[test]
    fn corpus_fetcher_round_trip() {
        let corpus = Corpus::generate(CorpusConfig {
            num_topics: 2,
            pages_per_topic: 5,
            ..CorpusConfig::default()
        });
        let corpus = std::sync::Arc::new(corpus);
        let f = CorpusFetcher::new(corpus.clone());
        assert_eq!(f.num_pages(), 10);
        let c = f.fetch(3).expect("page 3 exists");
        assert_eq!(c.url, corpus.pages[3].url);
        assert_eq!(c.links, corpus.graph.out_links(3));
        assert!(f.fetch(999).is_none());
        assert_eq!(f.try_fetch(999).err(), Some(FetchError::NotFound));
    }

    fn small_corpus() -> std::sync::Arc<Corpus> {
        std::sync::Arc::new(Corpus::generate(CorpusConfig {
            num_topics: 2,
            pages_per_topic: 10,
            ..CorpusConfig::default()
        }))
    }

    #[test]
    fn flaky_fetcher_is_deterministic_per_seed() {
        let outcomes = |seed: u64| {
            let f = FlakyFetcher::new(
                CorpusFetcher::new(small_corpus()),
                FlakyConfig {
                    seed,
                    transient_per_10k: 5_000,
                    ..FlakyConfig::default()
                },
            );
            let mut out = Vec::new();
            for page in 0..20u32 {
                for _ in 0..3 {
                    out.push(f.try_fetch(page).is_ok());
                }
            }
            (out, f.transient_failures(), f.simulated_latency_ms())
        };
        assert_eq!(outcomes(7), outcomes(7));
        let (o7, fails, latency) = outcomes(7);
        assert!(fails > 0, "50% schedule must fire over 60 attempts");
        assert!(latency > 0);
        assert_ne!(o7, outcomes(8).0, "different seed, different schedule");
    }

    #[test]
    fn flaky_fetcher_distinguishes_transient_from_not_found() {
        let f = FlakyFetcher::new(
            CorpusFetcher::new(small_corpus()),
            FlakyConfig {
                seed: 1,
                transient_per_10k: 10_000, // always fail
                ..FlakyConfig::default()
            },
        );
        assert!(matches!(f.try_fetch(0), Err(FetchError::Transient { .. })));
        let ok = FlakyFetcher::new(CorpusFetcher::new(small_corpus()), FlakyConfig::default());
        assert!(ok.try_fetch(0).is_ok(), "0% schedule never fails");
        assert_eq!(ok.try_fetch(9_999).err(), Some(FetchError::NotFound));
    }

    #[test]
    fn retry_backoff_grows_caps_and_reproduces() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
            deadline_ms: 60_000,
            jitter_seed: 3,
        };
        for attempt in 1..8 {
            let b = p.backoff_ms(5, attempt);
            let cap = (100u64 << (attempt - 1)).min(1_000);
            assert!(
                b >= cap / 2 && b <= cap,
                "attempt {attempt}: {b} not in [{}, {cap}]",
                cap / 2
            );
            assert_eq!(b, p.backoff_ms(5, attempt), "jitter must reproduce");
        }
        assert_ne!(
            (1..8).map(|a| p.backoff_ms(1, a)).collect::<Vec<_>>(),
            (1..8).map(|a| p.backoff_ms(2, a)).collect::<Vec<_>>(),
            "different pages jitter differently"
        );
    }
}
