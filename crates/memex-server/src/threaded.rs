//! The concurrent deployment of the pipeline for experiment F3: one
//! producer (the UI event handler / crawler side of Fig. 3) and several
//! demon threads consuming through the loosely-consistent bus, with
//! optional mid-stream crash injection in one demon.
//!
//! This measures the three properties the paper claims for the design:
//! ingest throughput independent of demon speed, bounded-but-nonzero
//! consumer staleness, and fast recovery "even if it has to discard a few
//! client events".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use memex_obs::{MetricsRegistry, Snapshot};
use memex_store::version::VersionedLog;

/// Configuration for a threaded pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Total events the producer offers.
    pub num_events: usize,
    /// Events per published batch.
    pub batch_size: usize,
    /// Demon (consumer) threads.
    pub consumers: usize,
    /// Simulated per-event demon work (iterations of a checksum loop;
    /// models page analysis being much slower than ingest).
    pub work_per_event: u32,
    /// If set, consumer 0 crashes once after applying this many events,
    /// losing its in-flight batch, and then restarts.
    pub crash_after_events: Option<usize>,
    /// Microseconds the producer waits between batches (models real event
    /// arrival; 0 = produce as fast as possible). Without pacing the
    /// producer finishes before demons start and staleness trivially peaks
    /// at "everything".
    pub producer_pace_us: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            num_events: 10_000,
            batch_size: 32,
            consumers: 3,
            work_per_event: 50,
            crash_after_events: None,
            producer_pace_us: 0,
        }
    }
}

/// What a run measured.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    pub events_offered: usize,
    /// Events each demon actually processed (the crashed demon loses its
    /// in-flight batch).
    pub per_consumer_processed: Vec<usize>,
    /// Events lost to the injected crash.
    pub events_lost_in_crash: usize,
    /// Highest staleness (epochs behind) sampled during the run.
    pub max_staleness: u64,
    pub producer_elapsed: Duration,
    pub total_elapsed: Duration,
    /// Ingest throughput (events/s) seen by the producer.
    pub ingest_events_per_sec: f64,
    /// Full metrics snapshot from the run's registry (bus gauges, demon
    /// staleness, crash/work counters).
    pub metrics: Snapshot,
}

/// Run the threaded pipeline to completion.
pub fn run_threaded(config: ThreadedConfig) -> PipelineReport {
    assert!(config.consumers >= 1);
    let registry = MetricsRegistry::new();
    let log: VersionedLog<u64> = VersionedLog::new();
    log.attach_registry(&registry);
    let done = Arc::new(AtomicBool::new(false));
    let max_staleness = registry.gauge("pipeline.staleness.max");
    let lost = registry.counter("pipeline.events.lost_in_crash");
    let offered_total = registry.counter("pipeline.events.offered");
    let processed_total = registry.counter("pipeline.events.processed");
    let start = Instant::now();

    // Demon threads.
    let mut handles = Vec::new();
    for c in 0..config.consumers {
        let consumer = log.register(&format!("demon-{c}"));
        let log = log.clone();
        let done = Arc::clone(&done);
        let max_staleness = max_staleness.clone();
        let lost = lost.clone();
        let processed_total = processed_total.clone();
        let crash_after = if c == 0 {
            config.crash_after_events
        } else {
            None
        };
        let work = config.work_per_event;
        handles.push(std::thread::spawn(move || {
            let mut processed = 0usize;
            let mut crashed = crash_after.is_none();
            loop {
                let batches = consumer.poll();
                if batches.is_empty() {
                    if done.load(Ordering::Acquire) && consumer.staleness() == 0 {
                        break;
                    }
                    std::thread::yield_now();
                    continue;
                }
                // Sample staleness of the slowest demon.
                let reports = log.staleness();
                if let Some(worst) = reports.iter().map(|r| r.staleness).max() {
                    max_staleness.set_max(worst as i64);
                }
                for (_, batch) in batches {
                    if !crashed {
                        if let Some(limit) = crash_after {
                            if processed >= limit {
                                // Crash: the in-flight batch is lost; the
                                // demon restarts immediately (the bus kept
                                // our cursor, so no replay storm).
                                lost.add(batch.len() as u64);
                                crashed = true;
                                continue;
                            }
                        }
                    }
                    for &event in batch.iter() {
                        // Simulated analysis work.
                        let mut acc = event;
                        for _ in 0..work {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        std::hint::black_box(acc);
                        processed += 1;
                        processed_total.inc();
                    }
                }
            }
            processed
        }));
    }

    // Producer (the guaranteed-immediate ingest path).
    let mut offered = 0usize;
    let producer_start = Instant::now();
    let mut batch = Vec::with_capacity(config.batch_size);
    for i in 0..config.num_events {
        batch.push(i as u64);
        if batch.len() == config.batch_size {
            log.append(std::mem::take(&mut batch));
            log.publish();
            batch = Vec::with_capacity(config.batch_size);
            if config.producer_pace_us > 0 {
                std::thread::sleep(Duration::from_micros(config.producer_pace_us));
            }
        }
        offered += 1;
        offered_total.inc();
    }
    if !batch.is_empty() {
        log.append(batch);
        log.publish();
    }
    let producer_elapsed = producer_start.elapsed();
    done.store(true, Ordering::Release);

    let per_consumer_processed: Vec<usize> = handles
        .into_iter()
        .map(|h| h.join().expect("demon thread panicked"))
        .collect();
    let total_elapsed = start.elapsed();
    PipelineReport {
        events_offered: offered,
        per_consumer_processed,
        events_lost_in_crash: lost.get() as usize,
        max_staleness: max_staleness.get() as u64,
        producer_elapsed,
        total_elapsed,
        ingest_events_per_sec: offered as f64 / producer_elapsed.as_secs_f64().max(1e-9),
        metrics: registry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_consumers_see_all_events() {
        let report = run_threaded(ThreadedConfig {
            num_events: 2_000,
            batch_size: 16,
            consumers: 3,
            work_per_event: 10,
            crash_after_events: None,
            ..ThreadedConfig::default()
        });
        assert_eq!(report.events_offered, 2_000);
        for &p in &report.per_consumer_processed {
            assert_eq!(p, 2_000);
        }
        assert!(report.ingest_events_per_sec > 0.0);
        // The snapshot rode along and agrees with the report.
        assert_eq!(report.metrics.counter("pipeline.events.offered"), 2_000);
        assert_eq!(report.metrics.counter("pipeline.events.processed"), 6_000);
        assert!(report
            .metrics
            .gauges
            .iter()
            .any(|(n, _)| n.starts_with("store.version.staleness.demon-")));
    }

    #[test]
    fn slow_demons_lag_but_catch_up() {
        let report = run_threaded(ThreadedConfig {
            num_events: 3_000,
            batch_size: 8,
            consumers: 2,
            work_per_event: 2_000, // demons much slower than ingest
            crash_after_events: None,
            ..ThreadedConfig::default()
        });
        assert!(report.max_staleness > 0, "slow demons must fall behind");
        for &p in &report.per_consumer_processed {
            assert_eq!(p, 3_000, "but they catch up to everything");
        }
    }

    #[test]
    fn crash_loses_only_the_inflight_batch() {
        let report = run_threaded(ThreadedConfig {
            num_events: 2_000,
            batch_size: 20,
            consumers: 2,
            work_per_event: 10,
            crash_after_events: Some(500),
            ..ThreadedConfig::default()
        });
        assert!(
            report.events_lost_in_crash > 0,
            "the crash must cost something"
        );
        assert!(
            report.events_lost_in_crash <= 20,
            "…but at most one batch ({} lost)",
            report.events_lost_in_crash
        );
        // The crashed demon processed everything except the lost batch.
        assert_eq!(
            report.per_consumer_processed[0] + report.events_lost_in_crash,
            2_000
        );
        // The healthy demon was unaffected.
        assert_eq!(report.per_consumer_processed[1], 2_000);
    }
}
