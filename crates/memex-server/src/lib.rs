//! # memex-server — the server substrate (paper §3, Fig. 3)
//!
//! "The server consists of servlets that perform various archiving and
//! mining functions as triggered by client action, or continually as
//! demons. … There are some user interface-related events that must be
//! guaranteed immediate processing. … With many users concurrently using
//! Memex, the server cannot analyze all visited pages, or update mined
//! results, in real time."
//!
//! * [`events`] — the client event vocabulary and the three privacy modes
//!   (don't archive / private / community, Fig. 1);
//! * [`fetcher`] — the page-fetch demon's source abstraction (the live Web
//!   in the paper; the simulated corpus here);
//! * [`pipeline`] — [`pipeline::MemexServer`]: immediate ingest onto the
//!   loosely-consistent bus, background demons (fetch→index, trail), the
//!   RDBMS bookkeeping, and bounded-bus event discard;
//! * [`threaded`] — the concurrent producer/consumer deployment used by
//!   experiment F3 to measure throughput, staleness and crash recovery.

pub mod events;
pub mod fetcher;
pub mod pipeline;
pub mod threaded;

pub use events::{ArchiveMode, ClientEvent, VisitEvent};
pub use fetcher::{
    CorpusFetcher, FetchError, FlakyConfig, FlakyFetcher, PageContent, PageFetcher, RetryPolicy,
};
pub use pipeline::{MemexServer, ServerOptions, ServerStats};
