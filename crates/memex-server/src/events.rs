//! Client events and privacy modes.
//!
//! "At any time, the user can choose not to archive surfing actions,
//! archive for private use, or archive for use by the community" (§2).

/// The three archiving modes of the Memex client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArchiveMode {
    /// Do not archive at all — events are dropped at ingest.
    Off,
    /// Archive for the user's own queries only.
    Private,
    /// Archive for community-level mining too.
    #[default]
    Community,
}

/// A page visit as reported by the browser tap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VisitEvent {
    pub user: u32,
    pub session: u32,
    /// Dense page id (the server's URL table resolves strings to ids).
    pub page: u32,
    pub url: String,
    /// Logical milliseconds.
    pub time: u64,
    /// The page whose link was followed, when the tap knows it.
    pub referrer: Option<u32>,
}

/// Everything a client can send.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClientEvent {
    Visit(VisitEvent),
    /// Deliberate bookmark into a named folder (Fig. 1 — explicit topic
    /// exemplification).
    Bookmark {
        user: u32,
        page: u32,
        url: String,
        folder: String,
        time: u64,
    },
    /// Privacy-mode switch.
    SetMode {
        user: u32,
        mode: ArchiveMode,
        time: u64,
    },
}

impl ClientEvent {
    /// The user who produced the event.
    pub fn user(&self) -> u32 {
        match self {
            ClientEvent::Visit(v) => v.user,
            ClientEvent::Bookmark { user, .. } => *user,
            ClientEvent::SetMode { user, .. } => *user,
        }
    }

    /// Event timestamp.
    pub fn time(&self) -> u64 {
        match self {
            ClientEvent::Visit(v) => v.time,
            ClientEvent::Bookmark { time, .. } => *time,
            ClientEvent::SetMode { time, .. } => *time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let v = ClientEvent::Visit(VisitEvent {
            user: 3,
            session: 1,
            page: 9,
            url: "http://x".into(),
            time: 77,
            referrer: None,
        });
        assert_eq!(v.user(), 3);
        assert_eq!(v.time(), 77);
        let b = ClientEvent::Bookmark {
            user: 4,
            page: 1,
            url: "http://y".into(),
            folder: "Music".into(),
            time: 88,
        };
        assert_eq!(b.user(), 4);
        assert_eq!(b.time(), 88);
        let m = ClientEvent::SetMode {
            user: 5,
            mode: ArchiveMode::Off,
            time: 99,
        };
        assert_eq!(m.user(), 5);
        assert_eq!(m.time(), 99);
    }

    #[test]
    fn default_mode_is_community() {
        assert_eq!(ArchiveMode::default(), ArchiveMode::Community);
    }
}
