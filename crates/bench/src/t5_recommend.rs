//! **T5 — §4:** "a user profile is a set of weights associated with each
//! node of a theme hierarchy; this gives us a means of comparing profiles
//! that is far superior to overlap in sets of URLs. We intend to use this
//! for better collaborative recommendation."
//!
//! Two measurements over a simulated community with known interest
//! groups:
//! 1. **neighbour finding** — does the top-3 most-similar-surfer list
//!    actually share ground-truth interests? (theme profiles vs URL
//!    Jaccard);
//! 2. **recommendation precision@10** — are recommended pages on the
//!    user's true interests?

use std::sync::Arc;

use memex_core::recommend::{recommend_pages, similar_surfers, similar_surfers_by_url};
use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::surfer::{Community, SurferConfig};

use crate::table::{pct, Table};
use crate::worlds::populated_memex;

/// Interest overlap of two users (|∩| / |∪| of ground-truth interests).
fn interest_overlap(a: &[usize], b: &[usize]) -> f64 {
    let sa: std::collections::HashSet<usize> = a.iter().copied().collect();
    let sb: std::collections::HashSet<usize> = b.iter().copied().collect();
    sa.intersection(&sb).count() as f64 / sa.union(&sb).count().max(1) as f64
}

/// The T5 table.
pub fn run(quick: bool) -> Table {
    // URL overlap is only a weak baseline when the web is much bigger than
    // any one user's trail (as the real Web was): same-interest surfers
    // then visit mostly *disjoint* URL sets while their themes coincide.
    // A small world would hand the baseline an artificial advantage, so T5
    // uses a large page pool relative to per-user visit counts.
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: if quick { 4 } else { 8 },
        pages_per_topic: if quick { 150 } else { 400 },
        seed: 88,
        ..CorpusConfig::default()
    }));
    // Sparse trails: a handful of short sessions each, so two surfers who
    // share an interest have almost no URLs in common (each covers ~5% of
    // a 400-page topic) — the regime where overlap-of-URLs breaks down but
    // theme profiles do not.
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: if quick { 8 } else { 16 },
            sessions_per_user: 4,
            session_length: (4, 9),
            bookmark_prob: 0.25,
            // Search-engine-style entry: sessions start anywhere on topic,
            // so shared-interest surfers rarely co-visit a URL (as on the
            // real Web).
            start_anywhere_on_topic: true,
            seed: 88 ^ 0x5157,
            ..SurferConfig::default()
        },
    );
    let memex = populated_memex(corpus.clone(), &community);
    let truth_of: std::collections::HashMap<u32, Vec<usize>> = community
        .users
        .iter()
        .map(|u| (u.user, u.interests.clone()))
        .collect();
    let k_neigh = 3;
    let mut theme_share = 0.0;
    let mut url_share = 0.0;
    let mut theme_overlap = 0.0;
    let mut url_overlap_score = 0.0;
    let mut ideal_overlap = 0.0;
    let mut theme_primary = 0.0;
    let mut url_primary = 0.0;
    let mut rec_precision = 0.0;
    let mut users_counted = 0usize;
    for truth in &community.users {
        let user = truth.user;
        let by_theme = similar_surfers(&memex, user, k_neigh);
        let by_url = similar_surfers_by_url(&memex, user, k_neigh);
        if by_theme.is_empty() || by_url.is_empty() {
            continue;
        }
        let share = |list: &[(u32, f64)]| {
            list.iter()
                .filter(|(v, _)| truth_of[v].iter().any(|t| truth.interests.contains(t)))
                .count() as f64
                / list.len() as f64
        };
        let mean_overlap = |list: &[(u32, f64)]| {
            list.iter()
                .map(|(v, _)| interest_overlap(&truth.interests, &truth_of[v]))
                .sum::<f64>()
                / list.len() as f64
        };
        // Does the top-ranked neighbour share this user's *primary*
        // interest? (A much stricter test than "any interest".)
        let primary_hit = |list: &[(u32, f64)]| {
            f64::from(u8::from(
                list.first()
                    .is_some_and(|(v, _)| truth_of[v].contains(&truth.interests[0])),
            ))
        };
        // The unachievable ceiling: the 3 truly most-overlapping users.
        let mut best: Vec<f64> = community
            .users
            .iter()
            .filter(|o| o.user != user)
            .map(|o| interest_overlap(&truth.interests, &o.interests))
            .collect();
        best.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        ideal_overlap += best.iter().take(k_neigh).sum::<f64>() / k_neigh as f64;
        theme_share += share(&by_theme);
        url_share += share(&by_url);
        theme_overlap += mean_overlap(&by_theme);
        url_overlap_score += mean_overlap(&by_url);
        theme_primary += primary_hit(&by_theme);
        url_primary += primary_hit(&by_url);
        // Recommendation precision: recommended pages on true interests.
        let recs = recommend_pages(&memex, user, 10);
        if !recs.is_empty() {
            let good = recs
                .iter()
                .filter(|(p, _)| truth.interests.contains(&corpus.topic_of(*p)))
                .count();
            rec_precision += good as f64 / recs.len() as f64;
        }
        users_counted += 1;
    }
    let n = users_counted.max(1) as f64;
    let mut table = Table::new(
        "T5: comparing surfers — theme profiles vs URL overlap",
        &["metric", "theme profiles", "URL overlap (baseline)"],
    );
    table.row(vec![
        format!("top-{k_neigh} neighbours sharing an interest"),
        pct(theme_share / n),
        pct(url_share / n),
    ]);
    table.row(vec![
        format!("mean interest-overlap of top-{k_neigh}"),
        pct(theme_overlap / n),
        pct(url_overlap_score / n),
    ]);
    table.row(vec![
        "top-1 neighbour shares primary interest".to_string(),
        pct(theme_primary / n),
        pct(url_primary / n),
    ]);
    table.row(vec![
        "recommendation precision@10".to_string(),
        pct(rec_precision / n),
        "-".to_string(),
    ]);
    table.note(&format!(
        "ceiling: the 3 truly-closest users average {} interest-overlap",
        pct(ideal_overlap / n)
    ));
    table.note("paper: theme-node weight profiles are 'far superior to overlap in sets of URLs'");
    table
}
