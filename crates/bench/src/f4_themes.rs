//! **F4 — Figure 4, theme discovery:** "Memex computes, from the
//! document-folder associations of multiple users, a topic taxonomy
//! specifically tailored for the interests of that user population …
//! refining topics where needed and coarsening where possible." §4 adds
//! that universal hierarchies (Yahoo!/ODP) "are neither necessary nor
//! sufficient … too specialized in most topics, and not sufficiently
//! specialized in the areas in which the community is deeply interested."
//!
//! We compare, on the community's bookmarked documents, the MDL-style
//! description cost and ground-truth NMI of four organisations:
//! per-user folders as-is, the discovered community themes, and two
//! "universal directory" stand-ins (an over-specialised fine one and an
//! under-specialised coarse one, built *without* looking at the
//! community).

use std::collections::HashMap;

use memex_cluster::kmeans::KMeans;
use memex_cluster::quality::{nmi, partition_cost};
use memex_text::vector::SparseVec;

use crate::table::{f3, Table};
use crate::worlds::standard_world;

/// Model cost per class. One unit ≈ the misfit of four averagely-fitting
/// documents, which is roughly what describing a theme signature costs;
/// the qualitative ordering is stable across a wide alpha range (see the
/// ablation rows the harness prints).
const ALPHA: f64 = 1.0;

/// The F4 table.
pub fn run(quick: bool) -> Table {
    let (corpus, _community, memex) = standard_world(quick, 44);
    let (themes, doc_pages) = memex.community_themes().clone();
    let docs: Vec<SparseVec> = doc_pages
        .iter()
        .map(|&p| memex.page_vector(p).unwrap_or_default())
        .collect();
    let truth: Vec<usize> = doc_pages.iter().map(|&p| corpus.topic_of(p)).collect();

    // (a) per-user folders: each (user, folder) is its own class.
    let mut folder_label: HashMap<usize, usize> = HashMap::new();
    {
        let mut groups: HashMap<(u32, String), usize> = HashMap::new();
        for b in &memex.server.bookmarks {
            let next = groups.len();
            let g = *groups.entry((b.user, b.folder.clone())).or_insert(next);
            let doc = doc_pages
                .iter()
                .position(|&p| p == b.page)
                .expect("bookmarked doc");
            folder_label.entry(doc).or_insert(g);
        }
    }
    let user_labels: Vec<usize> = (0..docs.len()).map(|d| folder_label[&d]).collect();

    // (b) community themes.
    let mut node_label: HashMap<u32, usize> = HashMap::new();
    let theme_labels: Vec<usize> = themes
        .doc_theme
        .iter()
        .map(|t| {
            let node = t.expect("every bookmarked doc has a theme");
            let next = node_label.len();
            *node_label.entry(node).or_insert(next)
        })
        .collect();

    // (c) universal directories: global k-means over ALL corpus pages
    // (community-agnostic), fine and coarse.
    let analyzed = corpus.analyze();
    let universal = |k: usize, seed: u64| -> Vec<usize> {
        let mut km = KMeans::new(k);
        km.seed = seed;
        let model = km.run(&analyzed.tfidf, None);
        docs.iter()
            .map(|d| {
                let mut v = d.clone();
                v.normalize();
                model
                    .centroids
                    .iter()
                    .enumerate()
                    .map(|(c, cen)| (c, v.dot(cen)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect()
    };
    let fine = universal(corpus.config.num_topics * 3, 7);
    let coarse = universal((corpus.config.num_topics / 2).max(2), 7);

    let mut table = Table::new(
        "F4: organising the community's bookmarks — description cost and fit",
        &[
            "organisation",
            "classes",
            "description cost",
            "NMI vs truth",
        ],
    );
    let mut add = |name: &str, labels: &[usize]| {
        let k = labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        table.row(vec![
            name.to_string(),
            k.to_string(),
            f3(partition_cost(&docs, labels, ALPHA)),
            f3(nmi(labels, &truth)),
        ]);
    };
    add("per-user folders (no sharing)", &user_labels);
    add("community themes (ours)", &theme_labels);
    add("universal directory, fine (3x topics)", &fine);
    add("universal directory, coarse (topics/2)", &coarse);
    table.note(&format!(
        "theme discovery performed {} merges, {} refinements, {} coarsenings",
        themes.merges, themes.refines, themes.coarsens
    ));
    table.note(
        "paper (Fig. 4): themes capture common factors, keep individuality; beat universal trees",
    );
    table
}
