//! **F1 — Figure 1, the folder tab:** "The classification demon then
//! classifies all subsequent history elements, marking its guesses by '?'.
//! The user can correct or reinforce the classifier using cut/paste, thus
//! continually improving Memex's models for the user's topics of
//! interest."
//!
//! We measure exactly that loop: seed the folder space with a handful of
//! bookmarks, let the demon guess the rest of the history, then simulate
//! rounds in which the user fixes a batch of wrong guesses (cut/paste) and
//! confirms a batch of right ones — accuracy per round should climb.

use memex_core::folders::FolderSpace;
use memex_learn::taxonomy::TopicId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::table::{pct, Table};
use crate::worlds::standard_corpus;

/// Accuracy of the demon's guesses over one user's history per feedback
/// round (exposed for the criterion bench).
pub fn feedback_curve(quick: bool, seed: u64, rounds: usize, fixes_per_round: usize) -> Vec<f64> {
    let corpus = standard_corpus(quick, seed);
    let analyzed = corpus.analyze();
    let num_topics = corpus.config.num_topics;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    // The user's history: a sample of interior+front pages of all topics.
    let mut history: Vec<u32> = (0..corpus.num_pages() as u32).collect();
    history.shuffle(&mut rng);
    history.truncate(corpus.num_pages() / 2);
    // Folder space with one folder per topic; seed with 2 bookmarks each.
    let mut fs = FolderSpace::new();
    let folders: Vec<TopicId> = (0..num_topics)
        .map(|t| fs.add_folder(&format!("/{}", corpus.topic_names[t])))
        .collect();
    let mut seeded = vec![0usize; num_topics];
    let mut rest: Vec<u32> = Vec::new();
    for &p in &history {
        let t = corpus.topic_of(p);
        if seeded[t] < 2 && !corpus.pages[p as usize].is_front {
            fs.bookmark(p, folders[t], &analyzed.tf[p as usize]);
            seeded[t] += 1;
        } else {
            rest.push(p);
        }
    }
    let mut curve = Vec::with_capacity(rounds + 1);
    for round in 0..=rounds {
        // The demon (re)classifies the unconfirmed history.
        let mut wrong: Vec<(u32, usize)> = Vec::new();
        let mut right: Vec<u32> = Vec::new();
        let mut correct = 0usize;
        for &p in &rest {
            if fs.assignment(p).is_some_and(|a| a.confirmed) {
                correct += 1; // the user already filed it
                continue;
            }
            let truth = corpus.topic_of(p);
            match fs.classify(p, &analyzed.tf[p as usize]) {
                Some(f) if f == folders[truth] => {
                    correct += 1;
                    right.push(p);
                }
                _ => wrong.push((p, truth)),
            }
        }
        curve.push(correct as f64 / rest.len().max(1) as f64);
        if round == rounds {
            break;
        }
        // The user fixes a batch of wrong guesses (cut/paste = correct())
        // and reinforces a batch of right ones (confirm()).
        wrong.shuffle(&mut rng);
        for &(p, truth) in wrong.iter().take(fixes_per_round) {
            fs.correct(p, folders[truth]);
        }
        right.shuffle(&mut rng);
        for &p in right.iter().take(fixes_per_round) {
            fs.confirm(p);
        }
    }
    curve
}

/// The F1 table: accuracy per feedback round.
pub fn run(quick: bool) -> Table {
    let rounds = 6;
    let fixes = if quick { 8 } else { 15 };
    let curve = feedback_curve(quick, 11, rounds, fixes);
    let mut table = Table::new(
        "F1: folder-tab feedback loop — demon accuracy per round",
        &[
            "round",
            "corrections+confirmations so far",
            "history accuracy",
        ],
    );
    for (r, acc) in curve.iter().enumerate() {
        table.row(vec![r.to_string(), (r * 2 * fixes).to_string(), pct(*acc)]);
    }
    let first = curve.first().copied().unwrap_or(0.0);
    let last = curve.last().copied().unwrap_or(0.0);
    table.note(&format!(
        "accuracy climbs {} -> {} over {rounds} rounds",
        pct(first),
        pct(last)
    ));
    table.note("paper (Fig. 1): guesses marked '?', user cut/paste continually improves the model");
    table
}
