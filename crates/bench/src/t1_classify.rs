//! **T1 — the headline claim (§4):** "For classification we use a new
//! technique that combines features from text, hyperlink and folder
//! placement to offer significantly boosted accuracy, increasing from a
//! mere 40% accuracy for text-only learners to about 80% with our more
//! elaborate model."
//!
//! Setup: interior pages (rich text) are the labelled training set; the
//! bookmark-magnet **front pages** (little text, many links) are the
//! targets. Folder co-placement groups come from the simulated community's
//! bookmark folders, links from the synthetic web. We sweep the front-page
//! topical-text bias: the weaker the text, the wider the gap.

use std::collections::HashMap;

use memex_learn::enhanced::{EnhancedClassifier, EnhancedOptions, EnhancedProblem};
use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::surfer::{Community, SurferConfig};

use crate::table::{pct, Table};

/// One sweep point's outcome.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyOutcome {
    pub text_only_acc: f64,
    pub enhanced_acc: f64,
    pub targets: usize,
}

/// Run one configuration (exposed for the criterion bench).
pub fn run_once(front_topic_bias: f64, quick: bool, seed: u64) -> ClassifyOutcome {
    run_once_with_locality(front_topic_bias, 0.75, quick, seed)
}

/// Like [`run_once`] with explicit hyperlink topic-locality (the ablation
/// axis: noisier links weaken the strongest evidence channel).
pub fn run_once_with_locality(
    front_topic_bias: f64,
    link_locality: f64,
    quick: bool,
    seed: u64,
) -> ClassifyOutcome {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: if quick { 4 } else { 8 },
        pages_per_topic: if quick { 40 } else { 80 },
        front_topic_bias,
        // Front pages of 2000 were messy hubs: modest fan-out and noisy
        // targets, so link evidence helps a lot but is not a free lunch.
        front_links: (3, 8),
        link_locality,
        seed,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: if quick { 6 } else { 12 },
            sessions_per_user: if quick { 6 } else { 12 },
            bookmark_prob: 0.2,
            seed: seed ^ 0xB00C,
            ..SurferConfig::default()
        },
    );
    // Folder co-placement groups from the community's bookmark folders.
    let mut groups: HashMap<(u32, &str), Vec<usize>> = HashMap::new();
    for b in &community.bookmarks {
        groups
            .entry((b.user, b.folder.as_str()))
            .or_default()
            .push(b.page as usize);
    }
    let mut folders: Vec<Vec<usize>> = groups
        .into_values()
        .map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
        .filter(|v| v.len() >= 2)
        .collect();
    folders.sort();
    // Labels: a third of the interior pages (the supervision a server
    // would actually have — confirmed bookmark filings); everything else,
    // including every front page, is unlabelled. Targets are the front
    // pages only.
    let labels: Vec<Option<usize>> = corpus
        .pages
        .iter()
        .map(|p| {
            if !p.is_front && p.id % 3 == 0 {
                Some(p.topic)
            } else {
                None
            }
        })
        .collect();
    let problem = EnhancedProblem {
        num_classes: corpus.config.num_topics,
        docs: &analyzed.tf,
        graph: &corpus.graph,
        folders: &folders,
        labels: &labels,
    };
    let result = EnhancedClassifier::new(EnhancedOptions::default()).classify(&problem);
    let mut text_ok = 0usize;
    let mut enh_ok = 0usize;
    let mut targets = 0usize;
    for p in &corpus.pages {
        if !p.is_front {
            continue;
        }
        targets += 1;
        if result.text_only[p.id as usize] == p.topic {
            text_ok += 1;
        }
        if result.predictions[p.id as usize] == p.topic {
            enh_ok += 1;
        }
    }
    ClassifyOutcome {
        text_only_acc: text_ok as f64 / targets.max(1) as f64,
        enhanced_acc: enh_ok as f64 / targets.max(1) as f64,
        targets,
    }
}

/// The full T1 table: sweep the front-page text signal.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "T1: classification accuracy on bookmarked front pages",
        &[
            "front topic bias",
            "targets",
            "text-only",
            "text+link+folder",
            "lift",
        ],
    );
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
    // (front-text bias, link locality): the first three rows sweep text
    // signal at realistic locality; the last two weaken the link channel.
    let grid: &[(f64, f64)] = &[
        (0.05, 0.75),
        (0.15, 0.75),
        (0.30, 0.75),
        (0.05, 0.6),
        (0.05, 0.5),
    ];
    for &(bias, locality) in grid {
        let mut text = 0.0;
        let mut enh = 0.0;
        let mut targets = 0usize;
        for &s in seeds {
            let o = run_once_with_locality(bias, locality, quick, s);
            text += o.text_only_acc;
            enh += o.enhanced_acc;
            targets = o.targets;
        }
        let n = seeds.len() as f64;
        table.row(vec![
            format!("{bias:.2} / locality {locality:.2}"),
            targets.to_string(),
            pct(text / n),
            pct(enh / n),
            format!("+{:.1}pp", 100.0 * (enh - text) / n),
        ]);
    }
    table.note("paper: ~40% text-only -> ~80% enhanced on bookmark-like pages");
    table.note("labels: a third of interior pages; targets: front pages (short text, many links)");
    table
}
