//! Shared world builders: the standard corpus/community/Memex stacks the
//! experiments run against.

use std::sync::Arc;

use memex_core::memex::{Memex, MemexOptions};
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::surfer::{Community, SurferConfig};

/// The standard evaluation corpus.
pub fn standard_corpus(quick: bool, seed: u64) -> Arc<Corpus> {
    Arc::new(Corpus::generate(CorpusConfig {
        num_topics: if quick { 4 } else { 8 },
        pages_per_topic: if quick { 40 } else { 80 },
        seed,
        ..CorpusConfig::default()
    }))
}

/// The standard simulated community over a corpus.
pub fn standard_community(corpus: &Corpus, quick: bool, seed: u64) -> Community {
    Community::simulate(
        corpus,
        &SurferConfig {
            num_users: if quick { 6 } else { 16 },
            sessions_per_user: if quick { 8 } else { 20 },
            seed,
            ..SurferConfig::default()
        },
    )
}

/// A fully populated Memex: all events ingested in time order (bookmarks
/// interleaved), demons drained.
pub fn populated_memex(corpus: Arc<Corpus>, community: &Community) -> Memex {
    populated_memex_opts(corpus, community, MemexOptions::default())
}

/// [`populated_memex`] with explicit options (e.g. a different storage
/// engine behind the index).
pub fn populated_memex_opts(
    corpus: Arc<Corpus>,
    community: &Community,
    opts: MemexOptions,
) -> Memex {
    let mut memex = Memex::new(corpus.clone(), opts).expect("in-memory memex");
    for truth in &community.users {
        memex
            .register_user(truth.user, &format!("user{}", truth.user))
            .expect("register");
    }
    let mut bi = 0usize;
    for v in &community.visits {
        while bi < community.bookmarks.len() && community.bookmarks[bi].time <= v.time {
            let b = &community.bookmarks[bi];
            memex.submit(ClientEvent::Bookmark {
                user: b.user,
                page: b.page,
                url: corpus.pages[b.page as usize].url.clone(),
                folder: format!("/{}", b.folder),
                time: b.time,
            });
            bi += 1;
        }
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: v.user,
            session: v.session,
            page: v.page,
            url: corpus.pages[v.page as usize].url.clone(),
            time: v.time,
            referrer: v.referrer,
        }));
    }
    memex.run_demons().expect("demons");
    memex
}

/// Convenience: corpus + community + populated Memex in one call.
pub fn standard_world(quick: bool, seed: u64) -> (Arc<Corpus>, Community, Memex) {
    let corpus = standard_corpus(quick, seed);
    let community = standard_community(&corpus, quick, seed ^ 0x5157);
    let memex = populated_memex(corpus.clone(), &community);
    (corpus, community, memex)
}
