//! **T6 — the §1 motivating questions:** "What was the URL I visited about
//! six months back regarding compiler optimization…?" and "How is my ISP
//! bill divided into access for work, travel, news, hobby and
//! entertainment?"
//!
//! 1. **Recall@k** — sample real visits from months back, query with a few
//!    words of the visited page plus a time window, and check the page
//!    comes back;
//! 2. **Bill accuracy** — compare the per-folder byte split Memex reports
//!    against the ground-truth per-topic split from the simulator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::table::{pct, Table};
use crate::worlds::standard_world;

/// The T6 table.
pub fn run(quick: bool) -> Table {
    let (corpus, community, memex) = standard_world(quick, 99);
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    // --- Recall@10 over sampled dated queries.
    let mut candidates: Vec<memex_graph::trail::Visit> = memex
        .server
        .trails
        .visits()
        .iter()
        .filter(|v| !corpus.pages[v.page as usize].is_front)
        .copied()
        .collect();
    candidates.shuffle(&mut rng);
    let samples = if quick { 20 } else { 60 };
    let month = 30 * 24 * 3_600_000u64;
    let mut hits_at = [0usize; 3]; // @1, @5, @10
    let mut asked = 0usize;
    for v in candidates.into_iter().take(samples) {
        let words: Vec<&str> = corpus.pages[v.page as usize]
            .text
            .split_whitespace()
            .take(5)
            .collect();
        let query = words.join(" ");
        let res = memex
            .recall(
                v.user,
                &query,
                v.time.saturating_sub(month),
                v.time + month,
                10,
            )
            .expect("recall");
        asked += 1;
        if let Some(rank) = res.iter().position(|h| h.page == v.page) {
            if rank < 1 {
                hits_at[0] += 1;
            }
            if rank < 5 {
                hits_at[1] += 1;
            }
            hits_at[2] += 1;
        }
    }
    // --- Bill accuracy: L1 distance between reported and true fractions.
    let mut l1_total = 0.0;
    let mut billed_users = 0usize;
    for truth in community.users.iter().take(6) {
        let lines = memex.bill(truth.user, 0, u64::MAX);
        let true_bytes = community.bytes_by_topic(&corpus, truth.user);
        let total: u64 = true_bytes.iter().sum();
        if total == 0 || lines.is_empty() {
            continue;
        }
        // Map each reported folder line to the ground-truth topic by name.
        let mut l1 = 0.0;
        for (t, name) in corpus.topic_names.iter().enumerate() {
            let reported: f64 = lines
                .iter()
                .filter(|l| l.folder.contains(name.as_str()))
                .map(|l| l.fraction)
                .sum();
            let actual = true_bytes[t] as f64 / total as f64;
            l1 += (reported - actual).abs();
        }
        l1_total += l1 / 2.0; // total-variation distance in [0,1]
        billed_users += 1;
    }
    let mut table = Table::new(
        "T6: months-old recall and ISP bill breakdown",
        &["measurement", "value"],
    );
    table.row(vec!["dated queries asked".into(), asked.to_string()]);
    table.row(vec![
        "recall@1".into(),
        pct(hits_at[0] as f64 / asked.max(1) as f64),
    ]);
    table.row(vec![
        "recall@5".into(),
        pct(hits_at[1] as f64 / asked.max(1) as f64),
    ]);
    table.row(vec![
        "recall@10".into(),
        pct(hits_at[2] as f64 / asked.max(1) as f64),
    ]);
    table.row(vec![
        "bill split error (total variation, 0=perfect)".into(),
        format!("{:.3}", l1_total / billed_users.max(1) as f64),
    ]);
    table.note("recall query = 5 words of the page + a ±1 month window around the old visit");
    table.note("bill compared to the simulator's ground-truth per-topic byte totals");
    table
}
