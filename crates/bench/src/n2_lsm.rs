//! # N2 — LSM read/write amplification under tiered compaction
//!
//! The numbers PR 10's bugfix claim rests on, in two parts:
//!
//! 1. **Point-read flatness.** Accumulate ≥16 sealed runs (background
//!    compaction off), measure `get()` latency percentiles, then compact
//!    the whole stack to a single run and measure the same workload
//!    again. With per-run bloom filters the multi-run p99 must stay
//!    within 1.2x of the single-run baseline: probing a run the key
//!    cannot be in costs one bloom check, not a full index descent.
//!    Absent-key probes (pure bloom-skip traffic) are reported as their
//!    own row, ungated — they are the workload the old code paid 16
//!    index descents for.
//!
//! 2. **Ingest-while-scan at 10x volume.** The PR 8 scenario
//!    (`n1_net::ingest_while_scan`) rerun with `write_rounds` scaled
//!    10x: sustained write throughput must stay within 10% of the
//!    committed `BENCH_PR8.json` reference now that compaction merges
//!    one tier at a time instead of rewriting the whole stack per wake.
//!
//! Results land in `BENCH_PR10.json` (override the path with
//! `MEMEX_BENCH_PR10_PATH`).

use std::time::Instant;

use memex_obs::MetricsRegistry;
use memex_store::{EngineKind, LsmOptions, LsmStore};

use crate::n1_net::{ingest_while_scan, IngestScanStats};
use crate::table::Table;
use crate::worlds::standard_world;

/// Latency percentiles (ns) over one timed `get()` sweep.
struct ReadSweep {
    gets: usize,
    wall_ms: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
}

/// Bloom counter deltas across one sweep, read from the attached registry.
struct BloomDelta {
    hit: u64,
    skip: u64,
    fp: u64,
}

impl BloomDelta {
    /// Fraction of run probes the filter answered without touching the
    /// run's index (`skip / (hit + skip + fp)`).
    fn skip_rate(&self) -> f64 {
        let total = self.hit + self.skip + self.fp;
        if total == 0 {
            0.0
        } else {
            self.skip as f64 / total as f64
        }
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("page:{i:08}").into_bytes()
}

fn absent_key(i: usize) -> Vec<u8> {
    format!("ghost:{i:08}").into_bytes()
}

/// Deterministic xorshift so the sweep order is identical before and
/// after compaction (no `rand` in the workspace).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Time `gets` point reads against `store`, keys chosen by `pick`.
fn read_sweep(store: &LsmStore, gets: usize, mut pick: impl FnMut(u64) -> Vec<u8>) -> ReadSweep {
    let mut seed = 0x2545_F491_4F6C_DD1Du64;
    let start = Instant::now();
    let mut samples: Vec<u64> = Vec::with_capacity(gets);
    for _ in 0..gets {
        let k = pick(xorshift(&mut seed));
        let t = Instant::now();
        let _ = store.get(&k).expect("bench get");
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    samples.sort_unstable();
    ReadSweep {
        gets,
        wall_ms,
        p50_ns: percentile_ns(&samples, 0.50),
        p95_ns: percentile_ns(&samples, 0.95),
        p99_ns: percentile_ns(&samples, 0.99),
    }
}

fn bloom_delta(registry: &MetricsRegistry, base: &(u64, u64, u64)) -> BloomDelta {
    let snap = registry.snapshot();
    BloomDelta {
        hit: snap.counter("store.lsm.bloom.hit") - base.0,
        skip: snap.counter("store.lsm.bloom.skip") - base.1,
        fp: snap.counter("store.lsm.bloom.fp") - base.2,
    }
}

fn bloom_totals(registry: &MetricsRegistry) -> (u64, u64, u64) {
    let snap = registry.snapshot();
    (
        snap.counter("store.lsm.bloom.hit"),
        snap.counter("store.lsm.bloom.skip"),
        snap.counter("store.lsm.bloom.fp"),
    )
}

fn sweep_row(table: &mut Table, name: &str, s: &ReadSweep) {
    table.row(vec![
        name.to_string(),
        "1".into(),
        s.gets.to_string(),
        s.gets.to_string(),
        "0".into(),
        "0".into(),
        format!("{:.0}", s.wall_ms),
        format!(
            "{:.0}",
            s.gets as f64 / (s.wall_ms / 1e3).max(f64::MIN_POSITIVE)
        ),
        format!("{:.2}", s.p50_ns as f64 / 1e3),
        format!("{:.2}", s.p95_ns as f64 / 1e3),
        format!("{:.2}", s.p99_ns as f64 / 1e3),
    ]);
}

/// Pull the committed `BENCH_PR8.json` lsm write rate out of the
/// artifact (hand-rolled parse; no serde in the workspace). Returns
/// `None` if the artifact is missing or the row cannot be found.
fn pr8_lsm_write_rate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let lsm_at = text.find("\"engine\": \"lsm\"")?;
    let tail = &text[lsm_at..];
    let field = "\"write_reqs_per_sec\": ";
    let at = tail.find(field)? + field.len();
    let rest = &tail[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

struct PointReadResults {
    runs_before: usize,
    keys: usize,
    multi: ReadSweep,
    multi_bloom: BloomDelta,
    absent: ReadSweep,
    absent_bloom: BloomDelta,
    single: ReadSweep,
    single_bloom: BloomDelta,
}

impl PointReadResults {
    fn p99_ratio(&self) -> f64 {
        self.multi.p99_ns as f64 / (self.single.p99_ns as f64).max(f64::MIN_POSITIVE)
    }
}

/// Part 1: build the multi-run store, time reads, compact, time again.
fn point_reads(table: &mut Table, quick: bool) -> PointReadResults {
    let runs = 16usize;
    let keys_per_run = if quick { 1024 } else { 4096 };
    let keys = runs * keys_per_run;
    let registry = MetricsRegistry::new();
    let mut store = LsmStore::open_memory_opts(LsmOptions {
        // Seal manually so the run count is exact; never auto-compact.
        memtable_bytes: u64::MAX,
        compact_min_runs: usize::MAX,
        background_compaction: false,
        sync_every_append: false,
    })
    .expect("open lsm");
    store.attach_registry(&registry);
    for r in 0..runs {
        for i in 0..keys_per_run {
            let k = key(r * keys_per_run + i);
            store.put(&k, &k).expect("bench put");
        }
        store.seal().expect("bench seal");
    }
    assert_eq!(store.run_count(), runs, "accumulated run stack");

    let gets = if quick { 20_000 } else { 100_000 };
    // Warm-up pass so page-in and allocator noise stays out of the tail.
    read_sweep(&store, gets / 10, |r| key(r as usize % keys));

    let base = bloom_totals(&registry);
    let multi = read_sweep(&store, gets, |r| key(r as usize % keys));
    let multi_bloom = bloom_delta(&registry, &base);
    sweep_row(table, &format!("get/runs-{runs}"), &multi);

    let base = bloom_totals(&registry);
    let absent = read_sweep(&store, gets / 4, |r| absent_key(r as usize % keys));
    let absent_bloom = bloom_delta(&registry, &base);
    sweep_row(table, &format!("get-absent/runs-{runs}"), &absent);

    while store.compact_now().expect("bench compact") {}
    assert_eq!(store.run_count(), 1, "compacted to a single run");
    read_sweep(&store, gets / 10, |r| key(r as usize % keys));
    let base = bloom_totals(&registry);
    let single = read_sweep(&store, gets, |r| key(r as usize % keys));
    let single_bloom = bloom_delta(&registry, &base);
    sweep_row(table, "get/runs-1", &single);

    PointReadResults {
        runs_before: runs,
        keys,
        multi,
        multi_bloom,
        absent,
        absent_bloom,
        single,
        single_bloom,
    }
}

/// Serialise everything into the committed `BENCH_PR10.json` artifact.
fn write_pr10_artifact(
    path: &str,
    quick: bool,
    reads: &PointReadResults,
    iws_rows: &[IngestScanStats],
    pr8_rate: Option<f64>,
) {
    let sweep_json = |s: &ReadSweep, bloom: &BloomDelta| {
        format!(
            "{{\"gets\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
             \"bloom_hit\": {}, \"bloom_skip\": {}, \"bloom_fp\": {}, \"bloom_skip_rate\": {:.4}}}",
            s.gets,
            s.p50_ns,
            s.p95_ns,
            s.p99_ns,
            bloom.hit,
            bloom.skip,
            bloom.fp,
            bloom.skip_rate(),
        )
    };
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"N2\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"point_reads\": {\n");
    out.push_str(&format!(
        "    \"runs\": {}, \"keys\": {},\n",
        reads.runs_before, reads.keys
    ));
    out.push_str(&format!(
        "    \"multi_run\": {},\n",
        sweep_json(&reads.multi, &reads.multi_bloom)
    ));
    out.push_str(&format!(
        "    \"multi_run_absent\": {},\n",
        sweep_json(&reads.absent, &reads.absent_bloom)
    ));
    out.push_str(&format!(
        "    \"single_run\": {},\n",
        sweep_json(&reads.single, &reads.single_bloom)
    ));
    out.push_str(&format!(
        "    \"p99_ratio\": {:.3}, \"p99_gate_1_2x\": {}\n",
        reads.p99_ratio(),
        reads.p99_ratio() <= 1.2
    ));
    out.push_str("  },\n");
    out.push_str("  \"ingest_while_scan_10x\": [\n");
    for (i, r) in iws_rows.iter().enumerate() {
        let (p50, p95, p99) = r.scan_latency_us.unwrap_or((0.0, 0.0, 0.0));
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"write_clients\": {}, \"writes_ok\": {}, \
             \"write_reqs_per_sec\": {:.1}, \"scans_ok\": {}, \"scan_p50_us\": {:.1}, \
             \"scan_p95_us\": {:.1}, \"scan_p99_us\": {:.1}, \"wall_ms\": {:.1}, \
             \"lsm_seals\": {}, \"lsm_compactions\": {}}}{}\n",
            r.engine,
            r.write_clients,
            r.writes_ok,
            r.write_reqs_per_sec,
            r.scans_ok,
            p50,
            p95,
            p99,
            r.wall_ms,
            r.lsm_seals,
            r.lsm_compactions,
            if i + 1 < iws_rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let lsm_rate = iws_rows
        .iter()
        .find(|r| r.engine == "lsm")
        .map(|r| r.write_reqs_per_sec);
    match (pr8_rate, lsm_rate) {
        (Some(reference), Some(now)) => {
            let ratio = now / reference.max(f64::MIN_POSITIVE);
            out.push_str(&format!(
                "  \"pr8_reference\": {{\"lsm_write_reqs_per_sec\": {:.1}, \
                 \"ratio_at_10x\": {:.3}, \"within_10pct\": {}}}\n",
                reference,
                ratio,
                ratio >= 0.9
            ));
        }
        _ => out.push_str("  \"pr8_reference\": null\n"),
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// The N2 table.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "N2 — LSM tiered compaction: point-read flatness + 10x ingest-while-scan",
        &[
            "scenario", "clients", "sent", "ok", "shed", "errors", "wall_ms", "req/s", "p50_us",
            "p95_us", "p99_us",
        ],
    );

    let reads = point_reads(&mut table, quick);
    assert!(
        reads.p99_ratio() <= 1.2,
        "multi-run get p99 must stay within 1.2x of the single-run baseline \
         (got {:.3}x: {} ns over {} runs vs {} ns over 1)",
        reads.p99_ratio(),
        reads.multi.p99_ns,
        reads.runs_before,
        reads.single.p99_ns,
    );

    // Part 2: the PR 8 scenario at 10x the write volume. Same world
    // seed, same client/scan shape — the only change is ingest depth.
    let (corpus, community, _memex) = standard_world(true, 0x9E7);
    let users: Vec<u32> = community.users.iter().map(|u| u.user).collect();
    let iws_write_rounds = if quick { 1200 } else { 4000 };
    let iws_scan_rounds = if quick { 40 } else { 150 };
    let mut iws_rows: Vec<IngestScanStats> = Vec::new();
    for engine in [EngineKind::BTree, EngineKind::Lsm] {
        ingest_while_scan(
            &mut table,
            &mut iws_rows,
            engine,
            &corpus,
            &community,
            &users,
            iws_write_rounds,
            iws_scan_rounds,
        );
    }

    let pr8_path =
        std::env::var("MEMEX_BENCH_PR8_PATH").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    let pr8_rate = pr8_lsm_write_rate(&pr8_path);
    let pr10_path =
        std::env::var("MEMEX_BENCH_PR10_PATH").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    write_pr10_artifact(&pr10_path, quick, &reads, &iws_rows, pr8_rate);

    table.note(&format!(
        "get rows: per-op latency percentiles in microseconds; p99 ratio multi/single = {:.3} \
         (gate <= 1.2), bloom skip rate over {} runs = {:.1}%",
        reads.p99_ratio(),
        reads.runs_before,
        100.0 * reads.multi_bloom.skip_rate(),
    ));
    if let (Some(reference), Some(row)) = (pr8_rate, iws_rows.iter().find(|r| r.engine == "lsm")) {
        table.note(&format!(
            "ingest-while-scan at 10x volume: lsm write throughput {:.1} req/s vs PR8 reference \
             {:.1} ({:.3}x)",
            row.write_reqs_per_sec,
            reference,
            row.write_reqs_per_sec / reference.max(f64::MIN_POSITIVE),
        ));
    }
    table.note(&format!("machine-readable artifact written to {pr10_path}"));
    table
}
