//! **T2 — §2:** "Apart from a standard full-text search over all pages
//! visited…" — index build throughput, query latency and precision@10 as
//! the archived corpus grows.

use std::time::Instant;

use memex_index::index::{IndexOptions, InvertedIndex};
use memex_index::search::{bm25_search, Bm25Params};
use memex_text::analyze::Analyzer;
use memex_web::corpus::{Corpus, CorpusConfig};

use crate::table::{pct, Table};

/// One corpus-size point.
#[derive(Debug, Clone, Copy)]
pub struct SearchOutcome {
    pub pages: usize,
    pub build_docs_per_sec: f64,
    pub query_us: f64,
    pub precision_at_10: f64,
}

/// Build an index over a corpus of `pages_per_topic` and measure (exposed
/// for the criterion bench).
pub fn run_once(pages_per_topic: usize, seed: u64) -> SearchOutcome {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: 8,
        pages_per_topic,
        seed,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let mut index = InvertedIndex::open_memory(IndexOptions::default()).expect("index");
    let start = Instant::now();
    for p in &corpus.pages {
        index
            .add_document(p.id, &analyzed.tf[p.id as usize])
            .expect("add");
    }
    index.commit().expect("commit");
    let build = start.elapsed().as_secs_f64();
    // Queries: for each topic, its two name words (e.g. "classical music").
    let analyzer = Analyzer::default();
    let mut total_p10 = 0.0;
    let mut queries = 0usize;
    let mut query_time = 0.0;
    for (t, name) in corpus.topic_names.iter().enumerate() {
        let counts = analyzer.counts(name);
        let terms: Vec<(u32, u32)> = counts
            .iter()
            .filter_map(|(w, &c)| analyzed.vocab.id(w).map(|id| (id, c)))
            .collect();
        if terms.is_empty() {
            continue;
        }
        let start = Instant::now();
        let hits = bm25_search(&index, &terms, 10, Bm25Params::default()).expect("search");
        query_time += start.elapsed().as_secs_f64();
        if hits.is_empty() {
            continue;
        }
        let good = hits.iter().filter(|h| corpus.topic_of(h.doc) == t).count();
        total_p10 += good as f64 / hits.len() as f64;
        queries += 1;
    }
    SearchOutcome {
        pages: corpus.num_pages(),
        build_docs_per_sec: corpus.num_pages() as f64 / build.max(1e-9),
        query_us: query_time / queries.max(1) as f64 * 1e6,
        precision_at_10: total_p10 / queries.max(1) as f64,
    }
}

/// The T2 table: sweep corpus size.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "T2: full-text search over visited pages",
        &[
            "pages",
            "index build (docs/s)",
            "query latency",
            "precision@10",
        ],
    );
    let sweep: &[usize] = if quick {
        &[50, 150]
    } else {
        &[125, 500, 2_000]
    };
    for &per in sweep {
        let o = run_once(per, 55);
        table.row(vec![
            o.pages.to_string(),
            format!("{:.0}", o.build_docs_per_sec),
            format!("{:.0} us", o.query_us),
            pct(o.precision_at_10),
        ]);
    }
    table.note("queries: each topic's two-word name against ground-truth topics");
    table
}
