//! **N1 — memex-net load generator:** the servlet vocabulary served over a
//! live loopback TCP socket by `memex_net::NetServer`, driven by N
//! concurrent `MemexClient` threads through a mixed mining workload.
//!
//! Three scenarios:
//!
//! 1. **throughput** — default admission limits; reports sustained
//!    requests/second and p50/p95/p99 request latency read from the
//!    server's own `net.req.latency` obs histogram (fetched over the wire
//!    via `Request::Stats`, like any remote operator would).
//! 2. **overload** — in-flight limit forced to 1 against a burst of
//!    clients: the server must shed with explicit `Response::Overloaded`
//!    frames (`net.shed` > 0) instead of queueing without bound, and still
//!    shut down cleanly.
//! 3. **read-scale/N** — a pure-read workload of all-distinct requests
//!    with the result cache disabled, at 1/2/4 workers (clients =
//!    workers): aggregate read throughput must grow with workers because
//!    readers share the `RwLock` instead of serialising on a global
//!    mutex. The ≥2x @ 4-workers check only asserts when the host
//!    actually has ≥4 cores.
//! 4. **write-scale/N** — a pure-write workload (four clients, four
//!    workers, each client a different user) against 1/2/4 *shards*
//!    (`NetServer::start_sharded`): aggregate write throughput must grow
//!    with shards because each user's writes take only their own shard's
//!    exclusive lock, and replica catch-up batches its demon sweeps. The
//!    ≥1.5x @ 4-shards check only asserts when the host has ≥4 cores.

use std::time::Instant;

use memex_core::memex::Memex;
use memex_core::servlet::{Request, Response};
use memex_net::{ClientConfig, MemexClient, NetServer, NetServerConfig};
use memex_obs::HistogramSnapshot;

use crate::table::Table;
use crate::worlds::standard_world;

/// One client thread's mixed servlet workload: the mining queries of the
/// paper's §1 questions, round-robined.
fn workload(user: u32, rounds: usize) -> Vec<Request> {
    let mut reqs = Vec::with_capacity(rounds * 6);
    for _ in 0..rounds {
        reqs.push(Request::Recall {
            user,
            query: "page".into(),
            since: 0,
            until: u64::MAX,
            k: 5,
        });
        reqs.push(Request::TrailReplay {
            user,
            folder: 1,
            since: 0,
            max_pages: 10,
        });
        reqs.push(Request::WhatsNew {
            user,
            folder: 1,
            since: 0,
            k: 5,
        });
        reqs.push(Request::Bill {
            user,
            since: 0,
            until: u64::MAX,
        });
        reqs.push(Request::SimilarSurfers { user, k: 3 });
        reqs.push(Request::Recommend { user, k: 3 });
    }
    reqs
}

/// A pure-read workload whose requests are pairwise distinct across every
/// client and round (the `salt` folds the client index into the time
/// bounds), so even with the result cache enabled nothing would hit — the
/// scenario measures lock parallelism, not caching.
fn read_workload(user: u32, rounds: usize, salt: u64) -> Vec<Request> {
    let mut reqs = Vec::with_capacity(rounds * 3);
    for r in 0..rounds {
        let since = salt * 100_000 + r as u64;
        reqs.push(Request::Recall {
            user,
            query: "page".into(),
            since,
            until: u64::MAX,
            k: 5,
        });
        reqs.push(Request::Bill {
            user,
            since,
            until: u64::MAX,
        });
        reqs.push(Request::WhatsNew {
            user,
            folder: 1,
            since,
            k: 5,
        });
    }
    reqs
}

/// A pure-write workload for one client: fresh `Visit` events for `user`,
/// pages cycling through `topic`'s corpus slice, times salted so every
/// event across every client and run is distinct.
fn write_workload(
    corpus: &memex_web::corpus::Corpus,
    user: u32,
    rounds: usize,
    salt: u64,
) -> Vec<Request> {
    let pages = corpus.pages_of_topic(user as usize % 4);
    let mut reqs = Vec::with_capacity(rounds);
    let mut prev = None;
    for r in 0..rounds {
        let page = pages[r % pages.len()];
        reqs.push(Request::Event(memex_server::events::ClientEvent::Visit(
            memex_server::events::VisitEvent {
                user,
                session: user,
                page,
                url: corpus.pages[page as usize].url.clone(),
                time: 1_000_000 + salt * 100_000 + r as u64,
                referrer: prev,
            },
        )));
        prev = Some(page);
    }
    reqs
}

struct DriveResult {
    ok: u64,
    shed: u64,
    errors: u64,
    wall_ms: f64,
}

/// Drive one client thread per workload against `addr`, each sending its
/// requests back-to-back. Overloaded responses count as shed, not ok.
fn drive(addr: std::net::SocketAddr, workloads: Vec<Vec<Request>>) -> DriveResult {
    let start = Instant::now();
    let handles: Vec<_> = workloads
        .into_iter()
        .map(|reqs| {
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut shed = 0u64;
                let mut errors = 0u64;
                let mut client = match MemexClient::connect(addr, ClientConfig::default()) {
                    Ok(c) => c,
                    Err(_) => return (0, 0, 1),
                };
                for req in reqs {
                    match client.request(&req) {
                        Ok(Response::Overloaded { .. }) => shed += 1,
                        Ok(Response::Error(_)) => errors += 1,
                        Ok(_) => ok += 1,
                        Err(_) => errors += 1,
                    }
                }
                (ok, shed, errors)
            })
        })
        .collect();
    let mut totals = (0u64, 0u64, 0u64);
    for h in handles {
        let (ok, shed, errors) = h.join().expect("client thread");
        totals.0 += ok;
        totals.1 += shed;
        totals.2 += errors;
    }
    DriveResult {
        ok: totals.0,
        shed: totals.1,
        errors: totals.2,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn percentile_us(h: &HistogramSnapshot, q: f64) -> f64 {
    h.percentile(q) as f64 / 1_000.0
}

/// Per-scenario numbers kept for both the table row and the machine-
/// readable `BENCH_PR6.json` artifact.
struct ScenarioStats {
    name: String,
    clients: usize,
    sent: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    wall_ms: f64,
    reqs_per_sec: f64,
    /// `net.req.latency` percentiles in microseconds (None when the stats
    /// fetch itself was shed, e.g. under induced overload).
    latency_us: Option<(f64, f64, f64)>,
}

/// Fetch the server's latency histogram over the wire, the way an external
/// operator would.
fn remote_latency(addr: std::net::SocketAddr) -> Option<HistogramSnapshot> {
    let mut client = MemexClient::connect(addr, ClientConfig::default()).ok()?;
    match client.request(&Request::Stats).ok()? {
        Response::Stats(snap) => snap.histogram("net.req.latency").cloned(),
        _ => None,
    }
}

fn scenario(
    table: &mut Table,
    stats: &mut Vec<ScenarioStats>,
    name: &str,
    memex: Memex,
    config: NetServerConfig,
    workloads: Vec<Vec<Request>>,
) -> (Memex, u64, f64) {
    let clients = workloads.len();
    // The registry outlives individual servers; report this scenario's
    // shed as a delta.
    let shed_before = memex.registry().snapshot().counter("net.shed");
    let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let result = drive(addr, workloads);
    let latency = remote_latency(addr);
    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    let shed = snap.counter("net.shed") - shed_before;
    let sent = result.ok + result.shed + result.errors;
    let latency_us = latency.as_ref().map(|h| {
        (
            percentile_us(h, 0.50),
            percentile_us(h, 0.95),
            percentile_us(h, 0.99),
        )
    });
    let (p50, p95, p99) = match latency_us {
        Some((p50, p95, p99)) => (
            format!("{p50:.0}"),
            format!("{p95:.0}"),
            format!("{p99:.0}"),
        ),
        None => ("-".into(), "-".into(), "-".into()),
    };
    let reqs_per_sec = result.ok as f64 / (result.wall_ms / 1e3);
    table.row(vec![
        name.to_string(),
        clients.to_string(),
        sent.to_string(),
        result.ok.to_string(),
        shed.to_string(),
        result.errors.to_string(),
        format!("{:.0}", result.wall_ms),
        format!("{reqs_per_sec:.0}"),
        p50,
        p95,
        p99,
    ]);
    stats.push(ScenarioStats {
        name: name.to_string(),
        clients,
        sent,
        ok: result.ok,
        shed,
        errors: result.errors,
        wall_ms: result.wall_ms,
        reqs_per_sec,
        latency_us,
    });
    (memex, shed, reqs_per_sec)
}

/// Like [`scenario`], but serving `replicas` as shards via
/// [`NetServer::start_sharded`]. Replicas are built fresh per step (and
/// dropped after), so each shard count runs an identical workload from an
/// identical starting state.
fn scenario_sharded(
    table: &mut Table,
    stats: &mut Vec<ScenarioStats>,
    name: &str,
    replicas: Vec<Memex>,
    config: NetServerConfig,
    workloads: Vec<Vec<Request>>,
) -> f64 {
    let clients = workloads.len();
    let server =
        NetServer::start_sharded(replicas, "127.0.0.1:0", config).expect("bind sharded loopback");
    let addr = server.local_addr();
    let result = drive(addr, workloads);
    let latency = remote_latency(addr);
    let replicas = server.shutdown_all();
    let snap = replicas[0].registry().snapshot();
    let shed = snap.counter("net.shed");
    let sent = result.ok + result.shed + result.errors;
    let latency_us = latency.as_ref().map(|h| {
        (
            percentile_us(h, 0.50),
            percentile_us(h, 0.95),
            percentile_us(h, 0.99),
        )
    });
    let (p50, p95, p99) = match latency_us {
        Some((p50, p95, p99)) => (
            format!("{p50:.0}"),
            format!("{p95:.0}"),
            format!("{p99:.0}"),
        ),
        None => ("-".into(), "-".into(), "-".into()),
    };
    let reqs_per_sec = result.ok as f64 / (result.wall_ms / 1e3);
    table.row(vec![
        name.to_string(),
        clients.to_string(),
        sent.to_string(),
        result.ok.to_string(),
        shed.to_string(),
        result.errors.to_string(),
        format!("{:.0}", result.wall_ms),
        format!("{reqs_per_sec:.0}"),
        p50,
        p95,
        p99,
    ]);
    stats.push(ScenarioStats {
        name: name.to_string(),
        clients,
        sent,
        ok: result.ok,
        shed,
        errors: result.errors,
        wall_ms: result.wall_ms,
        reqs_per_sec,
        latency_us,
    });
    reqs_per_sec
}

/// One `ingest-while-scan/{engine}` row: sustained write throughput with
/// a concurrent long snapshot scan, per storage engine. Shared with the
/// N2 bench, which reruns the scenario at 10x the ingest volume.
pub(crate) struct IngestScanStats {
    pub(crate) engine: &'static str,
    pub(crate) write_clients: usize,
    pub(crate) writes_ok: u64,
    pub(crate) write_reqs_per_sec: f64,
    pub(crate) scans_ok: u64,
    pub(crate) scan_latency_us: Option<(f64, f64, f64)>,
    pub(crate) wall_ms: f64,
    pub(crate) lsm_seals: u64,
    pub(crate) lsm_compactions: u64,
}

/// PR 8 scenario: writers ingest fresh visits while one reader loops
/// long `Recall` scans against the same server, once per storage engine
/// (`MemexOptions.server.index.engine`). Reports sustained write
/// throughput and the scan latency tail from the server's own
/// `servlet.recall.latency` histogram — the number the LSM engine's
/// snapshot claim rests on: scans must not stall while the memtable
/// seals and the compactor churns underneath them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ingest_while_scan(
    table: &mut Table,
    rows: &mut Vec<IngestScanStats>,
    engine: memex_store::EngineKind,
    corpus: &std::sync::Arc<memex_web::corpus::Corpus>,
    community: &memex_web::surfer::Community,
    users: &[u32],
    write_rounds: usize,
    scan_rounds: usize,
) {
    // A small seal budget so the LSM actually churns (seals + background
    // compactions) under the bench's corpus-sized ingest.
    std::env::set_var("MEMEX_LSM_MEMTABLE_BYTES", "4096");
    let mut opts = memex_core::memex::MemexOptions::default();
    opts.server.index.engine = engine;
    let memex = crate::worlds::populated_memex_opts(corpus.clone(), community, opts);
    std::env::remove_var("MEMEX_LSM_MEMTABLE_BYTES");
    let write_clients = 2usize;
    let config = NetServerConfig {
        workers: write_clients + 1,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();

    let start = Instant::now();
    let writers: Vec<_> = (0..write_clients)
        .map(|i| {
            let reqs = write_workload(corpus, users[i % users.len()], write_rounds, 77 + i as u64);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut client = match MemexClient::connect(addr, ClientConfig::default()) {
                    Ok(c) => c,
                    Err(_) => return 0,
                };
                for req in reqs {
                    match client.request(&req) {
                        Ok(Response::Overloaded { .. }) | Ok(Response::Error(_)) | Err(_) => {}
                        Ok(_) => ok += 1,
                    }
                }
                ok
            })
        })
        .collect();
    // The long scan: full-corpus recalls for a topic-name term (so the
    // query actually matches and ranks pages), k far past the budget.
    let scan_user = users[0];
    let scan_query = corpus.topic_names[0].clone();
    let scanner = std::thread::spawn(move || {
        let mut ok = 0u64;
        let mut client = match MemexClient::connect(addr, ClientConfig::default()) {
            Ok(c) => c,
            Err(_) => return 0,
        };
        for r in 0..scan_rounds {
            let req = Request::Recall {
                user: scan_user,
                query: scan_query.clone(),
                since: r as u64,
                until: u64::MAX,
                k: 50,
            };
            if matches!(client.request(&req), Ok(Response::Recall { .. })) {
                ok += 1;
            }
        }
        ok
    });
    let writes_ok: u64 = writers.into_iter().map(|h| h.join().expect("writer")).sum();
    let scans_ok = scanner.join().expect("scanner");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    let scan_latency_us = snap.histogram("servlet.recall.latency").map(|h| {
        (
            percentile_us(h, 0.50),
            percentile_us(h, 0.95),
            percentile_us(h, 0.99),
        )
    });
    let write_reqs_per_sec = writes_ok as f64 / (wall_ms / 1e3).max(f64::MIN_POSITIVE);
    let name = format!("ingest-while-scan/{}", engine.name());
    let (p50, p95, p99) = match scan_latency_us {
        Some((p50, p95, p99)) => (
            format!("{p50:.0}"),
            format!("{p95:.0}"),
            format!("{p99:.0}"),
        ),
        None => ("-".into(), "-".into(), "-".into()),
    };
    table.row(vec![
        name,
        (write_clients + 1).to_string(),
        (write_clients * write_rounds + scan_rounds).to_string(),
        (writes_ok + scans_ok).to_string(),
        "0".into(),
        ((write_clients * write_rounds) as u64 - writes_ok + scan_rounds as u64 - scans_ok)
            .to_string(),
        format!("{wall_ms:.0}"),
        format!("{write_reqs_per_sec:.0}"),
        p50,
        p95,
        p99,
    ]);
    rows.push(IngestScanStats {
        engine: engine.name(),
        write_clients,
        writes_ok,
        write_reqs_per_sec,
        scans_ok,
        scan_latency_us,
        wall_ms,
        lsm_seals: snap.counter("store.lsm.seals"),
        lsm_compactions: snap.counter("store.lsm.compactions"),
    });
}

/// Serialise the ingest-while-scan rows into the committed
/// `BENCH_PR8.json` artifact (hand-rolled JSON; no serde in the
/// workspace).
fn write_pr8_artifact(path: &str, quick: bool, rows: &[IngestScanStats]) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"N1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"ingest_while_scan\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let (p50, p95, p99) = match r.scan_latency_us {
            Some((p50, p95, p99)) => (
                format!("{p50:.1}"),
                format!("{p95:.1}"),
                format!("{p99:.1}"),
            ),
            None => ("null".into(), "null".into(), "null".into()),
        };
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"write_clients\": {}, \"writes_ok\": {}, \
             \"write_reqs_per_sec\": {:.1}, \"scans_ok\": {}, \"scan_p50_us\": {p50}, \
             \"scan_p95_us\": {p95}, \"scan_p99_us\": {p99}, \"wall_ms\": {:.1}, \
             \"lsm_seals\": {}, \"lsm_compactions\": {}}}{}\n",
            r.engine,
            r.write_clients,
            r.writes_ok,
            r.write_reqs_per_sec,
            r.scans_ok,
            r.wall_ms,
            r.lsm_seals,
            r.lsm_compactions,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Run-level summaries that accompany the per-scenario rows in the
/// artifact.
struct ArtifactSummary<'a> {
    quick: bool,
    read_rates: [f64; 3],
    read_ratio: f64,
    write_rates: [f64; 3],
    write_ratio: f64,
    cores: usize,
    lock_wait: Option<&'a HistogramSnapshot>,
    trace_off_rate: f64,
    trace_on_rate: f64,
}

/// Serialise the run into the committed `BENCH_PR7.json` artifact:
/// per-scenario throughput and latency percentiles, the read- and
/// write-scaling ratios, a `net.lock.wait` summary, and the tracing-off/on
/// throughput ratio. Hand-rolled JSON — the workspace has no serde.
fn write_artifact(path: &str, stats: &[ScenarioStats], summary: &ArtifactSummary<'_>) {
    let &ArtifactSummary {
        quick,
        read_rates,
        read_ratio,
        write_rates,
        write_ratio,
        cores,
        lock_wait,
        trace_off_rate,
        trace_on_rate,
    } = summary;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"N1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in stats.iter().enumerate() {
        let (p50, p95, p99) = match s.latency_us {
            Some((p50, p95, p99)) => (
                format!("{p50:.1}"),
                format!("{p95:.1}"),
                format!("{p99:.1}"),
            ),
            None => ("null".into(), "null".into(), "null".into()),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"sent\": {}, \"ok\": {}, \
             \"shed\": {}, \"errors\": {}, \"wall_ms\": {:.1}, \"reqs_per_sec\": {:.1}, \
             \"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}}}{}\n",
            s.name,
            s.clients,
            s.sent,
            s.ok,
            s.shed,
            s.errors,
            s.wall_ms,
            s.reqs_per_sec,
            if i + 1 == stats.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"read_scale\": {{\"workers\": [1, 2, 4], \"reqs_per_sec\": [{:.1}, {:.1}, {:.1}], \
         \"ratio_4w_over_1w\": {:.2}, \"cores\": {}}},\n",
        read_rates[0], read_rates[1], read_rates[2], read_ratio, cores,
    ));
    out.push_str(&format!(
        "  \"write_scale\": {{\"shards\": [1, 2, 4], \"reqs_per_sec\": [{:.1}, {:.1}, {:.1}], \
         \"ratio_4s_over_1s\": {:.2}, \"cores\": {}}},\n",
        write_rates[0], write_rates[1], write_rates[2], write_ratio, cores,
    ));
    match lock_wait {
        Some(h) => out.push_str(&format!(
            "  \"lock_wait\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}}},\n",
            h.count,
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.percentile(1.0),
        )),
        None => out.push_str("  \"lock_wait\": null,\n"),
    }
    out.push_str(&format!(
        "  \"trace_overhead\": {{\"off_reqs_per_sec\": {:.1}, \"on_reqs_per_sec\": {:.1}, \
         \"on_over_off\": {:.3}}}\n",
        trace_off_rate,
        trace_on_rate,
        trace_on_rate / trace_off_rate.max(f64::MIN_POSITIVE),
    ));
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// The N1 table.
pub fn run(quick: bool) -> Table {
    // The network layer's cost is framing + locking, not corpus size: the
    // quick world keeps the focus on the serving path.
    let (_corpus, community, memex) = standard_world(true, 0x9E7);
    let users: Vec<u32> = community.users.iter().map(|u| u.user).collect();
    let mut table = Table::new(
        "N1 — memex-net: concurrent TCP serving (loopback)",
        &[
            "scenario", "clients", "sent", "ok", "shed", "errors", "wall_ms", "req/s", "p50_us",
            "p95_us", "p99_us",
        ],
    );
    let clients = if quick { 4 } else { 8 };
    let rounds = if quick { 10 } else { 50 };
    let mixed = |clients: usize, rounds: usize| -> Vec<Vec<Request>> {
        (0..clients)
            .map(|i| workload(users[i % users.len()], rounds))
            .collect()
    };
    let mut stats: Vec<ScenarioStats> = Vec::new();

    // Scenario 1: sustained mixed workload under default admission limits.
    let (memex, _, _) = scenario(
        &mut table,
        &mut stats,
        "throughput",
        memex,
        NetServerConfig::default(),
        mixed(clients, rounds),
    );

    // Scenario 2: induced overload — in-flight limit 1, burst of clients.
    // The shed column must be non-zero: explicit overload frames, not
    // unbounded queueing.
    let overload_cfg = NetServerConfig {
        max_in_flight: 1,
        ..NetServerConfig::default()
    };
    let (memex, shed, _) = scenario(
        &mut table,
        &mut stats,
        "overload",
        memex,
        overload_cfg,
        mixed(clients.max(4) * 2, rounds),
    );
    assert!(
        shed > 0,
        "overload scenario must shed (net.shed delta was 0)"
    );

    // Scenario 3: read scaling. All-distinct read requests with the result
    // cache disabled, clients = workers, same warm corpus each step: the
    // only variable is how many readers the lock lets run at once.
    let read_rounds = if quick { 15 } else { 60 };
    let mut memex = memex;
    let mut rate_at = [0f64; 3];
    for (step, &workers) in [1usize, 2, 4].iter().enumerate() {
        let config = NetServerConfig {
            workers,
            read_cache: 0,
            ..NetServerConfig::default()
        };
        let reads = (0..workers)
            .map(|i| read_workload(users[i % users.len()], read_rounds, i as u64))
            .collect();
        let (back, _, rate) = scenario(
            &mut table,
            &mut stats,
            &format!("read-scale/{workers}"),
            memex,
            config,
            reads,
        );
        memex = back;
        rate_at[step] = rate;
    }
    let ratio = rate_at[2] / rate_at[0].max(f64::MIN_POSITIVE);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Scenario 4: write scaling across shards. Four clients, each a
    // different user, pure-write workloads identical at every shard count;
    // replicas are rebuilt from the same community replay each step, so
    // the only variable is how many exclusive locks (and batched demon
    // sweeps) the shard router spreads the writes over.
    let write_rounds = if quick { 60 } else { 200 };
    let write_clients = 4usize;
    let mut write_rate_at = [0f64; 3];
    for (step, &shards) in [1usize, 2, 4].iter().enumerate() {
        let replicas: Vec<Memex> = (0..shards)
            .map(|_| crate::worlds::populated_memex(_corpus.clone(), &community))
            .collect();
        let config = NetServerConfig {
            workers: write_clients,
            shards,
            ..NetServerConfig::default()
        };
        let writes = (0..write_clients)
            .map(|i| {
                write_workload(
                    &_corpus,
                    users[i % users.len()],
                    write_rounds,
                    (step * write_clients + i) as u64,
                )
            })
            .collect();
        write_rate_at[step] = scenario_sharded(
            &mut table,
            &mut stats,
            &format!("write-scale/{shards}"),
            replicas,
            config,
            writes,
        );
    }
    let write_ratio = write_rate_at[2] / write_rate_at[0].max(f64::MIN_POSITIVE);

    // Scenario 5: tracing cost. The same mixed workload with the flight
    // recorder disabled and then enabled — the off/on throughput ratio is
    // the number PR 6's "tracing off stays cheap" claim rests on.
    let mut trace_rates = [0f64; 2];
    for (step, enabled) in [false, true].into_iter().enumerate() {
        let config = NetServerConfig {
            trace: memex_obs::TraceConfig {
                enabled,
                ..memex_obs::TraceConfig::default()
            },
            ..NetServerConfig::default()
        };
        let label = if enabled { "trace-on" } else { "trace-off" };
        let (back, _, rate) = scenario(
            &mut table,
            &mut stats,
            label,
            memex,
            config,
            mixed(clients, rounds),
        );
        memex = back;
        trace_rates[step] = rate;
    }

    // Scenario 6: ingest-while-scan, once per storage engine. Fresh
    // replicas per engine so the only variable is the engine behind the
    // index's keyed store.
    let iws_write_rounds = if quick { 120 } else { 400 };
    let iws_scan_rounds = if quick { 40 } else { 150 };
    let mut iws_rows: Vec<IngestScanStats> = Vec::new();
    for engine in [memex_store::EngineKind::BTree, memex_store::EngineKind::Lsm] {
        ingest_while_scan(
            &mut table,
            &mut iws_rows,
            engine,
            &_corpus,
            &community,
            &users,
            iws_write_rounds,
            iws_scan_rounds,
        );
    }
    let pr8_path =
        std::env::var("MEMEX_BENCH_PR8_PATH").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    write_pr8_artifact(&pr8_path, quick, &iws_rows);

    let lock_wait = memex
        .registry()
        .snapshot()
        .histogram("net.lock.wait")
        .cloned();
    let artifact_path =
        std::env::var("MEMEX_BENCH_PR7_PATH").unwrap_or_else(|_| "BENCH_PR7.json".to_string());
    write_artifact(
        &artifact_path,
        &stats,
        &ArtifactSummary {
            quick,
            read_rates: rate_at,
            read_ratio: ratio,
            write_rates: write_rate_at,
            write_ratio,
            cores,
            lock_wait: lock_wait.as_ref(),
            trace_off_rate: trace_rates[0],
            trace_on_rate: trace_rates[1],
        },
    );
    table.note("latency percentiles read from the server's net.req.latency obs histogram, fetched over the wire via Request::Stats");
    table.note(&format!(
        "trace-off/on: same mixed workload, flight recorder disabled vs enabled; on/off throughput ratio {:.3}",
        trace_rates[1] / trace_rates[0].max(f64::MIN_POSITIVE)
    ));
    table.note(&format!(
        "machine-readable artifact written to {artifact_path}"
    ));
    table.note(&format!(
        "ingest-while-scan: req/s column is sustained write throughput, latency columns are the \
         concurrent reader's servlet.recall.latency tail; artifact {pr8_path}"
    ));
    table.note(&format!(
        "overload scenario (in-flight limit 1) shed {shed} requests explicitly; clean shutdown all scenarios"
    ));
    table.note(&format!(
        "read-scale: cache disabled, all-distinct requests; 4-worker/1-worker throughput ratio {ratio:.2}x on {cores} core(s)"
    ));
    table.note(&format!(
        "write-scale: pure writes, 4 clients on distinct users, identical replicas per step; 4-shard/1-shard throughput ratio {write_ratio:.2}x on {cores} core(s)"
    ));
    if cores >= 4 {
        assert!(
            ratio >= 2.0,
            "read throughput must at least double at 4 workers vs 1 \
             (got {ratio:.2}x on {cores} cores) — readers are serialising"
        );
        assert!(
            write_ratio >= 1.5,
            "write throughput must reach >=1.5x at 4 shards vs 1 \
             (got {write_ratio:.2}x on {cores} cores) — writers are serialising \
             on a global lock"
        );
    } else {
        table.note(&format!(
            "read-scale >=2x / write-scale >=1.5x assertions skipped: host has {cores} core(s), shards cannot run in parallel"
        ));
    }
    table
}
