//! **T3 — §4 / ref \[6\]:** "For clustering we started with a bottom-up
//! hierarchical agglomerative approach" and Memex "uses unsupervised
//! clustering to propose a topic hierarchy". Scatter/Gather's selling
//! point (the cited Cutting–Karger–Pedersen paper) is *constant
//! interaction time*: Buckshot/Fractionation seeding makes clustering
//! near-linear where full HAC is quadratic — at comparable quality.

use std::time::Instant;

use memex_cluster::hac::hac_cut;
use memex_cluster::quality::purity;
use memex_cluster::scatter::{buckshot, fractionation};
use memex_text::vector::SparseVec;
use memex_web::corpus::{Corpus, CorpusConfig};

use crate::table::{f3, Table};

/// Build a clustering workload of roughly `n` interior documents over 8
/// topics; returns (docs, ground truth).
pub fn workload(n: usize, seed: u64) -> (Vec<SparseVec>, Vec<usize>) {
    let per_topic = (n / 8).max(4);
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: 8,
        pages_per_topic: per_topic + (per_topic as f64 * 0.4) as usize,
        // Noisier, shorter text than the default so quality differences are
        // visible (perfectly-separable topics make every algorithm score 1.0).
        interior_topic_bias: 0.3,
        interior_tokens: (30, 90),
        seed,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let mut docs = Vec::new();
    let mut truth = Vec::new();
    for p in corpus.pages.iter().filter(|p| !p.is_front) {
        docs.push(analyzed.tfidf[p.id as usize].clone());
        truth.push(p.topic);
        if docs.len() >= n {
            break;
        }
    }
    (docs, truth)
}

/// The T3 table: time and purity vs n for the three algorithms.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "T3: clustering interaction time — full HAC vs Scatter/Gather seeding",
        &[
            "n docs",
            "HAC time",
            "HAC purity",
            "Buckshot time",
            "Buckshot purity",
            "Fractionation time",
            "Fract. purity",
        ],
    );
    let sweep: &[usize] = if quick {
        &[100, 200]
    } else {
        &[200, 400, 800, 1_600]
    };
    let k = 8;
    for &n in sweep {
        let (docs, truth) = workload(n, 66);
        let t0 = Instant::now();
        let hac_labels = hac_cut(&docs, k);
        let hac_time = t0.elapsed();
        let t0 = Instant::now();
        let buck = buckshot(&docs, k, 9);
        let buck_time = t0.elapsed();
        let t0 = Instant::now();
        let frac = fractionation(&docs, k, 60, 0.25, 9);
        let frac_time = t0.elapsed();
        table.row(vec![
            docs.len().to_string(),
            format!("{:.1} ms", hac_time.as_secs_f64() * 1e3),
            f3(purity(&hac_labels, &truth)),
            format!("{:.1} ms", buck_time.as_secs_f64() * 1e3),
            f3(purity(&buck.labels, &truth)),
            format!("{:.1} ms", frac_time.as_secs_f64() * 1e3),
            f3(purity(&frac.labels, &truth)),
        ]);
    }
    table.note("HAC grows ~quadratically; Buckshot stays near-linear (constant interaction time)");
    table
}
