//! # memex-bench — experiment harness
//!
//! One module per table/figure of EXPERIMENTS.md. Every module exposes
//! `run(quick) -> Table`; the `experiments` binary prints them all, and the
//! criterion benches in `benches/` time the hot operation of each.
//!
//! `quick = true` shrinks workloads for CI/criterion; the committed
//! EXPERIMENTS.md numbers come from `quick = false`.

pub mod ablations;
pub mod f1_feedback;
pub mod f2_trail;
pub mod f3_pipeline;
pub mod f4_themes;
pub mod n1_net;
pub mod n2_lsm;
pub mod t1_classify;
pub mod t2_search;
pub mod t3_cluster;
pub mod t4_crawl;
pub mod t5_recommend;
pub mod t6_recall;
pub mod table;
pub mod worlds;

pub use table::Table;

/// One registered experiment: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn(bool) -> Table);

/// Every experiment, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "T1",
            "Text-only vs text+link+folder classification (§4 headline)",
            t1_classify::run,
        ),
        ("F1", "Folder-tab feedback loop (Fig. 1)", f1_feedback::run),
        (
            "F2",
            "Trail-tab topical context replay (Fig. 2)",
            f2_trail::run,
        ),
        (
            "F3",
            "Server pipeline: throughput, staleness, recovery (Fig. 3)",
            f3_pipeline::run,
        ),
        ("F4", "Community theme discovery (Fig. 4)", f4_themes::run),
        (
            "T2",
            "Full-text search over visited pages (§2)",
            t2_search::run,
        ),
        (
            "T3",
            "HAC vs Scatter/Gather interaction time (§4, ref [6])",
            t3_cluster::run,
        ),
        (
            "T4",
            "Focused vs unfocused crawl harvest rate (§4, ref [5])",
            t4_crawl::run,
        ),
        (
            "T5",
            "Theme profiles vs URL overlap for recommendation (§4)",
            t5_recommend::run,
        ),
        (
            "T6",
            "Months-old recall and ISP bill breakdown (§1)",
            t6_recall::run,
        ),
        (
            "A1",
            "Ablation: enhanced-classifier evidence channels",
            ablations::run_channels,
        ),
        (
            "A2",
            "Ablation: feature selection (Fisher/chi2/MI)",
            ablations::run_features,
        ),
        (
            "A3",
            "Ablation: flat vs hierarchical (TAPER) classification",
            ablations::run_hierarchy,
        ),
        (
            "A4",
            "Ablation: pipeline batch size",
            ablations::run_batching,
        ),
        (
            "A5",
            "Ablation: semi-supervised EM vs enhanced",
            ablations::run_em,
        ),
        (
            "N1",
            "memex-net: concurrent TCP serving with admission control",
            n1_net::run,
        ),
        (
            "N2",
            "LSM tiered compaction: read flatness + write amplification",
            n2_lsm::run,
        ),
    ]
}
