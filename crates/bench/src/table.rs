//! Minimal fixed-width table rendering for experiment output (also used to
//! regenerate the EXPERIMENTS.md blocks).

/// A titled table of string cells.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Format a float to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much longer name".into(), "2.5".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("much longer name  2.5"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.4), "40.0%");
    }
}
