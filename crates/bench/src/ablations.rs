//! Ablations for the design choices DESIGN.md calls out. These are not
//! paper tables — they justify the knobs: which evidence channel earns the
//! T1 lift, how much Fisher feature selection buys, whether TAPER's
//! hierarchical descent helps over a flat classifier, and what bus
//! batching costs in staleness.

use std::collections::HashMap;

use memex_learn::enhanced::{EnhancedClassifier, EnhancedOptions, EnhancedProblem};
use memex_learn::eval::{train_test_split, Confusion};
use memex_learn::nb::{HierarchicalNB, NaiveBayes, NbOptions};
use memex_learn::taxonomy::Taxonomy;
use memex_server::threaded::{run_threaded, ThreadedConfig};
use memex_text::features::FeatureScore;
use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::surfer::{Community, SurferConfig};

use crate::table::{pct, Table};

/// A1 — which evidence channel does the work? Zero out each of the
/// enhanced classifier's channels on the hard T1 configuration.
pub fn run_channels(quick: bool) -> Table {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: if quick { 4 } else { 8 },
        pages_per_topic: if quick { 40 } else { 80 },
        front_topic_bias: 0.05,
        front_links: (3, 8),
        link_locality: 0.75,
        seed: 5,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: if quick { 6 } else { 12 },
            sessions_per_user: if quick { 6 } else { 12 },
            bookmark_prob: 0.2,
            seed: 5 ^ 0xB00C,
            ..SurferConfig::default()
        },
    );
    let mut groups: HashMap<(u32, &str), Vec<usize>> = HashMap::new();
    for b in &community.bookmarks {
        groups
            .entry((b.user, b.folder.as_str()))
            .or_default()
            .push(b.page as usize);
    }
    let mut folders: Vec<Vec<usize>> = groups
        .into_values()
        .map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
        .filter(|v| v.len() >= 2)
        .collect();
    folders.sort();
    let labels: Vec<Option<usize>> = corpus
        .pages
        .iter()
        .map(|p| {
            if !p.is_front && p.id % 3 == 0 {
                Some(p.topic)
            } else {
                None
            }
        })
        .collect();
    let problem = EnhancedProblem {
        num_classes: corpus.config.num_topics,
        docs: &analyzed.tf,
        graph: &corpus.graph,
        folders: &folders,
        labels: &labels,
    };
    let mut table = Table::new(
        "A1: enhanced-classifier channel ablation (front-page accuracy)",
        &["channels", "accuracy"],
    );
    let variants: &[(&str, f64, f64)] = &[
        ("text only", 0.0, 0.0),
        ("text + links", 2.0, 0.0),
        ("text + folders", 0.0, 2.0),
        ("text + links + folders", 2.0, 2.0),
    ];
    for &(name, link_w, folder_w) in variants {
        let opts = EnhancedOptions {
            link_weight: link_w,
            folder_weight: folder_w,
            ..Default::default()
        };
        let result = EnhancedClassifier::new(opts).classify(&problem);
        let mut ok = 0usize;
        let mut n = 0usize;
        for p in corpus.pages.iter().filter(|p| p.is_front) {
            n += 1;
            if result.predictions[p.id as usize] == p.topic {
                ok += 1;
            }
        }
        table.row(vec![name.to_string(), pct(ok as f64 / n.max(1) as f64)]);
    }
    table.note("links are the dominant channel on hub-like front pages; folder co-placement alone still adds ~+37pp over text");
    table
}

/// A2 — feature selection: accuracy and model size vs selected-k and score.
pub fn run_features(quick: bool) -> Table {
    // A genuinely hard text problem: short, noisy pages and little
    // training data, so the selection quality actually matters.
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: if quick { 4 } else { 8 },
        pages_per_topic: if quick { 40 } else { 80 },
        interior_topic_bias: 0.12,
        interior_tokens: (15, 45),
        seed: 6,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let interior: Vec<u32> = corpus
        .pages
        .iter()
        .filter(|p| !p.is_front)
        .map(|p| p.id)
        .collect();
    let (train, test) = train_test_split(interior.len(), 0.5, 6);
    let mut table = Table::new(
        "A2: Fisher/chi-square/MI feature selection (interior-page accuracy)",
        &["selection", "k terms", "accuracy"],
    );
    let mut eval = |name: &str, score: Option<FeatureScore>, k: usize| {
        let mut nb = NaiveBayes::new(corpus.config.num_topics, NbOptions::default());
        for &i in &train {
            let page = interior[i];
            nb.add_document(corpus.topic_of(page), &analyzed.tf[page as usize]);
        }
        if let Some(s) = score {
            nb.select_features(s, k);
        }
        let mut confusion = Confusion::new(corpus.config.num_topics);
        for &i in &test {
            let page = interior[i];
            confusion.record(
                corpus.topic_of(page),
                nb.predict(&analyzed.tf[page as usize]),
            );
        }
        table.row(vec![
            name.to_string(),
            if score.is_some() {
                k.to_string()
            } else {
                "all".to_string()
            },
            pct(confusion.accuracy()),
        ]);
    };
    eval("none", None, 0);
    for &k in &[10usize, 50, 200] {
        eval("Fisher", Some(FeatureScore::Fisher), k);
    }
    eval("chi-square", Some(FeatureScore::ChiSquare), 50);
    eval("mutual info", Some(FeatureScore::MutualInfo), 50);
    table.note("TAPER's point: a few hundred Fisher-selected terms beat the full vocabulary (noise terms actively hurt naive Bayes); over-pruning (k=10) collapses");
    table
}

/// A3 — flat vs hierarchical (TAPER) classification over a two-level
/// taxonomy built by pairing topics under common parents.
pub fn run_hierarchy(quick: bool) -> Table {
    let num_topics = if quick { 4 } else { 8 };
    let corpus = Corpus::generate(CorpusConfig {
        num_topics,
        pages_per_topic: if quick { 40 } else { 80 },
        interior_topic_bias: 0.15,
        interior_tokens: (15, 45),
        seed: 7,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    // Two-level taxonomy: parents group topic pairs.
    let mut tax = Taxonomy::new();
    let mut leaf_of_topic = Vec::with_capacity(num_topics);
    for pair in 0..num_topics / 2 {
        let parent = tax.add_child(Taxonomy::ROOT, &format!("group{pair}"));
        for t in [2 * pair, 2 * pair + 1] {
            leaf_of_topic.push((t, tax.add_child(parent, &corpus.topic_names[t])));
        }
    }
    leaf_of_topic.sort_unstable();
    let interior: Vec<u32> = corpus
        .pages
        .iter()
        .filter(|p| !p.is_front)
        .map(|p| p.id)
        .collect();
    let (train, test) = train_test_split(interior.len(), 0.3, 7);
    // Flat NB.
    let mut flat = NaiveBayes::new(num_topics, NbOptions::default());
    for &i in &train {
        let page = interior[i];
        flat.add_document(corpus.topic_of(page), &analyzed.tf[page as usize]);
    }
    // Hierarchical NB with per-router Fisher selection.
    let mut hier = HierarchicalNB::new(tax.clone(), NbOptions::default(), Some(300));
    let train_docs: Vec<(memex_learn::taxonomy::TopicId, &[(u32, u32)])> = train
        .iter()
        .map(|&i| {
            let page = interior[i];
            (
                leaf_of_topic[corpus.topic_of(page)].1,
                analyzed.tf[page as usize].as_slice(),
            )
        })
        .collect();
    hier.train(train_docs.iter().map(|&(t, d)| (t, d)));
    let mut flat_ok = 0usize;
    let mut hier_ok = 0usize;
    for &i in &test {
        let page = interior[i];
        let truth = corpus.topic_of(page);
        if flat.predict(&analyzed.tf[page as usize]) == truth {
            flat_ok += 1;
        }
        if hier.classify(&analyzed.tf[page as usize]) == leaf_of_topic[truth].1 {
            hier_ok += 1;
        }
    }
    let n = test.len().max(1) as f64;
    let mut table = Table::new(
        "A3: flat vs hierarchical (TAPER) naive Bayes",
        &["classifier", "accuracy"],
    );
    table.row(vec![
        "flat over all leaves".to_string(),
        pct(flat_ok as f64 / n),
    ]);
    table.row(vec![
        "hierarchical greedy descent (Fisher-selected routers)".to_string(),
        pct(hier_ok as f64 / n),
    ]);
    table.note("greedy descent matches flat accuracy with much smaller per-router models");
    table
}

/// A5 — semi-supervised EM (Nigam et al.) vs supervised text vs the
/// link+folder enhanced classifier, all on the T1 front-page problem: how
/// much of the enhanced lift could plain unlabelled *text* have delivered?
pub fn run_em(quick: bool) -> Table {
    use memex_learn::em::{em_naive_bayes, EmOptions};
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: if quick { 4 } else { 8 },
        pages_per_topic: if quick { 40 } else { 80 },
        front_topic_bias: 0.05,
        front_links: (3, 8),
        link_locality: 0.75,
        seed: 5,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let labels: Vec<Option<usize>> = corpus
        .pages
        .iter()
        .map(|p| {
            if !p.is_front && p.id % 3 == 0 {
                Some(p.topic)
            } else {
                None
            }
        })
        .collect();
    let em = em_naive_bayes(
        corpus.config.num_topics,
        &analyzed.tf,
        &labels,
        EmOptions::default(),
    );
    // Enhanced (links only, no folders, same inputs) for comparison.
    let problem = EnhancedProblem {
        num_classes: corpus.config.num_topics,
        docs: &analyzed.tf,
        graph: &corpus.graph,
        folders: &[],
        labels: &labels,
    };
    let enhanced = EnhancedClassifier::new(EnhancedOptions::default()).classify(&problem);
    let front_acc = |preds: &[usize]| {
        let (mut ok, mut n) = (0usize, 0usize);
        for p in corpus.pages.iter().filter(|p| p.is_front) {
            n += 1;
            if preds[p.id as usize] == p.topic {
                ok += 1;
            }
        }
        ok as f64 / n.max(1) as f64
    };
    let mut table = Table::new(
        "A5: what can unlabelled *text* buy? (front-page accuracy)",
        &["method", "accuracy"],
    );
    table.row(vec![
        "supervised naive Bayes".into(),
        pct(front_acc(&em.supervised_only)),
    ]);
    table.row(vec![
        "semi-supervised EM (text only)".into(),
        pct(front_acc(&em.predictions)),
    ]);
    table.row(vec![
        "enhanced (text + links)".into(),
        pct(front_acc(&enhanced.predictions)),
    ]);
    table.note("EM makes things WORSE here: front pages form a real text cluster (shared navigational chrome) that is orthogonal to topics, so EM labels them confidently wrong — the classic Nigam et al. caveat. No pure-text learner rescues text-poor pages; link evidence does.");
    table
}

/// A4 — bus batch size vs ingest and end-to-end throughput.
pub fn run_batching(quick: bool) -> Table {
    let n = if quick { 5_000 } else { 30_000 };
    let mut table = Table::new(
        "A4: pipeline batch size vs throughput",
        &["batch size", "ingest (ev/s)", "end-to-end (ev/s)"],
    );
    for &batch in &[1usize, 8, 32, 128] {
        let r = run_threaded(ThreadedConfig {
            num_events: n,
            batch_size: batch,
            consumers: 3,
            work_per_event: 2_000,
            crash_after_events: None,
            producer_pace_us: 0,
        });
        table.row(vec![
            batch.to_string(),
            format!("{:.0}", r.ingest_events_per_sec),
            format!("{:.0}", n as f64 / r.total_elapsed.as_secs_f64().max(1e-9)),
        ]);
    }
    table.note("bigger batches amortise bus locking on both the producer and demon sides");
    table
}
