//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p memex-bench --bin experiments            # all, full size
//! cargo run --release -p memex-bench --bin experiments -- --quick # CI size
//! cargo run --release -p memex-bench --bin experiments -- T1 F3   # a subset
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let filters: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_uppercase())
        .collect();
    println!("Memex experiment harness — regenerating the paper's tables & figures");
    println!("(mode: {})\n", if quick { "quick" } else { "full" });
    let total = Instant::now();
    for (id, title, runner) in memex_bench::all_experiments() {
        if !filters.is_empty() && !filters.iter().any(|f| f == id) {
            continue;
        }
        println!("=== {id}: {title} ===");
        let start = Instant::now();
        let table = runner(quick);
        print!("{}", table.render());
        println!("[{id} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    println!("all done in {:.1}s", total.elapsed().as_secs_f64());
    // Operational picture of the run itself: everything the experiments
    // pushed through process-global instruments (crawler frontier, spans).
    let obs = memex_obs::global().snapshot();
    if !obs.is_empty() {
        println!("\n=== observability snapshot (process-global registry) ===");
        print!("{}", obs.render_text());
    }
}
