//! **F3 — Figure 3, the server block diagram:** UI events get guaranteed
//! immediate ingest while demons lag behind a loosely-consistent bus; the
//! server survives overload and crashes by "discard\[ing\] a few client
//! events".
//!
//! Four measurements:
//! 1. threaded pipeline throughput + peak staleness as demon work grows;
//! 2. crash injection: one demon dies mid-stream, loses ≤ one batch;
//! 3. bounded-bus overload on the real server: ingest keeps succeeding,
//!    discards are counted, survivors stay consistent across demons;
//! 4. flaky fetches: a 20%-transient fetcher behind the bounded retry
//!    policy — the demon retries, abandons the hopeless, never stalls.

use memex_server::events::{ClientEvent, VisitEvent};
use memex_server::fetcher::{CorpusFetcher, FlakyConfig, FlakyFetcher};
use memex_server::pipeline::{MemexServer, ServerOptions};
use memex_server::threaded::{run_threaded, ThreadedConfig};

use crate::table::Table;
use crate::worlds::standard_corpus;

/// The F3 table.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "F3: pipeline throughput, staleness and recovery",
        &[
            "scenario",
            "events",
            "ingest rate (ev/s)",
            "peak staleness",
            "lost events",
        ],
    );
    let n = if quick { 5_000 } else { 50_000 };
    // 1. Demon work sweep: the producer is paced at a fixed arrival rate
    // (one 32-event batch every 100 us ≈ 320k ev/s offered); heavier demon
    // work shows up as staleness, never as ingest slowdown.
    for &work in &[0u32, 2_000, 20_000] {
        let r = run_threaded(ThreadedConfig {
            num_events: n,
            batch_size: 32,
            consumers: 3,
            work_per_event: work,
            crash_after_events: None,
            producer_pace_us: 100,
        });
        table.row(vec![
            format!("3 demons, work={work}"),
            n.to_string(),
            format!("{:.0}", r.ingest_events_per_sec),
            r.max_staleness.to_string(),
            "0".to_string(),
        ]);
        assert!(r.per_consumer_processed.iter().all(|&p| p == n));
    }
    // 2. Crash injection.
    let r = run_threaded(ThreadedConfig {
        num_events: n,
        batch_size: 32,
        consumers: 3,
        work_per_event: 2_000,
        crash_after_events: Some(n / 4),
        producer_pace_us: 100,
    });
    table.row(vec![
        "crash one demon at 25%".to_string(),
        n.to_string(),
        format!("{:.0}", r.ingest_events_per_sec),
        r.max_staleness.to_string(),
        r.events_lost_in_crash.to_string(),
    ]);
    // 3. Bounded-bus overload on the real server: demons normally keep up,
    // then stall for 10% of the burst (an analysis spike / GC pause). The
    // bounded bus sheds exactly the stall overflow and service continues.
    let corpus = standard_corpus(true, 33);
    let mut server = MemexServer::new(
        CorpusFetcher::new(corpus.clone()),
        ServerOptions {
            max_retained_batches: 64,
            ..ServerOptions::default()
        },
    )
    .expect("server");
    server.register_user(1, "load").expect("user");
    let burst = if quick { 2_000 } else { 10_000 };
    let stall = (burst * 4 / 10)..(burst * 5 / 10);
    let start = std::time::Instant::now();
    for i in 0..burst {
        server.submit(ClientEvent::Visit(VisitEvent {
            user: 1,
            session: 0,
            page: (i % corpus.num_pages()) as u32,
            url: String::new(),
            time: i as u64,
            referrer: None,
        }));
        if !stall.contains(&i) {
            server.run_trail_demon(2);
            let _ = server.run_index_demon(2);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    server.drain_demons().expect("drain");
    let stats = server.stats();
    table.row(vec![
        "real server, demon stall, bus cap 64".to_string(),
        burst.to_string(),
        format!("{:.0}", burst as f64 / elapsed),
        "64 (cap)".to_string(),
        stats.events_discarded_overload.to_string(),
    ]);
    // 4. Fetch-failure injection: every fetch attempt fails transiently
    // 20% of the time (seeded, reproducible). The index demon retries with
    // bounded exponential backoff and abandons pages whose budget runs
    // out; the bus always drains.
    let mut server = MemexServer::new(
        FlakyFetcher::new(
            CorpusFetcher::new(corpus.clone()),
            FlakyConfig {
                seed: 33,
                transient_per_10k: 2_000,
                ..FlakyConfig::default()
            },
        ),
        ServerOptions::default(),
    )
    .expect("server");
    server.register_user(1, "flaky").expect("user");
    let visits = if quick { 500 } else { 2_000 };
    let start = std::time::Instant::now();
    for i in 0..visits {
        server.submit(ClientEvent::Visit(VisitEvent {
            user: 1,
            session: 0,
            page: (i % corpus.num_pages()) as u32,
            url: String::new(),
            time: i as u64,
            referrer: None,
        }));
    }
    server.drain_demons().expect("drain");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(
        stats.pages_fetched + stats.pages_abandoned,
        corpus.num_pages().min(visits) as u64,
        "every page fetched or explicitly abandoned — the demon never stalls"
    );
    table.row(vec![
        format!(
            "20% flaky fetcher: {} retries, {} abandoned",
            stats.fetch_retries, stats.pages_abandoned
        ),
        visits.to_string(),
        format!("{:.0}", visits as f64 / elapsed),
        "0 (drained)".to_string(),
        stats.pages_abandoned.to_string(),
    ]);
    table.note("paper (§3): immediate UI handling, demons lag, recovery may discard a few events");
    table.note("survivor consistency: both demons processed the identical surviving stream");
    table.note("fetch faults: seeded transient failures; bounded retry, abandoned pages counted");
    table
}
