//! **F2 — Figure 2, the trail tab:** "When the user selects a folder,
//! Memex replays recently browsed pages which belong to the selected (or
//! contained) topic(s), reminding the user of the latest topical context."
//!
//! Measured: precision/recall of the replayed context against ground-truth
//! topics, and replay latency as the archived history grows.

use std::time::Instant;

use crate::table::{f3, pct, Table};
use crate::worlds::{populated_memex, standard_community, standard_corpus};

/// Replay quality + latency for one world size.
#[derive(Debug, Clone, Copy)]
pub struct TrailOutcome {
    pub visits: usize,
    pub precision: f64,
    pub recall: f64,
    pub latency_ms: f64,
}

/// Run replay for every (user, primary interest) pair and average
/// (exposed for the criterion bench).
pub fn run_once(quick: bool, sessions_per_user: usize, seed: u64) -> TrailOutcome {
    let corpus = standard_corpus(quick, seed);
    let mut community = standard_community(&corpus, quick, seed ^ 0x77);
    // Override session count to sweep history size.
    community = memex_web::surfer::Community::simulate(
        &corpus,
        &memex_web::surfer::SurferConfig {
            num_users: community.users.len(),
            sessions_per_user,
            seed: seed ^ 0x77,
            ..memex_web::surfer::SurferConfig::default()
        },
    );
    let mut memex = populated_memex(corpus.clone(), &community);
    let mut precision = 0.0;
    let mut recall = 0.0;
    let mut latency = 0.0;
    let mut runs = 0usize;
    for truth in community.users.iter().take(6) {
        let topic = truth.interests[0];
        let folder = {
            let fs = memex.folder_space(truth.user);
            fs.add_folder(&format!("/{}", corpus.topic_names[topic]))
        };
        let start = Instant::now();
        let ctx = memex.topic_context(truth.user, folder, 0, 30);
        latency += start.elapsed().as_secs_f64() * 1e3;
        if ctx.nodes.is_empty() {
            continue;
        }
        let on_topic = ctx
            .nodes
            .iter()
            .filter(|n| corpus.topic_of(n.page) == topic)
            .count();
        precision += on_topic as f64 / ctx.nodes.len() as f64;
        // Recall against the community's recent public on-topic pages
        // (capped at the same budget the replay had).
        let truth_pages: std::collections::HashSet<u32> = memex
            .server
            .trails
            .visits()
            .iter()
            .filter(|v| v.public && corpus.topic_of(v.page) == topic)
            .map(|v| v.page)
            .collect();
        let denominator = truth_pages.len().clamp(1, 30);
        recall += on_topic as f64 / denominator as f64;
        runs += 1;
    }
    let n = runs.max(1) as f64;
    TrailOutcome {
        visits: community.visits.len(),
        precision: precision / n,
        recall: recall / n,
        latency_ms: latency / n,
    }
}

/// The F2 table: quality + latency vs history size.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "F2: trail-tab context replay — precision/recall/latency vs history size",
        &[
            "sessions/user",
            "archived visits",
            "replay precision",
            "replay recall",
            "latency",
        ],
    );
    let sweep: &[usize] = if quick { &[4, 8] } else { &[5, 10, 20, 40] };
    for &sessions in sweep {
        let o = run_once(quick, sessions, 21);
        table.row(vec![
            sessions.to_string(),
            o.visits.to_string(),
            pct(o.precision),
            pct(o.recall),
            format!("{} ms", f3(o.latency_ms)),
        ]);
    }
    table
        .note("paper (Fig. 2): replay recreates the topical context; precision >> topic base rate");
    table
}
