//! **T4 — §4 / ref \[5\]:** "automatic resource discovery is undertaken by
//! demons to update users about recent and/or authoritative sources,
//! organized by topic", built on focused crawling. The signature figure of
//! the focused-crawling paper: harvest rate stays high for the focused
//! crawler while the unfocused baseline decays toward the base rate.

use memex_learn::nb::{NaiveBayes, NbOptions};
use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::crawler::{focused_crawl, unfocused_crawl, CrawlTrace};

use crate::table::{pct, Table};

/// Run both crawlers on the T4 web (exposed for the criterion bench).
pub fn run_once(quick: bool, seed: u64) -> (CrawlTrace, CrawlTrace, usize) {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: 6,
        pages_per_topic: if quick { 200 } else { 600 },
        link_locality: 0.8,
        seed,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let mut nb = NaiveBayes::new(6, NbOptions::default());
    for p in corpus.pages.iter().filter(|p| p.id % 3 == 0) {
        nb.add_document(p.topic, &analyzed.tf[p.id as usize]);
    }
    let target = 2usize;
    let seeds: Vec<u32> = corpus
        .front_pages_of_topic(target)
        .into_iter()
        .take(3)
        .collect();
    let budget = if quick { 180 } else { 500 };
    let focused = focused_crawl(&corpus, &analyzed.tf, &nb, target, &seeds, budget);
    let unfocused = unfocused_crawl(&corpus, &seeds, target, budget);
    (focused, unfocused, budget)
}

/// Mean on-topic rate in the final third of a trace (the steady state).
fn tail_rate(t: &CrawlTrace) -> f64 {
    let n = t.on_topic.len();
    if n == 0 {
        return 0.0;
    }
    let w = (n / 3).max(1);
    t.on_topic[n - w..].iter().filter(|&&b| b).count() as f64 / w as f64
}

/// The T4 table: the harvest-rate curve at checkpoints, seed-averaged.
pub fn run(quick: bool) -> Table {
    let seeds: &[u64] = if quick { &[77] } else { &[77, 78, 79] };
    let mut budget = 0usize;
    let mut curves_f: Vec<Vec<f64>> = Vec::new();
    let mut curves_u: Vec<Vec<f64>> = Vec::new();
    let mut cum_f = 0.0;
    let mut cum_u = 0.0;
    let mut tail_f = 0.0;
    let mut tail_u = 0.0;
    let mut checkpoints: Vec<usize> = Vec::new();
    for &s in seeds {
        let (focused, unfocused, b) = run_once(quick, s);
        budget = b;
        let step = b / 5;
        let fc = focused.harvest_curve(step);
        let uc = unfocused.harvest_curve(step);
        checkpoints = fc.iter().map(|&(n, _)| n).collect();
        curves_f.push(fc.iter().map(|&(_, h)| h).collect());
        curves_u.push(uc.iter().map(|&(_, h)| h).collect());
        cum_f += focused.harvest_rate();
        cum_u += unfocused.harvest_rate();
        tail_f += tail_rate(&focused);
        tail_u += tail_rate(&unfocused);
    }
    let k = seeds.len() as f64;
    let mut table = Table::new(
        "T4: harvest rate vs pages crawled (target topic 1-of-6, base rate 16.7%)",
        &["pages crawled", "focused harvest", "unfocused harvest"],
    );
    for (i, &n) in checkpoints.iter().enumerate() {
        let f: f64 = curves_f.iter().filter_map(|c| c.get(i)).sum::<f64>() / k;
        let u: f64 = curves_u.iter().filter_map(|c| c.get(i)).sum::<f64>() / k;
        table.row(vec![n.to_string(), pct(f), pct(u)]);
    }
    table.note(&format!(
        "cumulative over {budget}: focused {} vs unfocused {}; steady-state (final third): focused {} vs unfocused {}",
        pct(cum_f / k),
        pct(cum_u / k),
        pct(tail_f / k),
        pct(tail_u / k),
    ));
    table
        .note("paper shape (ref [5]): focused sustains harvest; unfocused decays toward base rate");
    table
}
