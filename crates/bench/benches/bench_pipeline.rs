//! Criterion bench for experiment F3: the Fig. 3 pipeline — threaded
//! producer/demons over the loosely-consistent bus, and raw ingest cost on
//! the real server.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::worlds::standard_corpus;
use memex_server::events::{ClientEvent, VisitEvent};
use memex_server::fetcher::CorpusFetcher;
use memex_server::pipeline::{MemexServer, ServerOptions};
use memex_server::threaded::{run_threaded, ThreadedConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_pipeline");
    group.sample_size(10);
    group.bench_function("threaded_10k_events_3_demons", |b| {
        b.iter(|| {
            run_threaded(ThreadedConfig {
                num_events: 10_000,
                batch_size: 32,
                consumers: 3,
                work_per_event: 50,
                crash_after_events: None,
                producer_pace_us: 0,
            })
        })
    });
    group.bench_function("server_submit_1k_visits", |b| {
        let corpus = standard_corpus(true, 3);
        b.iter(|| {
            let mut server =
                MemexServer::new(CorpusFetcher::new(corpus.clone()), ServerOptions::default())
                    .expect("server");
            server.register_user(1, "bench").expect("user");
            for i in 0..1_000u32 {
                server.submit(ClientEvent::Visit(VisitEvent {
                    user: 1,
                    session: 0,
                    page: i % corpus.num_pages() as u32,
                    url: String::new(),
                    time: u64::from(i),
                    referrer: None,
                }));
            }
            server.stats().events_submitted
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
