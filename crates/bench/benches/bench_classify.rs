//! Criterion bench for experiment T1: the §4 headline — text-only naive
//! Bayes vs the text+link+folder relaxation-labelling classifier on
//! bookmark-like front pages. `cargo bench -p memex-bench --bench
//! bench_classify` times one full transductive solve; the printed
//! accuracies come from the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::t1_classify::run_once;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_classify");
    group.sample_size(10);
    group.bench_function("enhanced_solve_quick", |b| {
        b.iter(|| {
            let o = run_once(std::hint::black_box(0.05), true, 1);
            assert!(o.enhanced_acc >= o.text_only_acc);
            o
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
