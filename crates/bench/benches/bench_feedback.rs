//! Criterion bench for experiment F1: the Fig. 1 folder-tab feedback loop —
//! one full classify/correct/retrain cycle over a user's history.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::f1_feedback::feedback_curve;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_feedback");
    group.sample_size(10);
    group.bench_function("six_feedback_rounds_quick", |b| {
        b.iter(|| {
            let curve = feedback_curve(true, 11, 6, 8);
            assert_eq!(curve.len(), 7);
            curve
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
