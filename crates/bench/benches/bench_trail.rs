//! Criterion bench for experiment F2: the Fig. 2 trail tab — latency of one
//! topical context replay over a populated archive (the interactive
//! operation a user triggers by clicking a folder).

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::worlds::standard_world;

fn bench(c: &mut Criterion) {
    let (corpus, community, mut memex) = standard_world(true, 21);
    let user = community.users[0].user;
    let topic = community.users[0].interests[0];
    let folder = {
        let fs = memex.folder_space(user);
        fs.add_folder(&format!("/{}", corpus.topic_names[topic]))
    };
    let mut group = c.benchmark_group("f2_trail");
    group.sample_size(20);
    group.bench_function("topic_context_replay", |b| {
        b.iter(|| {
            let ctx = memex.topic_context(user, folder, 0, 30);
            assert!(!ctx.nodes.is_empty());
            ctx
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
