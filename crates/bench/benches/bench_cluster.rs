//! Criterion bench for experiment T3: full HAC vs Buckshot vs
//! Fractionation at a fixed collection size — the "constant interaction
//! time" comparison of Scatter/Gather.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::t3_cluster::workload;
use memex_cluster::hac::hac_cut;
use memex_cluster::scatter::{buckshot, fractionation};

fn bench(c: &mut Criterion) {
    let (docs, _truth) = workload(240, 66);
    let k = 8;
    let mut group = c.benchmark_group("t3_cluster_240_docs");
    group.sample_size(10);
    group.bench_function("full_hac", |b| {
        b.iter(|| hac_cut(std::hint::black_box(&docs), k))
    });
    group.bench_function("buckshot", |b| {
        b.iter(|| buckshot(std::hint::black_box(&docs), k, 9))
    });
    group.bench_function("fractionation", |b| {
        b.iter(|| fractionation(std::hint::black_box(&docs), k, 60, 0.25, 9))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
