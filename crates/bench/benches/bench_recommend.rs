//! Criterion bench for experiment T5: building theme profiles, finding
//! similar surfers (vs the URL-overlap baseline) and producing
//! recommendations.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::worlds::standard_world;
use memex_core::recommend::{recommend_pages, similar_surfers, similar_surfers_by_url};

fn bench(c: &mut Criterion) {
    let (_corpus, community, memex) = standard_world(true, 88);
    let user = community.users[0].user;
    // Warm the theme cache once so the bench isolates the query cost.
    let _ = memex.community_themes();
    let mut group = c.benchmark_group("t5_recommend");
    group.sample_size(10);
    group.bench_function("similar_surfers_theme_profiles", |b| {
        b.iter(|| similar_surfers(&memex, user, 3))
    });
    group.bench_function("similar_surfers_url_overlap", |b| {
        b.iter(|| similar_surfers_by_url(&memex, user, 3))
    });
    group.bench_function("recommend_pages_top10", |b| {
        b.iter(|| recommend_pages(&memex, user, 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
