//! Criterion bench for experiment T6: the §1 motivating queries — a dated
//! keyword recall and an ISP bill breakdown over a populated archive.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::worlds::standard_world;

fn bench(c: &mut Criterion) {
    let (corpus, community, memex) = standard_world(true, 99);
    let user = community.users[0].user;
    let topic = community.users[0].interests[0];
    let query = corpus.topic_names[topic].clone();
    let mut group = c.benchmark_group("t6_recall");
    group.sample_size(20);
    group.bench_function("dated_keyword_recall", |b| {
        b.iter(|| {
            memex
                .recall(user, std::hint::black_box(&query), 0, u64::MAX, 10)
                .expect("recall")
        })
    });
    group.bench_function("isp_bill_breakdown", |b| {
        b.iter(|| memex.bill(user, 0, u64::MAX))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
