//! Criterion bench for the storage substrate (the architecture ablation
//! behind §3's "storing term-level statistics in an RDBMS would have
//! overwhelming space and time overheads"): raw KV puts/gets vs going
//! through the relational engine with an index.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use memex_store::kv::KvStore;
use memex_store::rel::{ColType, Column, Database, Predicate, Schema, Value};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ablation");
    group.sample_size(10);
    let n = 2_000u32;
    group.throughput(Throughput::Elements(u64::from(n)));
    group.bench_function("kv_put_2k_term_stats", |b| {
        b.iter(|| {
            let mut kv = KvStore::open_memory().expect("kv");
            for i in 0..n {
                kv.put(format!("tf:{i:08}").as_bytes(), &i.to_le_bytes())
                    .expect("put");
            }
            kv.len()
        })
    });
    group.bench_function("rdbms_insert_2k_term_stats", |b| {
        b.iter(|| {
            let mut db = Database::open_memory().expect("db");
            let t = db
                .create_table(
                    Schema::new(
                        "terms",
                        vec![
                            Column::unique("term", ColType::Text),
                            Column::new("tf", ColType::Int),
                        ],
                    )
                    .expect("schema"),
                )
                .expect("table");
            for i in 0..n {
                db.insert(
                    &t,
                    vec![Value::Text(format!("tf:{i:08}")), Value::Int(i64::from(i))],
                )
                .expect("insert");
            }
            db.count(&t).expect("count")
        })
    });
    group.throughput(Throughput::Elements(1));
    // Point-lookup comparison on prepared stores.
    let mut kv = KvStore::open_memory().expect("kv");
    for i in 0..n {
        kv.put(format!("tf:{i:08}").as_bytes(), &i.to_le_bytes())
            .expect("put");
    }
    let mut db = Database::open_memory().expect("db");
    let t = db
        .create_table(
            Schema::new(
                "terms",
                vec![
                    Column::unique("term", ColType::Text),
                    Column::new("tf", ColType::Int),
                ],
            )
            .expect("schema"),
        )
        .expect("table");
    for i in 0..n {
        db.insert(
            &t,
            vec![Value::Text(format!("tf:{i:08}")), Value::Int(i64::from(i))],
        )
        .expect("insert");
    }
    group.bench_function("kv_point_get", |b| {
        b.iter(|| kv.get(std::hint::black_box(b"tf:00000999")).expect("get"))
    });
    group.bench_function("rdbms_indexed_lookup", |b| {
        b.iter(|| {
            db.scan(
                &t,
                &Predicate::eq("term", Value::Text("tf:00000999".into())),
            )
            .expect("scan")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
