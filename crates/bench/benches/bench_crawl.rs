//! Criterion bench for experiment T4: one focused crawl and one unfocused
//! crawl over the same seeds and budget.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_learn::nb::{NaiveBayes, NbOptions};
use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::crawler::{focused_crawl, unfocused_crawl};

fn bench(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: 6,
        pages_per_topic: 200,
        link_locality: 0.8,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let mut nb = NaiveBayes::new(6, NbOptions::default());
    for p in corpus.pages.iter().filter(|p| p.id % 3 == 0) {
        nb.add_document(p.topic, &analyzed.tf[p.id as usize]);
    }
    let seeds: Vec<u32> = corpus.front_pages_of_topic(2).into_iter().take(3).collect();
    let mut group = c.benchmark_group("t4_crawl_180_fetches");
    group.sample_size(10);
    group.bench_function("focused", |b| {
        b.iter(|| {
            focused_crawl(
                &corpus,
                &analyzed.tf,
                &nb,
                2,
                std::hint::black_box(&seeds),
                180,
            )
        })
    });
    group.bench_function("unfocused_bfs", |b| {
        b.iter(|| unfocused_crawl(&corpus, std::hint::black_box(&seeds), 2, 180))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
