//! Criterion bench for experiment F4: Fig. 4 theme discovery — one full
//! merge/refine/coarsen pass over a community's folders.

use criterion::{criterion_group, criterion_main, Criterion};

use memex_bench::worlds::standard_world;
use memex_cluster::themes::{ThemeDiscovery, ThemeOptions, UserFolder};
use memex_text::vector::SparseVec;

fn bench(c: &mut Criterion) {
    // Prepare the folder corpus once.
    let (_corpus, _community, memex) = standard_world(true, 44);
    let mut doc_pages: Vec<u32> = Vec::new();
    let mut doc_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut groups: std::collections::HashMap<(u32, String), Vec<usize>> =
        std::collections::HashMap::new();
    for b in &memex.server.bookmarks {
        let d = *doc_of.entry(b.page).or_insert_with(|| {
            doc_pages.push(b.page);
            doc_pages.len() - 1
        });
        groups
            .entry((b.user, b.folder.clone()))
            .or_default()
            .push(d);
    }
    let docs: Vec<SparseVec> = doc_pages
        .iter()
        .map(|&p| memex.page_vector(p).unwrap_or_default())
        .collect();
    let folders: Vec<UserFolder> = groups
        .into_iter()
        .map(|((user, name), mut docs)| {
            docs.sort_unstable();
            docs.dedup();
            UserFolder { user, name, docs }
        })
        .collect();
    let mut group = c.benchmark_group("f4_themes");
    group.sample_size(20);
    group.bench_function("theme_discovery_full_pass", |b| {
        b.iter(|| {
            let themes = ThemeDiscovery::new(ThemeOptions::default()).run(&docs, &folders);
            assert!(!themes.themes.is_empty());
            themes
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
