//! Criterion bench for experiment T2: full-text search — index build rate
//! and BM25 query latency over an archived corpus.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use memex_index::index::{IndexOptions, InvertedIndex};
use memex_index::search::{bm25_search, Bm25Params};
use memex_web::corpus::{Corpus, CorpusConfig};

fn bench(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: 8,
        pages_per_topic: 60,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    let mut group = c.benchmark_group("t2_search");
    group.sample_size(10);
    group.throughput(Throughput::Elements(corpus.num_pages() as u64));
    group.bench_function("index_build_480_docs", |b| {
        b.iter(|| {
            let mut index = InvertedIndex::open_memory(IndexOptions::default()).expect("index");
            for p in &corpus.pages {
                index
                    .add_document(p.id, &analyzed.tf[p.id as usize])
                    .expect("add");
            }
            index.commit().expect("commit");
            index.num_docs()
        })
    });
    group.throughput(Throughput::Elements(1));
    // A prepared index for query benches.
    let mut index = InvertedIndex::open_memory(IndexOptions::default()).expect("index");
    for p in &corpus.pages {
        index
            .add_document(p.id, &analyzed.tf[p.id as usize])
            .expect("add");
    }
    index.merge_segments().expect("merge");
    let query: Vec<(u32, u32)> = analyzed.tf[1]
        .iter()
        .take(3)
        .map(|&(t, _)| (t, 1))
        .collect();
    group.bench_function("bm25_top10_query", |b| {
        b.iter(|| {
            bm25_search(
                &index,
                std::hint::black_box(&query),
                10,
                Bm25Params::default(),
            )
            .expect("search")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
