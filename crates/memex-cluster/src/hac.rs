//! Group-average hierarchical agglomerative clustering (HAC).
//!
//! Documents are L2-normalised sparse vectors, so the *exact* group-average
//! cosine linkage between clusters A and B is
//! `sim(A, B) = (S_A · S_B) / (|A| · |B|)` where `S_X` is the sum of X's
//! unit vectors — merges need only vector sums, never pairwise matrices.
//! Nearest-neighbour caching keeps the whole run at roughly O(n² · d̄).

use memex_text::vector::SparseVec;

/// One merge step: clusters `a` and `b` (ids) merged into `into` at
/// group-average similarity `sim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    pub a: usize,
    pub b: usize,
    pub into: usize,
    pub sim: f32,
}

/// The full merge history. Leaves are 0..n; merge `i` creates cluster
/// `n + i`.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    pub num_leaves: usize,
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Flat clustering with `k` clusters: undo the last `k - 1` merges.
    /// Returns a label in `0..k` per leaf (labels are dense, arbitrary).
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let n = self.num_leaves;
        assert!(k >= 1);
        if n == 0 {
            return Vec::new();
        }
        let k = k.min(n);
        // Union-find over leaves, applying merges until only k clusters.
        let mut parent: Vec<usize> = (0..n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut clusters = n;
        for m in &self.merges {
            if clusters <= k {
                break;
            }
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = m.into;
            parent[rb] = m.into;
            clusters -= 1;
        }
        // Compact roots to 0..k labels.
        let mut label_of_root = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for leaf in 0..n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            out.push(label);
        }
        out
    }
}

struct Cluster {
    /// Sum of member unit vectors.
    sum: SparseVec,
    size: usize,
    alive: bool,
}

/// HAC runner.
pub struct Hac {
    clusters: Vec<Cluster>,
    num_leaves: usize,
}

impl Hac {
    /// Prepare from documents (normalised internally).
    pub fn new(docs: &[SparseVec]) -> Hac {
        let clusters = docs
            .iter()
            .map(|d| {
                let mut v = d.clone();
                v.normalize();
                Cluster {
                    sum: v,
                    size: 1,
                    alive: true,
                }
            })
            .collect();
        Hac {
            clusters,
            num_leaves: docs.len(),
        }
    }

    /// Prepare from pre-agglomerated groups: each leaf is `(sum of member
    /// unit vectors, member count)`. Group-average linkage then remains
    /// *exact* with respect to the original documents — the property
    /// Fractionation needs when it feeds merged buckets back in as
    /// pseudo-documents.
    pub fn new_weighted(groups: &[(SparseVec, usize)]) -> Hac {
        let clusters = groups
            .iter()
            .map(|(sum, size)| Cluster {
                sum: sum.clone(),
                size: (*size).max(1),
                alive: true,
            })
            .collect();
        Hac {
            clusters,
            num_leaves: groups.len(),
        }
    }

    fn sim(&self, a: usize, b: usize) -> f32 {
        let ca = &self.clusters[a];
        let cb = &self.clusters[b];
        ca.sum.dot(&cb.sum) / (ca.size as f32 * cb.size as f32)
    }

    /// Run to completion (single cluster) and return the dendrogram.
    pub fn run(mut self) -> Dendrogram {
        let n = self.num_leaves;
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        if n <= 1 {
            return Dendrogram {
                num_leaves: n,
                merges,
            };
        }
        // Nearest-neighbour cache: nn[i] = (best_j, sim).
        let mut active: Vec<usize> = (0..n).collect();
        let mut nn: Vec<Option<(usize, f32)>> = vec![None; n + (n - 1)];
        for &i in &active {
            nn[i] = self.best_neighbour(i, &active);
        }
        while active.len() > 1 {
            // Best merge among cached NNs.
            let (&best_i, &(best_j, best_sim)) = active
                .iter()
                .filter_map(|i| nn[*i].as_ref().map(|p| (i, p)))
                .max_by(|a, b| {
                    a.1 .1
                        .partial_cmp(&b.1 .1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least two active clusters");
            // Merge best_i and best_j into a fresh cluster id.
            let into = self.clusters.len();
            let mut sum = self.clusters[best_i].sum.clone();
            sum.add_assign(&self.clusters[best_j].sum);
            let size = self.clusters[best_i].size + self.clusters[best_j].size;
            self.clusters[best_i].alive = false;
            self.clusters[best_j].alive = false;
            self.clusters.push(Cluster {
                sum,
                size,
                alive: true,
            });
            merges.push(Merge {
                a: best_i,
                b: best_j,
                into,
                sim: best_sim,
            });
            active.retain(|&x| x != best_i && x != best_j);
            active.push(into);
            if nn.len() <= into {
                nn.resize(into + 1, None);
            }
            // Refresh NN for the new cluster and any cluster whose NN died.
            nn[into] = self.best_neighbour(into, &active);
            for &i in &active {
                if i == into {
                    continue;
                }
                match nn[i] {
                    Some((j, _)) if j == best_i || j == best_j => {
                        nn[i] = self.best_neighbour(i, &active);
                    }
                    None => nn[i] = self.best_neighbour(i, &active),
                    _ => {
                        // A new cluster may be closer than the cached NN.
                        let s = self.sim(i, into);
                        if let Some((_, cached)) = nn[i] {
                            if s > cached {
                                nn[i] = Some((into, s));
                            }
                        }
                    }
                }
            }
        }
        Dendrogram {
            num_leaves: n,
            merges,
        }
    }

    fn best_neighbour(&self, i: usize, active: &[usize]) -> Option<(usize, f32)> {
        active
            .iter()
            .filter(|&&j| j != i && self.clusters[j].alive)
            .map(|&j| (j, self.sim(i, j)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Convenience: cluster `docs` into `k` flat clusters by full HAC.
pub fn hac_cut(docs: &[SparseVec], k: usize) -> Vec<usize> {
    Hac::new(docs).run().cut(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    /// Three tight groups in disjoint term subspaces.
    fn three_groups() -> (Vec<SparseVec>, Vec<usize>) {
        let mut docs = Vec::new();
        let mut truth = Vec::new();
        for g in 0..3u32 {
            for j in 0..5u32 {
                let base = g * 10;
                docs.push(v(&[(base, 3.0), (base + 1 + (j % 2), 1.0)]));
                truth.push(g as usize);
            }
        }
        (docs, truth)
    }

    fn same_partition(a: &[usize], b: &[usize]) -> bool {
        // Equal up to label permutation.
        let mut map = std::collections::HashMap::new();
        let mut rev = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *map.entry(x).or_insert(y) != y || *rev.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn recovers_separable_groups() {
        let (docs, truth) = three_groups();
        let labels = hac_cut(&docs, 3);
        assert!(
            same_partition(&labels, &truth),
            "labels {labels:?} vs {truth:?}"
        );
    }

    #[test]
    fn dendrogram_shape() {
        let (docs, _) = three_groups();
        let d = Hac::new(&docs).run();
        assert_eq!(d.num_leaves, 15);
        assert_eq!(d.merges.len(), 14, "n-1 merges to a single root");
        // Merge similarities trend downward-ish: the first merge is among
        // the most similar pair, the last joins the least similar groups.
        assert!(d.merges.first().unwrap().sim >= d.merges.last().unwrap().sim);
    }

    #[test]
    fn cut_extremes() {
        let (docs, _) = three_groups();
        let d = Hac::new(&docs).run();
        let all_one = d.cut(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = d.cut(15);
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
        let over = d.cut(99);
        assert_eq!(over, singletons, "k > n behaves like k = n");
    }

    #[test]
    fn tiny_inputs() {
        assert!(hac_cut(&[], 3).is_empty());
        assert_eq!(hac_cut(&[v(&[(1, 1.0)])], 2), vec![0]);
        let two = vec![v(&[(1, 1.0)]), v(&[(2, 1.0)])];
        assert_eq!(hac_cut(&two, 2), vec![0, 1]);
        assert_eq!(hac_cut(&two, 1), vec![0, 0]);
    }

    #[test]
    fn group_average_prefers_tight_merge() {
        // a1,a2 nearly identical; b far away: first merge must be a1-a2.
        let docs = vec![
            v(&[(1, 1.0), (2, 0.1)]),
            v(&[(1, 1.0), (2, 0.12)]),
            v(&[(9, 1.0)]),
        ];
        let d = Hac::new(&docs).run();
        let first = d.merges[0];
        assert_eq!((first.a.min(first.b), first.a.max(first.b)), (0, 1));
    }
}
