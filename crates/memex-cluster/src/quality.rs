//! Clustering quality metrics: purity, normalised mutual information, and
//! the MDL-style *description cost* that drives and evaluates theme
//! discovery (Fig. 4): model cost per theme + data cost for how badly each
//! document fits its theme centroid.

use std::collections::HashMap;

use memex_text::vector::SparseVec;

/// Purity: fraction of documents in the majority-truth class of their
/// cluster. 1.0 = perfect, 1/k-ish = random.
pub fn purity(labels: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(labels.len(), truth.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mut per_cluster: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (&l, &t) in labels.iter().zip(truth) {
        *per_cluster.entry(l).or_default().entry(t).or_insert(0) += 1;
    }
    let correct: usize = per_cluster
        .values()
        .map(|counts| counts.values().max().copied().unwrap_or(0))
        .sum();
    correct as f64 / labels.len() as f64
}

/// Normalised mutual information between a clustering and the truth, in
/// `[0, 1]` (arithmetic-mean normalisation).
pub fn nmi(labels: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(labels.len(), truth.len());
    let n = labels.len() as f64;
    if labels.is_empty() {
        return 0.0;
    }
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    let mut pl: HashMap<usize, f64> = HashMap::new();
    let mut pt: HashMap<usize, f64> = HashMap::new();
    for (&l, &t) in labels.iter().zip(truth) {
        *joint.entry((l, t)).or_insert(0.0) += 1.0;
        *pl.entry(l).or_insert(0.0) += 1.0;
        *pt.entry(t).or_insert(0.0) += 1.0;
    }
    let mut mi = 0.0;
    for (&(l, t), &c) in &joint {
        let pxy = c / n;
        let px = pl[&l] / n;
        let py = pt[&t] / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    let hl: f64 = -pl.values().map(|&c| (c / n) * (c / n).ln()).sum::<f64>();
    let ht: f64 = -pt.values().map(|&c| (c / n) * (c / n).ln()).sum::<f64>();
    let denom = 0.5 * (hl + ht);
    if denom <= 0.0 {
        // Degenerate: single cluster and single class => identical.
        return if hl == ht { 1.0 } else { 0.0 };
    }
    (mi / denom).clamp(0.0, 1.0)
}

/// MDL-style cost of a flat partition of `docs`:
/// `alpha * num_clusters + sum_d (1 - cos(d, centroid(cluster(d))))`.
///
/// The first term charges for model complexity (each theme's signature must
/// be described); the second is the data misfit. Refining a loose theme
/// pays `alpha` but recovers misfit; coarsening a tiny theme saves `alpha`
/// at little misfit cost — exactly the paper's "refining topics where
/// needed and coarsening where possible" trade-off.
pub fn partition_cost(docs: &[SparseVec], labels: &[usize], alpha: f64) -> f64 {
    assert_eq!(docs.len(), labels.len());
    if docs.is_empty() {
        return 0.0;
    }
    let k = labels.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut sums = vec![SparseVec::new(); k];
    let mut used = vec![false; k];
    for (doc, &l) in docs.iter().zip(labels) {
        let mut v = doc.clone();
        v.normalize();
        sums[l].add_assign(&v);
        used[l] = true;
    }
    for s in &mut sums {
        s.normalize();
    }
    let num_clusters = used.iter().filter(|&&u| u).count();
    let mut data = 0.0f64;
    for (doc, &l) in docs.iter().zip(labels) {
        let mut v = doc.clone();
        v.normalize();
        data += f64::from(1.0 - v.dot(&sums[l]));
    }
    alpha * num_clusters as f64 + data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn purity_extremes() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(purity(&[0, 1, 0, 1], &[0, 0, 1, 1]), 0.5);
        // Singleton clusters are trivially pure.
        assert_eq!(purity(&[0, 1, 2, 3], &[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn nmi_extremes() {
        assert!(
            (nmi(&[0, 0, 1, 1], &[1, 1, 0, 0]) - 1.0).abs() < 1e-9,
            "label permutation is perfect"
        );
        let low = nmi(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!(low < 0.01, "independent labelling has ~zero NMI, got {low}");
        // Singletons are penalised relative to the permutation case.
        assert!(nmi(&[0, 1, 2, 3], &[0, 0, 1, 1]) < 1.0);
    }

    #[test]
    fn cost_prefers_the_true_structure() {
        // Two tight groups. Correct 2-way split should beat both the 1-way
        // and the 4-way splits at moderate alpha.
        let docs = vec![
            v(&[(1, 1.0), (2, 0.2)]),
            v(&[(1, 1.0), (2, 0.3)]),
            v(&[(9, 1.0), (8, 0.2)]),
            v(&[(9, 1.0), (8, 0.3)]),
        ];
        let alpha = 0.05;
        let two = partition_cost(&docs, &[0, 0, 1, 1], alpha);
        let one = partition_cost(&docs, &[0, 0, 0, 0], alpha);
        let four = partition_cost(&docs, &[0, 1, 2, 3], alpha);
        assert!(two < one, "refinement pays off: {two} vs {one}");
        assert!(two < four, "over-refinement is charged: {two} vs {four}");
    }

    #[test]
    fn cost_is_zero_clusters_for_empty() {
        assert_eq!(partition_cost(&[], &[], 1.0), 0.0);
    }
}
