//! Theme discovery (Fig. 4): "Memex computes, from the document-folder
//! associations of multiple users, a topic taxonomy specifically tailored
//! for the interests of that user population. The taxonomy consists of
//! themes which capture common factors in people's interests when they
//! can, while maintaining individuality when they must."
//!
//! The algorithm, driven by the MDL-style cost of [`crate::quality`]:
//!
//! 1. **Seed** one candidate theme per user folder (centroid of its docs).
//! 2. **Merge** — greedily merge the most-similar theme pair across users
//!    while their centroid cosine clears `merge_threshold` *and* the merge
//!    does not increase the description cost: common factors pool, niche
//!    folders survive untouched (individuality).
//! 3. **Refine** — a theme whose internal cohesion is poor and whose
//!    support is large is split with spherical 2-means into child themes
//!    ("refining topics where needed").
//! 4. **Coarsen** — a leaf theme with too little support folds into its
//!    most similar sibling ("coarsening where possible").
//!
//! The result is a [`Taxonomy`] of themes plus doc/folder→theme maps; user
//! profiles over these nodes feed collaborative recommendation (T5).

use std::collections::HashMap;

use memex_learn::taxonomy::{Taxonomy, TopicId};
use memex_text::vector::SparseVec;

use crate::kmeans::KMeans;

/// One user's folder with the documents they filed in it.
#[derive(Debug, Clone)]
pub struct UserFolder {
    pub user: u32,
    pub name: String,
    /// Indices into the shared document array.
    pub docs: Vec<usize>,
}

/// Tuning for theme discovery.
#[derive(Debug, Clone, Copy)]
pub struct ThemeOptions {
    /// Minimum centroid cosine for a cross-folder merge.
    pub merge_threshold: f32,
    /// Refine a theme whose mean doc-to-centroid cosine is below this...
    pub cohesion_threshold: f32,
    /// ...and which holds at least `2 * min_support` documents.
    pub min_support: usize,
    /// Maximum refinement depth below the first theme level.
    pub max_refine_depth: usize,
    /// Model cost per theme in the MDL objective: a merge is accepted only
    /// when the data misfit it adds stays below this saving.
    pub alpha: f64,
    pub seed: u64,
}

impl Default for ThemeOptions {
    fn default() -> Self {
        ThemeOptions {
            // High enough that shared *topical* vocabulary is needed to
            // merge — web pages share plenty of navigational chrome terms
            // that sit around cosine 0.2–0.4 across topics.
            merge_threshold: 0.5,
            // Scale note: two orthogonal topics mixed half/half give a mean
            // doc-to-centroid cosine of ~0.71, a tight single topic ~0.95+;
            // 0.72 separates those regimes.
            cohesion_threshold: 0.72,
            min_support: 3,
            max_refine_depth: 2,
            alpha: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

/// A discovered theme (taxonomy node with content).
#[derive(Debug, Clone)]
pub struct Theme {
    pub topic: TopicId,
    pub centroid: SparseVec,
    pub docs: Vec<usize>,
    /// Users whose folders contributed.
    pub users: Vec<u32>,
    /// Indices of contributing input folders.
    pub source_folders: Vec<usize>,
}

/// Output of theme discovery.
#[derive(Debug, Clone)]
pub struct Themes {
    pub taxonomy: Taxonomy,
    pub themes: Vec<Theme>,
    /// Per input document: its theme's taxonomy node (None = unfiled).
    pub doc_theme: Vec<Option<TopicId>>,
    /// Per input folder: the theme node it was absorbed into.
    pub folder_theme: Vec<TopicId>,
    /// Count of merge / refine / coarsen operations performed (reported by
    /// the F4 experiment).
    pub merges: usize,
    pub refines: usize,
    pub coarsens: usize,
}

impl Themes {
    /// Theme lookup by taxonomy node.
    pub fn theme_of(&self, topic: TopicId) -> Option<&Theme> {
        self.themes.iter().find(|t| t.topic == topic)
    }

    /// Assign a new document vector to its nearest *leaf* theme.
    pub fn assign(&self, doc: &SparseVec) -> Option<TopicId> {
        let mut v = doc.clone();
        v.normalize();
        self.themes
            .iter()
            .filter(|t| self.taxonomy.children(t.topic).is_empty())
            .map(|t| (t.topic, v.dot(&t.centroid)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(topic, _)| topic)
    }

    /// A user's profile: weight per theme node = fraction of their docs
    /// assigned under that node (ancestors accumulate descendants).
    pub fn user_profile(&self, user_docs: &[usize]) -> HashMap<TopicId, f64> {
        let mut profile: HashMap<TopicId, f64> = HashMap::new();
        let total = user_docs.len().max(1) as f64;
        for &d in user_docs {
            if let Some(Some(topic)) = self.doc_theme.get(d) {
                // Credit the node and every ancestor.
                let mut cur = Some(*topic);
                while let Some(c) = cur {
                    *profile.entry(c).or_insert(0.0) += 1.0 / total;
                    cur = self.taxonomy.parent(c);
                }
            }
        }
        profile
    }
}

/// Cosine similarity between two theme profiles (sparse maps over nodes).
pub fn profile_similarity(a: &HashMap<TopicId, f64>, b: &HashMap<TopicId, f64>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Internal working cluster during merge.
struct Candidate {
    sum: SparseVec,
    docs: Vec<usize>,
    users: Vec<u32>,
    folders: Vec<usize>,
    names: Vec<String>,
    alive: bool,
}

impl Candidate {
    fn centroid(&self) -> SparseVec {
        let mut c = self.sum.clone();
        c.normalize();
        c
    }
}

/// The theme-discovery algorithm.
pub struct ThemeDiscovery {
    opts: ThemeOptions,
}

impl ThemeDiscovery {
    pub fn new(opts: ThemeOptions) -> ThemeDiscovery {
        ThemeDiscovery { opts }
    }

    /// Run over shared `docs` and all users' `folders`.
    pub fn run(&self, docs: &[SparseVec], folders: &[UserFolder]) -> Themes {
        let normed: Vec<SparseVec> = docs
            .iter()
            .map(|d| {
                let mut v = d.clone();
                v.normalize();
                v
            })
            .collect();
        // 1. Seed candidates from folders.
        let mut cands: Vec<Candidate> = folders
            .iter()
            .enumerate()
            .map(|(fi, f)| {
                let mut sum = SparseVec::new();
                for &d in &f.docs {
                    if d < normed.len() {
                        sum.add_assign(&normed[d]);
                    }
                }
                Candidate {
                    sum,
                    docs: f
                        .docs
                        .iter()
                        .copied()
                        .filter(|&d| d < normed.len())
                        .collect(),
                    users: vec![f.user],
                    folders: vec![fi],
                    names: vec![f.name.clone()],
                    alive: true,
                }
            })
            .collect();
        // 2. Greedy merge: among pairs clearing the similarity threshold,
        // take the most similar whose merge does not raise the MDL cost —
        // i.e. the added data misfit stays below the model cost `alpha`
        // saved by dropping one theme. For unit documents the misfit of a
        // cluster has the closed form `|C| - ||Σd||`, so the misfit a merge
        // adds is just `||s_A|| + ||s_B|| - ||s_A + s_B||`. This is the
        // anti-chaining guard: as themes grow, gluing two of them together
        // costs more, so tight same-topic folders pool while distinct
        // topics stay apart ("individuality when they must").
        let mut merges = 0usize;
        loop {
            let alive: Vec<usize> = (0..cands.len()).filter(|&i| cands[i].alive).collect();
            if alive.len() < 2 {
                break;
            }
            let mut scored: Vec<(usize, usize, f32)> = Vec::new();
            for (ai, &i) in alive.iter().enumerate() {
                let ci = cands[i].centroid();
                for &j in &alive[ai + 1..] {
                    let sim = ci.dot(&cands[j].centroid());
                    if sim >= self.opts.merge_threshold {
                        scored.push((i, j, sim));
                    }
                }
            }
            scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            let mut chosen = None;
            for &(i, j, sim) in &scored {
                let na = cands[i].sum.norm();
                let nb = cands[j].sum.norm();
                let mut merged = cands[i].sum.clone();
                merged.add_assign(&cands[j].sum);
                let added_misfit = f64::from(na) + f64::from(nb) - f64::from(merged.norm());
                if added_misfit < self.opts.alpha {
                    chosen = Some((i, j, sim));
                    break;
                }
            }
            let Some((i, j, _sim)) = chosen else { break };
            let (lo, hi) = (i.min(j), i.max(j));
            let (head, tail) = cands.split_at_mut(hi);
            let (a, b) = (&mut head[lo], &mut tail[0]);
            a.sum.add_assign(&b.sum);
            a.docs.append(&mut b.docs);
            a.users.append(&mut b.users);
            a.folders.append(&mut b.folders);
            a.names.append(&mut b.names);
            b.alive = false;
            merges += 1;
        }
        // 3. Build the taxonomy: one node per surviving candidate.
        let mut taxonomy = Taxonomy::new();
        let mut themes: Vec<Theme> = Vec::new();
        let mut doc_theme: Vec<Option<TopicId>> = vec![None; docs.len()];
        let mut folder_theme: Vec<TopicId> = vec![Taxonomy::ROOT; folders.len()];
        let mut refines = 0usize;
        let mut coarsens = 0usize;
        for cand in cands.iter().filter(|c| c.alive) {
            let name = majority_name(&cand.names);
            let node = taxonomy.add_child(Taxonomy::ROOT, &name);
            for &fi in &cand.folders {
                folder_theme[fi] = node;
            }
            // 3a. Refine recursively where cohesion is poor.
            self.place_docs(
                &mut taxonomy,
                &mut themes,
                &mut doc_theme,
                &normed,
                node,
                &name,
                cand,
                0,
                &mut refines,
            );
        }
        // 4. Coarsen: fold under-supported first-level leaves into their
        // most similar sibling.
        let first_level = taxonomy.children(Taxonomy::ROOT);
        for node in first_level {
            if !taxonomy.children(node).is_empty() {
                continue;
            }
            let Some(pos) = themes.iter().position(|t| t.topic == node) else {
                continue;
            };
            if themes[pos].docs.len() >= self.opts.min_support {
                continue;
            }
            // Most similar *other* leaf sibling.
            let centroid = themes[pos].centroid.clone();
            let target = themes
                .iter()
                .enumerate()
                .filter(|(q, t)| {
                    *q != pos
                        && t.topic != node
                        && taxonomy.parent(t.topic) == Some(Taxonomy::ROOT)
                        && taxonomy.children(t.topic).is_empty()
                })
                .map(|(q, t)| (q, centroid.dot(&t.centroid)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((q, _)) = target {
                let absorbed = themes[pos].clone();
                let tgt_topic = themes[q].topic;
                for &d in &absorbed.docs {
                    doc_theme[d] = Some(tgt_topic);
                }
                for fi in &absorbed.source_folders {
                    folder_theme[*fi] = tgt_topic;
                }
                {
                    let tgt = &mut themes[q];
                    tgt.docs.extend(absorbed.docs.iter().copied());
                    tgt.users.extend(absorbed.users.iter().copied());
                    tgt.source_folders
                        .extend(absorbed.source_folders.iter().copied());
                    let mut sum = tgt.centroid.clone();
                    sum.add_assign(&absorbed.centroid);
                    sum.normalize();
                    tgt.centroid = sum;
                }
                themes.remove(pos);
                taxonomy.remove(node);
                coarsens += 1;
            }
        }
        for t in &mut themes {
            t.users.sort_unstable();
            t.users.dedup();
        }
        Themes {
            taxonomy,
            themes,
            doc_theme,
            folder_theme,
            merges,
            refines,
            coarsens,
        }
    }

    /// Place a candidate's docs under `node`, refining by 2-means when the
    /// theme is big and loose.
    #[allow(clippy::too_many_arguments)]
    fn place_docs(
        &self,
        taxonomy: &mut Taxonomy,
        themes: &mut Vec<Theme>,
        doc_theme: &mut [Option<TopicId>],
        normed: &[SparseVec],
        node: TopicId,
        name: &str,
        cand: &Candidate,
        depth: usize,
        refines: &mut usize,
    ) {
        let centroid = cand.centroid();
        let cohesion = if cand.docs.is_empty() {
            1.0
        } else {
            cand.docs
                .iter()
                .map(|&d| normed[d].dot(&centroid))
                .sum::<f32>()
                / cand.docs.len() as f32
        };
        let should_refine = depth < self.opts.max_refine_depth
            && cand.docs.len() >= 2 * self.opts.min_support
            && cohesion < self.opts.cohesion_threshold;
        if should_refine {
            let subset: Vec<SparseVec> = cand.docs.iter().map(|&d| normed[d].clone()).collect();
            let mut km = KMeans::new(2);
            km.seed = self.opts.seed ^ (node as u64);
            let result = km.run(&subset, None);
            // Both halves non-trivial? Otherwise refinement is pointless.
            let count0 = result.labels.iter().filter(|&&l| l == 0).count();
            if count0 >= self.opts.min_support && subset.len() - count0 >= self.opts.min_support {
                *refines += 1;
                for half in 0..2usize {
                    let child_name = format!("{name}#{}", half + 1);
                    let child = taxonomy.add_child(node, &child_name);
                    let docs: Vec<usize> = cand
                        .docs
                        .iter()
                        .zip(&result.labels)
                        .filter(|&(_, &l)| l == half)
                        .map(|(&d, _)| d)
                        .collect();
                    let mut sum = SparseVec::new();
                    for &d in &docs {
                        sum.add_assign(&normed[d]);
                    }
                    let sub = Candidate {
                        sum,
                        docs,
                        users: cand.users.clone(),
                        folders: Vec::new(),
                        names: vec![child_name.clone()],
                        alive: true,
                    };
                    self.place_docs(
                        taxonomy,
                        themes,
                        doc_theme,
                        normed,
                        child,
                        &child_name,
                        &sub,
                        depth + 1,
                        refines,
                    );
                }
                return;
            }
        }
        for &d in &cand.docs {
            doc_theme[d] = Some(node);
        }
        themes.push(Theme {
            topic: node,
            centroid,
            docs: cand.docs.clone(),
            users: cand.users.clone(),
            source_folders: cand.folders.clone(),
        });
    }
}

/// Most frequent name, ties broken lexicographically.
fn majority_name(names: &[String]) -> String {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for n in names {
        *counts.entry(n.as_str()).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(n, _)| n.to_string())
        .unwrap_or_else(|| "theme".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    /// Three users: two share a "music" interest (same term subspace),
    /// one has a private "orchids" niche.
    fn community() -> (Vec<SparseVec>, Vec<UserFolder>) {
        let mut docs = Vec::new();
        // Docs 0..4: music docs (terms 1,2).
        for j in 0..5u32 {
            docs.push(v(&[(1, 2.0), (2, 1.0 + 0.1 * j as f32)]));
        }
        // Docs 5..9: more music docs (same subspace).
        for j in 0..5u32 {
            docs.push(v(&[(1, 1.5), (2, 1.2 + 0.1 * j as f32)]));
        }
        // Docs 10..13: orchids (term 30,31).
        for j in 0..4u32 {
            docs.push(v(&[(30, 2.0), (31, 1.0 + 0.1 * j as f32)]));
        }
        let folders = vec![
            UserFolder {
                user: 1,
                name: "Music".into(),
                docs: vec![0, 1, 2, 3, 4],
            },
            UserFolder {
                user: 2,
                name: "Tunes".into(),
                docs: vec![5, 6, 7, 8, 9],
            },
            UserFolder {
                user: 3,
                name: "Orchids".into(),
                docs: vec![10, 11, 12, 13],
            },
        ];
        (docs, folders)
    }

    #[test]
    fn merges_shared_interests_keeps_niches() {
        let (docs, folders) = community();
        let themes = ThemeDiscovery::new(ThemeOptions::default()).run(&docs, &folders);
        assert_eq!(themes.merges, 1, "music folders merge once");
        // Two first-level themes: merged music + orchids niche.
        let first = themes.taxonomy.children(Taxonomy::ROOT);
        assert_eq!(first.len(), 2);
        // The music theme has both users.
        let music = themes
            .themes
            .iter()
            .find(|t| t.users.len() == 2)
            .expect("a two-user theme must exist");
        assert_eq!(music.docs.len(), 10);
        // Folder mapping: folders 0 and 1 land on the same node.
        assert_eq!(themes.folder_theme[0], themes.folder_theme[1]);
        assert_ne!(themes.folder_theme[0], themes.folder_theme[2]);
        themes.taxonomy.check_invariants().unwrap();
    }

    #[test]
    fn refines_an_incoherent_folder() {
        // One user dumped two unrelated topics into a single "Stuff" folder.
        let mut docs = Vec::new();
        for j in 0..6u32 {
            docs.push(v(&[(1, 2.0), (2, 0.5 + 0.05 * j as f32)]));
        }
        for j in 0..6u32 {
            docs.push(v(&[(50, 2.0), (51, 0.5 + 0.05 * j as f32)]));
        }
        let folders = vec![UserFolder {
            user: 1,
            name: "Stuff".into(),
            docs: (0..12).collect(),
        }];
        let themes = ThemeDiscovery::new(ThemeOptions::default()).run(&docs, &folders);
        assert!(themes.refines >= 1, "mixed folder must be refined");
        // Documents of the two subspaces land under different leaves.
        let t0 = themes.doc_theme[0].unwrap();
        let t6 = themes.doc_theme[6].unwrap();
        assert_ne!(t0, t6);
        // Both leaves share the "Stuff" parent.
        assert_eq!(themes.taxonomy.parent(t0), themes.taxonomy.parent(t6));
        themes.taxonomy.check_invariants().unwrap();
    }

    #[test]
    fn coarsens_tiny_themes() {
        let mut docs = Vec::new();
        for j in 0..6u32 {
            docs.push(v(&[(1, 2.0), (2, 0.5 + 0.1 * j as f32)]));
        }
        // A lone doc in a similar-but-not-identical subspace.
        docs.push(v(&[(2, 1.0), (3, 0.4)]));
        let folders = vec![
            UserFolder {
                user: 1,
                name: "Music".into(),
                docs: (0..6).collect(),
            },
            UserFolder {
                user: 2,
                name: "Stray".into(),
                docs: vec![6],
            },
        ];
        let opts = ThemeOptions {
            merge_threshold: 0.9,
            ..Default::default()
        };
        let themes = ThemeDiscovery::new(opts).run(&docs, &folders);
        assert_eq!(themes.coarsens, 1, "stray folder folds into its sibling");
        assert_eq!(themes.taxonomy.children(Taxonomy::ROOT).len(), 1);
        assert_eq!(themes.doc_theme[6], themes.doc_theme[0]);
    }

    #[test]
    fn profiles_and_similarity() {
        let (docs, folders) = community();
        let themes = ThemeDiscovery::new(ThemeOptions::default()).run(&docs, &folders);
        let u1 = themes.user_profile(&[0, 1, 2, 3, 4]);
        let u2 = themes.user_profile(&[5, 6, 7, 8, 9]);
        let u3 = themes.user_profile(&[10, 11, 12, 13]);
        let s12 = profile_similarity(&u1, &u2);
        let s13 = profile_similarity(&u1, &u3);
        assert!(s12 > 0.9, "shared-interest users similar, got {s12}");
        assert!(s13 < 0.5, "disjoint users dissimilar, got {s13}");
        // URL overlap would have said u1 and u2 are *unrelated* (no shared
        // docs) — the theme profile fixes exactly that.
        assert!(profile_similarity(&u1, &HashMap::new()) == 0.0);
    }

    #[test]
    fn assign_routes_new_docs_to_leaf_themes() {
        let (docs, folders) = community();
        let themes = ThemeDiscovery::new(ThemeOptions::default()).run(&docs, &folders);
        let new_music = v(&[(1, 1.0), (2, 1.0)]);
        let assigned = themes.assign(&new_music).unwrap();
        let music_node = themes.folder_theme[0];
        assert!(themes.taxonomy.is_ancestor_or_self(music_node, assigned));
    }

    #[test]
    fn empty_inputs() {
        let themes = ThemeDiscovery::new(ThemeOptions::default()).run(&[], &[]);
        assert!(themes.themes.is_empty());
        assert_eq!(themes.taxonomy.len(), 1);
    }
}
