//! Spherical k-means: cosine assignment, mean-of-unit-vectors centroids,
//! deterministic under a caller-provided seed. Used directly and as the
//! refinement pass of Buckshot Scatter/Gather.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use memex_text::vector::SparseVec;

/// k-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    pub k: usize,
    pub max_iters: usize,
    /// Keep only this many terms per centroid (Scatter/Gather's truncated
    /// profiles; 0 = no truncation).
    pub centroid_terms: usize,
    pub seed: u64,
}

impl KMeans {
    pub fn new(k: usize) -> KMeans {
        KMeans {
            k,
            max_iters: 20,
            centroid_terms: 64,
            seed: 0x5EED,
        }
    }

    /// Cluster `docs` (normalised internally). Seeds are random distinct
    /// documents unless `seeds` is given.
    pub fn run(&self, docs: &[SparseVec], seeds: Option<Vec<SparseVec>>) -> KMeansResult {
        let n = docs.len();
        let k = self.k.max(1).min(n.max(1));
        let mut normed: Vec<SparseVec> = docs
            .iter()
            .map(|d| {
                let mut v = d.clone();
                v.normalize();
                v
            })
            .collect();
        if n == 0 {
            return KMeansResult {
                labels: Vec::new(),
                centroids: Vec::new(),
                iterations: 0,
            };
        }
        let mut centroids: Vec<SparseVec> = match seeds {
            Some(s) if !s.is_empty() => {
                let mut s = s;
                for c in &mut s {
                    c.normalize();
                }
                s.truncate(k);
                s
            }
            _ => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(&mut rng);
                idx[..k].iter().map(|&i| normed[i].clone()).collect()
            }
        };
        let k = centroids.len();
        let mut labels = vec![0usize; n];
        let mut iterations = 0usize;
        for it in 0..self.max_iters {
            iterations = it + 1;
            // Assign.
            let mut changed = false;
            for (d, doc) in normed.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .map(|(c, cen)| (c, doc.dot(cen)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                if labels[d] != best {
                    labels[d] = best;
                    changed = true;
                }
            }
            if it > 0 && !changed {
                break;
            }
            // Re-estimate.
            let mut sums: Vec<SparseVec> = vec![SparseVec::new(); k];
            let mut counts = vec![0usize; k];
            for (d, doc) in normed.iter().enumerate() {
                sums[labels[d]].add_assign(doc);
                counts[labels[d]] += 1;
            }
            for (c, sum) in sums.iter_mut().enumerate() {
                if counts[c] == 0 {
                    // Empty cluster: reseed with the doc farthest from its
                    // centroid (deterministic: lowest dot wins).
                    let (worst, _) = normed
                        .iter()
                        .enumerate()
                        .map(|(d, doc)| (d, doc.dot(&centroids[labels[d]])))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .expect("n > 0");
                    *sum = normed[worst].clone();
                }
                sum.normalize();
                if self.centroid_terms > 0 {
                    sum.truncate_top(self.centroid_terms);
                    sum.normalize();
                }
            }
            centroids = sums;
        }
        // Normalised docs are no longer needed; free before returning.
        normed.clear();
        KMeansResult {
            labels,
            centroids,
            iterations,
        }
    }
}

/// k-means output.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    pub labels: Vec<usize>,
    pub centroids: Vec<SparseVec>,
    pub iterations: usize,
}

impl KMeansResult {
    /// Mean cosine of documents to their assigned centroid (cohesion).
    pub fn cohesion(&self, docs: &[SparseVec]) -> f32 {
        if docs.is_empty() {
            return 0.0;
        }
        let total: f32 = docs
            .iter()
            .zip(&self.labels)
            .map(|(d, &l)| {
                let mut v = d.clone();
                v.normalize();
                v.dot(&self.centroids[l])
            })
            .sum();
        total / docs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    fn two_blobs() -> (Vec<SparseVec>, Vec<usize>) {
        let mut docs = Vec::new();
        let mut truth = Vec::new();
        for i in 0..10u32 {
            if i < 5 {
                docs.push(v(&[(1, 2.0), (2, 1.0 + 0.1 * i as f32)]));
                truth.push(0);
            } else {
                docs.push(v(&[(10, 2.0), (11, 1.0 + 0.1 * i as f32)]));
                truth.push(1);
            }
        }
        (docs, truth)
    }

    #[test]
    fn separates_two_blobs() {
        let (docs, truth) = two_blobs();
        let result = KMeans::new(2).run(&docs, None);
        // Same partition up to label swap.
        let l = &result.labels;
        let consistent = truth
            .iter()
            .zip(l)
            .all(|(&t, &p)| p == l[0] && t == truth[0] || p != l[0] && t != truth[0]);
        assert!(consistent, "labels {l:?}");
        assert!(result.cohesion(&docs) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let (docs, _) = two_blobs();
        let a = KMeans::new(2).run(&docs, None);
        let b = KMeans::new(2).run(&docs, None);
        assert_eq!(a.labels, b.labels);
        let mut other = KMeans::new(2);
        other.seed = 999;
        let _ = other.run(&docs, None); // may differ, must not panic
    }

    #[test]
    fn explicit_seeds_are_respected() {
        let (docs, _) = two_blobs();
        let seeds = vec![docs[0].clone(), docs[9].clone()];
        let result = KMeans::new(2).run(&docs, Some(seeds));
        assert_eq!(result.labels[0], 0);
        assert_eq!(result.labels[9], 1);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let docs = vec![v(&[(1, 1.0)]), v(&[(2, 1.0)])];
        let result = KMeans::new(10).run(&docs, None);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let result = KMeans::new(3).run(&[], None);
        assert!(result.labels.is_empty());
        assert!(result.centroids.is_empty());
    }

    #[test]
    fn centroid_truncation_bounds_profile_size() {
        let (docs, _) = two_blobs();
        let mut km = KMeans::new(2);
        km.centroid_terms = 1;
        let result = km.run(&docs, None);
        assert!(result.centroids.iter().all(|c| c.len() <= 1));
    }
}
