//! Scatter/Gather (Cutting, Karger & Pedersen, paper ref \[6\]): cluster a
//! collection fast enough to *browse* it. The key to "constant
//! interaction-time" is seeding k-means from a small sample instead of
//! running HAC over everything:
//!
//! * **Buckshot** — HAC over a random sample of √(k·n) documents, use the
//!   resulting k centroids as k-means seeds: O(k·n) overall.
//! * **Fractionation** — repeatedly HAC fixed-size buckets down to a ρ
//!   fraction, treating merged groups as pseudo-documents, until k remain.
//!
//! The T3 experiment plots both against full HAC as n grows.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use memex_text::vector::SparseVec;
use memex_text::vocab::{TermId, Vocabulary};

use crate::hac::{hac_cut, Hac};
use crate::kmeans::{KMeans, KMeansResult};

/// Buckshot clustering: sample-seeded spherical k-means.
pub fn buckshot(docs: &[SparseVec], k: usize, seed: u64) -> KMeansResult {
    let n = docs.len();
    if n == 0 {
        return KMeans::new(k).run(docs, None);
    }
    let sample_size = (((k * n) as f64).sqrt().ceil() as usize).clamp(k.min(n), n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    let sample: Vec<SparseVec> = idx[..sample_size]
        .iter()
        .map(|&i| docs[i].clone())
        .collect();
    let labels = hac_cut(&sample, k);
    let seeds = centroids_of(&sample, &labels, k);
    let mut km = KMeans::new(k);
    km.seed = seed;
    km.run(docs, Some(seeds))
}

/// Fractionation clustering: bottom-up bucketed agglomeration to k seeds,
/// then one k-means pass.
///
/// Groups carry their mass (`(sum of unit vectors, count)`) between rounds
/// so the in-bucket group-average linkage stays exact over the original
/// documents; buckets are formed after sorting by dominant term (Cutting
/// et al.'s locality trick).
pub fn fractionation(
    docs: &[SparseVec],
    k: usize,
    bucket: usize,
    rho: f64,
    seed: u64,
) -> KMeansResult {
    let n = docs.len();
    if n == 0 {
        return KMeans::new(k).run(docs, None);
    }
    assert!(bucket >= 2 && (0.0..1.0).contains(&rho) && rho > 0.0);
    let mut pseudo: Vec<(SparseVec, usize)> = docs
        .iter()
        .map(|d| {
            let mut v = d.clone();
            v.normalize();
            (v, 1)
        })
        .collect();
    // Merge a labelled chunk of weighted groups into `target` groups.
    fn merge_groups(
        chunk: &[(SparseVec, usize)],
        labels: &[usize],
        target: usize,
    ) -> Vec<(SparseVec, usize)> {
        let mut out: Vec<(SparseVec, usize)> = vec![(SparseVec::new(), 0); target];
        for ((sum, size), &l) in chunk.iter().zip(labels) {
            if l < target {
                out[l].0.add_assign(sum);
                out[l].1 += size;
            }
        }
        out.retain(|(_, size)| *size > 0);
        out
    }
    while pseudo.len() > k {
        // Final round: one weighted HAC straight to k so we never undershoot.
        if pseudo.len() <= bucket || ((pseudo.len() as f64 * rho).ceil() as usize) < k {
            let labels = Hac::new_weighted(&pseudo).run().cut(k);
            pseudo = merge_groups(&pseudo, &labels, k);
            break;
        }
        // Locality: sort by dominant term so buckets are mostly-kindred.
        pseudo.sort_by_key(|(v, _)| {
            v.entries()
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|&(t, _)| t)
                .unwrap_or(u32::MAX)
        });
        let mut next: Vec<(SparseVec, usize)> =
            Vec::with_capacity((pseudo.len() as f64 * rho) as usize + 1);
        for chunk in pseudo.chunks(bucket) {
            let target = ((chunk.len() as f64 * rho).ceil() as usize).clamp(1, chunk.len());
            let labels = Hac::new_weighted(chunk).run().cut(target);
            next.extend(merge_groups(chunk, &labels, target));
        }
        if next.len() >= pseudo.len() {
            // No progress possible (tiny inputs): force-merge to k.
            let labels = Hac::new_weighted(&pseudo).run().cut(k);
            pseudo = merge_groups(&pseudo, &labels, k);
            break;
        }
        pseudo = next;
    }
    let seeds: Vec<SparseVec> = pseudo
        .into_iter()
        .map(|(mut sum, _)| {
            sum.normalize();
            sum
        })
        .collect();
    let mut km = KMeans::new(k);
    km.seed = seed;
    km.run(docs, Some(seeds))
}

/// Cluster centroids (unit-normalised) from a flat labelling.
fn centroids_of(docs: &[SparseVec], labels: &[usize], k: usize) -> Vec<SparseVec> {
    let mut sums = vec![SparseVec::new(); k];
    for (d, &l) in labels.iter().enumerate() {
        if l < k {
            let mut v = docs[d].clone();
            v.normalize();
            sums[l].add_assign(&v);
        }
    }
    sums.retain(|s| !s.is_empty());
    for s in &mut sums {
        s.normalize();
    }
    sums
}

/// An interactive Scatter/Gather session over a fixed document set: scatter
/// into k clusters with term summaries, gather a subset, re-scatter.
pub struct ScatterGather<'a> {
    docs: &'a [SparseVec],
    vocab: &'a Vocabulary,
    k: usize,
    seed: u64,
    /// Currently in-focus documents (indices into `docs`).
    focus: Vec<usize>,
}

/// One displayed cluster: member doc indices and summary terms.
#[derive(Debug, Clone)]
pub struct ClusterView {
    pub members: Vec<usize>,
    pub summary: Vec<String>,
}

impl<'a> ScatterGather<'a> {
    pub fn new(docs: &'a [SparseVec], vocab: &'a Vocabulary, k: usize, seed: u64) -> Self {
        ScatterGather {
            docs,
            vocab,
            k,
            seed,
            focus: (0..docs.len()).collect(),
        }
    }

    /// Documents currently in focus.
    pub fn focus_len(&self) -> usize {
        self.focus.len()
    }

    /// Scatter the focus set into k summarised clusters (Buckshot).
    pub fn scatter(&self) -> Vec<ClusterView> {
        let subset: Vec<SparseVec> = self.focus.iter().map(|&i| self.docs[i].clone()).collect();
        let result = buckshot(&subset, self.k.min(subset.len().max(1)), self.seed);
        let k = result.centroids.len();
        let mut views: Vec<ClusterView> = (0..k)
            .map(|_| ClusterView {
                members: Vec::new(),
                summary: Vec::new(),
            })
            .collect();
        for (local, &l) in result.labels.iter().enumerate() {
            views[l].members.push(self.focus[local]);
        }
        for (c, view) in views.iter_mut().enumerate() {
            view.summary = top_terms(&result.centroids[c], self.vocab, 5);
        }
        views.retain(|v| !v.members.is_empty());
        views
    }

    /// Gather: narrow the focus to the union of the chosen clusters.
    pub fn gather(&mut self, chosen: &[&ClusterView]) {
        let mut focus: Vec<usize> = chosen
            .iter()
            .flat_map(|v| v.members.iter().copied())
            .collect();
        focus.sort_unstable();
        focus.dedup();
        if !focus.is_empty() {
            self.focus = focus;
        }
    }

    /// Reset the focus to the full collection.
    pub fn reset(&mut self) {
        self.focus = (0..self.docs.len()).collect();
    }
}

/// Highest-weight vocabulary terms of a centroid.
pub fn top_terms(centroid: &SparseVec, vocab: &Vocabulary, k: usize) -> Vec<String> {
    let mut entries: Vec<(TermId, f32)> = centroid.entries().to_vec();
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    entries
        .into_iter()
        .take(k)
        .filter_map(|(t, _)| vocab.term(t).map(str::to_string))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build m separable groups of docs plus the vocabulary naming them.
    fn groups(m: usize, per: usize) -> (Vec<SparseVec>, Vec<usize>, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let mut docs = Vec::new();
        let mut truth = Vec::new();
        for g in 0..m {
            let anchor = vocab.intern(&format!("topic{g}"));
            let extra = vocab.intern(&format!("aux{g}"));
            for j in 0..per {
                let w = 1.0 + (j % 3) as f32 * 0.1;
                docs.push(SparseVec::from_pairs(vec![(anchor, 2.0), (extra, w)]));
                truth.push(g);
            }
        }
        (docs, truth, vocab)
    }

    fn purity(labels: &[usize], truth: &[usize]) -> f64 {
        let k = labels.iter().max().map(|&m| m + 1).unwrap_or(0);
        let mut correct = 0usize;
        for c in 0..k {
            let mut counts = std::collections::HashMap::new();
            for (l, t) in labels.iter().zip(truth) {
                if *l == c {
                    *counts.entry(*t).or_insert(0usize) += 1;
                }
            }
            correct += counts.values().max().copied().unwrap_or(0);
        }
        correct as f64 / labels.len() as f64
    }

    #[test]
    fn buckshot_recovers_groups() {
        let (docs, truth, _) = groups(4, 20);
        let result = buckshot(&docs, 4, 7);
        assert!(purity(&result.labels, &truth) > 0.9, "purity too low");
    }

    #[test]
    fn fractionation_recovers_groups() {
        let (docs, truth, _) = groups(3, 15);
        let result = fractionation(&docs, 3, 10, 0.3, 7);
        assert!(purity(&result.labels, &truth) > 0.9);
    }

    #[test]
    fn scatter_summaries_name_the_topics() {
        let (docs, _, vocab) = groups(3, 10);
        let sg = ScatterGather::new(&docs, &vocab, 3, 1);
        let views = sg.scatter();
        assert_eq!(views.len(), 3);
        let mut seen_anchors = 0;
        for v in &views {
            assert!(!v.members.is_empty());
            if v.summary.iter().any(|s| s.starts_with("topic")) {
                seen_anchors += 1;
            }
        }
        assert_eq!(
            seen_anchors, 3,
            "each cluster summary should surface its anchor term"
        );
    }

    #[test]
    fn gather_narrows_then_rescatters() {
        let (docs, truth, vocab) = groups(3, 10);
        let mut sg = ScatterGather::new(&docs, &vocab, 3, 1);
        let views = sg.scatter();
        // Pick the cluster holding doc 0.
        let chosen: Vec<&ClusterView> = views.iter().filter(|v| v.members.contains(&0)).collect();
        sg.gather(&chosen);
        assert!(sg.focus_len() < docs.len());
        let inner = sg.scatter();
        // Re-scattering the gathered subset still covers only group 0 docs.
        for v in &inner {
            for &m in &v.members {
                assert_eq!(truth[m], truth[0]);
            }
        }
        sg.reset();
        assert_eq!(sg.focus_len(), docs.len());
    }

    #[test]
    fn tiny_collections_do_not_break() {
        let (docs, _, _) = groups(1, 2);
        let r = buckshot(&docs, 5, 3);
        assert_eq!(r.labels.len(), 2);
        let r = fractionation(&docs, 1, 2, 0.5, 3);
        assert_eq!(r.labels.len(), 2);
        let r = buckshot(&[], 3, 3);
        assert!(r.labels.is_empty());
    }
}
