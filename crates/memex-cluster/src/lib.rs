//! # memex-cluster — clustering and theme discovery
//!
//! The paper's §4 unsupervised stack:
//!
//! * [`hac`] — bottom-up hierarchical agglomerative clustering with exact
//!   group-average cosine linkage ("for clustering we started with a
//!   bottom-up hierarchical agglomerative approach", ref \[6\]);
//! * [`kmeans`] — spherical k-means, the workhorse refinement step;
//! * [`scatter`] — Scatter/Gather with Buckshot and Fractionation seeding
//!   (Cutting, Karger & Pedersen's "constant interaction-time" browsing,
//!   ref \[6\]) — the T3 experiment contrasts its near-linear cost against
//!   full HAC's quadratic cost;
//! * [`themes`] — the paper's *new* theme-discovery formulation (Fig. 4):
//!   consolidate all users' folders into a community topic taxonomy,
//!   "refining topics where needed and coarsening where possible", driven
//!   by an MDL-style description cost ([`quality`]).

pub mod hac;
pub mod kmeans;
pub mod quality;
pub mod scatter;
pub mod themes;

pub use hac::{Dendrogram, Hac};
pub use kmeans::{KMeans, KMeansResult};
pub use scatter::{buckshot, fractionation, ScatterGather};
pub use themes::{ThemeDiscovery, ThemeOptions, Themes, UserFolder};
