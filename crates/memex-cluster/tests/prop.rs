//! Property tests for the clustering substrate: HAC cuts are proper
//! partitions, k-means output is well-formed and deterministic, quality
//! metrics stay in range, and the MDL cost behaves monotonically in alpha.

use proptest::prelude::*;

use memex_cluster::hac::{hac_cut, Hac};
use memex_cluster::kmeans::KMeans;
use memex_cluster::quality::{nmi, partition_cost, purity};
use memex_cluster::scatter::buckshot;
use memex_text::vector::SparseVec;

fn docs_strategy(max_docs: usize) -> impl Strategy<Value = Vec<SparseVec>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..24, 0.1f32..5.0), 1..6).prop_map(SparseVec::from_pairs),
        1..max_docs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cutting a dendrogram at k yields a dense labelling with exactly
    /// min(k, n) clusters, deterministic across runs.
    #[test]
    fn hac_cut_is_a_proper_partition(docs in docs_strategy(24), k in 1usize..10) {
        let labels = hac_cut(&docs, k);
        prop_assert_eq!(labels.len(), docs.len());
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), k.min(docs.len()));
        // Labels are dense 0..m.
        prop_assert!(distinct.iter().all(|&l| l < distinct.len()));
        // Deterministic.
        prop_assert_eq!(hac_cut(&docs, k), labels);
    }

    /// Coarser cuts refine: merging never splits an existing cluster —
    /// if two docs share a label at k clusters they still do at k-1.
    #[test]
    fn hac_cuts_are_nested(docs in docs_strategy(20), k in 2usize..8) {
        let d = Hac::new(&docs).run();
        let fine = d.cut(k);
        let coarse = d.cut(k - 1);
        for i in 0..docs.len() {
            for j in 0..docs.len() {
                if fine[i] == fine[j] {
                    prop_assert_eq!(coarse[i], coarse[j], "coarsening split {},{}", i, j);
                }
            }
        }
    }

    /// k-means output shape and determinism.
    #[test]
    fn kmeans_wellformed(docs in docs_strategy(24), k in 1usize..8) {
        let result = KMeans::new(k).run(&docs, None);
        prop_assert_eq!(result.labels.len(), docs.len());
        let kk = result.centroids.len();
        prop_assert!(kk <= k.max(1));
        prop_assert!(result.labels.iter().all(|&l| l < kk));
        let again = KMeans::new(k).run(&docs, None);
        prop_assert_eq!(result.labels, again.labels);
        // Centroids are unit or empty.
        for c in &result.centroids {
            let n = c.norm();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4);
        }
    }

    /// Buckshot also yields a proper labelling.
    #[test]
    fn buckshot_wellformed(docs in docs_strategy(24), k in 1usize..6, seed in any::<u64>()) {
        let result = buckshot(&docs, k, seed);
        prop_assert_eq!(result.labels.len(), docs.len());
        let kk = result.centroids.len().max(1);
        prop_assert!(result.labels.iter().all(|&l| l < kk));
    }

    /// Purity and NMI live in [0, 1]; purity of the identity labelling is 1.
    #[test]
    fn quality_metrics_bounded(
        labels in proptest::collection::vec(0usize..5, 1..40),
        truth in proptest::collection::vec(0usize..5, 1..40),
    ) {
        let n = labels.len().min(truth.len());
        let labels = &labels[..n];
        let truth = &truth[..n];
        let p = purity(labels, truth);
        prop_assert!((0.0..=1.0).contains(&p));
        let m = nmi(labels, truth);
        prop_assert!((0.0..=1.0).contains(&m));
        prop_assert_eq!(purity(truth, truth), 1.0);
        let self_nmi = nmi(truth, truth);
        prop_assert!(self_nmi > 0.999 || truth.iter().all(|&t| t == truth[0]));
    }

    /// Description cost grows linearly in alpha with fixed partition.
    #[test]
    fn cost_monotone_in_alpha(docs in docs_strategy(16), labels_seed in any::<u64>()) {
        let k = 3usize;
        let labels: Vec<usize> =
            (0..docs.len()).map(|i| ((i as u64).wrapping_mul(labels_seed | 1) % k as u64) as usize).collect();
        let c1 = partition_cost(&docs, &labels, 0.5);
        let c2 = partition_cost(&docs, &labels, 1.5);
        prop_assert!(c2 >= c1);
        let clusters = labels.iter().collect::<std::collections::HashSet<_>>().len() as f64;
        prop_assert!((c2 - c1 - clusters).abs() < 1e-6, "slope must be #clusters");
    }
}
