//! # memex-graph — hypertext and trail graphs
//!
//! The Memex server keeps two graph-shaped structures:
//!
//! * the **web graph** of pages and hyperlinks ([`graph::WebGraph`]), over
//!   which the resource-discovery demon runs link analysis
//!   ([`hits`], [`pagerank`]) and bounded neighbourhood expansion
//!   ([`neighborhood`]);
//! * the **trail graph** of timestamped page visits ([`trail`]), the raw
//!   material of the paper's trail tab (Fig. 2): "selecting a folder
//!   replays the hypertext graph of recent pages publicly surfed by the
//!   community which are most likely to belong to the selected topic".

pub mod graph;
pub mod hits;
pub mod neighborhood;
pub mod pagerank;
pub mod related;
pub mod trail;

pub use graph::{NodeId, WebGraph};
pub use trail::{TrailGraph, Visit};
