//! Kleinberg's HITS on an induced subgraph — the link-analysis half of the
//! paper's resource discovery: "automatic resource discovery is undertaken
//! by demons to update users about recent and/or authoritative sources"
//! (§4, following ref \[5\] which ranks with hubs/authorities).

use std::collections::HashMap;

use crate::graph::{NodeId, WebGraph};

/// Hub and authority scores for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitsScore {
    pub hub: f64,
    pub authority: f64,
}

/// Run HITS restricted to `nodes` (the "base set"). Returns per-node
/// scores, L2-normalised, after at most `max_iters` iterations or until the
/// score change drops below `tol`.
pub fn hits(
    graph: &WebGraph,
    nodes: &[NodeId],
    max_iters: usize,
    tol: f64,
) -> HashMap<NodeId, HitsScore> {
    let (nodes, edges) = graph.induced_subgraph(nodes);
    let n = nodes.len();
    if n == 0 {
        return HashMap::new();
    }
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // Edge list in dense indices.
    let dense: Vec<(usize, usize)> = edges.iter().map(|&(u, v)| (index[&u], index[&v])).collect();
    let mut hub = vec![1.0f64; n];
    let mut auth = vec![1.0f64; n];
    for _ in 0..max_iters {
        let mut new_auth = vec![0.0f64; n];
        for &(u, v) in &dense {
            new_auth[v] += hub[u];
        }
        normalize(&mut new_auth);
        let mut new_hub = vec![0.0f64; n];
        for &(u, v) in &dense {
            new_hub[u] += new_auth[v];
        }
        normalize(&mut new_hub);
        let delta: f64 = new_hub
            .iter()
            .zip(&hub)
            .chain(new_auth.iter().zip(&auth))
            .map(|(a, b)| (a - b).abs())
            .sum();
        hub = new_hub;
        auth = new_auth;
        if delta < tol {
            break;
        }
    }
    nodes
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            (
                v,
                HitsScore {
                    hub: hub[i],
                    authority: auth[i],
                },
            )
        })
        .collect()
}

/// Top-`k` authorities within `nodes`, descending.
pub fn top_authorities(graph: &WebGraph, nodes: &[NodeId], k: usize) -> Vec<(NodeId, f64)> {
    let scores = hits(graph, nodes, 50, 1e-9);
    let mut v: Vec<(NodeId, f64)> = scores.into_iter().map(|(n, s)| (n, s.authority)).collect();
    v.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    v.truncate(k);
    v
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star: hubs 1..=4 all point at node 0 -> node 0 is the authority.
    #[test]
    fn star_authority() {
        let mut g = WebGraph::new();
        for hub_node in 1..=4u32 {
            g.add_edge(hub_node, 0);
        }
        let nodes: Vec<NodeId> = (0..5).collect();
        let scores = hits(&g, &nodes, 50, 1e-12);
        assert!(scores[&0].authority > 0.99);
        for h in 1..=4u32 {
            assert!(scores[&h].hub > 0.49, "hubs share hub mass");
            assert!(scores[&h].authority < 1e-6);
        }
    }

    /// A bipartite hub/authority community outranks a stray chain.
    #[test]
    fn community_beats_chain() {
        let mut g = WebGraph::new();
        // Dense community: hubs 10,11,12 each cite authorities 20,21.
        for h in 10..=12u32 {
            for a in 20..=21u32 {
                g.add_edge(h, a);
            }
        }
        // Stray chain.
        g.add_edge(30, 31);
        let nodes: Vec<NodeId> = vec![10, 11, 12, 20, 21, 30, 31];
        let top = top_authorities(&g, &nodes, 2);
        let top_ids: Vec<NodeId> = top.iter().map(|&(n, _)| n).collect();
        assert!(top_ids.contains(&20) && top_ids.contains(&21));
    }

    #[test]
    fn empty_and_edgeless_inputs() {
        let g = WebGraph::new();
        assert!(hits(&g, &[], 10, 1e-6).is_empty());
        let mut g = WebGraph::new();
        g.ensure_node(3);
        let scores = hits(&g, &[0, 1], 10, 1e-6);
        assert_eq!(scores.len(), 2, "nodes without edges still get scores");
    }

    #[test]
    fn scores_only_use_induced_edges() {
        let mut g = WebGraph::new();
        g.add_edge(1, 0);
        g.add_edge(2, 0); // 2 outside the base set
        let scores = hits(&g, &[0, 1], 50, 1e-12);
        assert!(scores[&0].authority > 0.99);
        assert!(!scores.contains_key(&2));
    }
}
