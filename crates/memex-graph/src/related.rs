//! Link-structure page similarity: **co-citation** (two pages are related
//! when the same pages link to both — Small, 1973) and **bibliographic
//! coupling** (two pages are related when they link to the same pages —
//! Kessler, 1963). The classic link-only "related pages" primitives of the
//! era (used by Dean & Henzinger's *What is this page related to?*), which
//! complement Memex's text similarity for pages with little text.

use std::collections::HashMap;

use crate::graph::{NodeId, WebGraph};

/// Co-citation count between `a` and `b`: |in(a) ∩ in(b)| (sorted-merge).
pub fn cocitation(graph: &WebGraph, a: NodeId, b: NodeId) -> usize {
    sorted_intersection_len(graph.in_links(a), graph.in_links(b))
}

/// Bibliographic coupling between `a` and `b`: |out(a) ∩ out(b)|.
pub fn coupling(graph: &WebGraph, a: NodeId, b: NodeId) -> usize {
    sorted_intersection_len(graph.out_links(a), graph.out_links(b))
}

/// Normalised link similarity in `[0, 1]`: the cosine-style combination
/// `(cocitation + coupling) / sqrt(deg(a) * deg(b))` over total degrees.
pub fn link_similarity(graph: &WebGraph, a: NodeId, b: NodeId) -> f64 {
    if a == b {
        return 1.0;
    }
    let overlap = (cocitation(graph, a, b) + coupling(graph, a, b)) as f64;
    let da = (graph.in_degree(a) + graph.out_degree(a)) as f64;
    let db = (graph.in_degree(b) + graph.out_degree(b)) as f64;
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        (overlap / (da * db).sqrt()).min(1.0)
    }
}

/// The `k` pages most related to `page` by link structure, descending.
/// Only pages sharing at least one citing/cited page are candidates, so
/// the scan touches a 2-hop neighbourhood rather than the whole graph.
pub fn related_pages(graph: &WebGraph, page: NodeId, k: usize) -> Vec<(NodeId, f64)> {
    let mut candidate_overlap: HashMap<NodeId, usize> = HashMap::new();
    // Co-citation candidates: other out-links of my in-linkers.
    for &citer in graph.in_links(page) {
        for &sibling in graph.out_links(citer) {
            if sibling != page {
                *candidate_overlap.entry(sibling).or_insert(0) += 1;
            }
        }
    }
    // Coupling candidates: other in-linkers of my out-links.
    for &cited in graph.out_links(page) {
        for &sibling in graph.in_links(cited) {
            if sibling != page {
                *candidate_overlap.entry(sibling).or_insert(0) += 1;
            }
        }
    }
    let mut scored: Vec<(NodeId, f64)> = candidate_overlap
        .into_keys()
        .map(|c| (c, link_similarity(graph, page, c)))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

fn sorted_intersection_len(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hubs 10 and 11 both cite pages 0,1,2; page 3 is cited only by 10;
    /// page 9 is isolated.
    fn fixture() -> WebGraph {
        let mut g = WebGraph::new();
        for hub in [10u32, 11] {
            for target in [0u32, 1, 2] {
                g.add_edge(hub, target);
            }
        }
        g.add_edge(10, 3);
        g.ensure_node(9);
        g
    }

    #[test]
    fn cocitation_counts_shared_citers() {
        let g = fixture();
        assert_eq!(cocitation(&g, 0, 1), 2, "both hubs cite 0 and 1");
        assert_eq!(cocitation(&g, 0, 3), 1, "only hub 10 cites both");
        assert_eq!(cocitation(&g, 0, 9), 0);
    }

    #[test]
    fn coupling_counts_shared_targets() {
        let g = fixture();
        assert_eq!(coupling(&g, 10, 11), 3);
        assert_eq!(coupling(&g, 10, 0), 0);
    }

    #[test]
    fn similarity_bounds_and_identity() {
        let g = fixture();
        assert_eq!(link_similarity(&g, 0, 0), 1.0);
        let s = link_similarity(&g, 0, 1);
        assert!(s > 0.0 && s <= 1.0);
        assert_eq!(
            link_similarity(&g, 0, 9),
            0.0,
            "isolated page relates to nothing"
        );
        // More shared citers => more similar.
        assert!(link_similarity(&g, 0, 1) > link_similarity(&g, 0, 3));
    }

    #[test]
    fn related_pages_ranks_siblings() {
        let g = fixture();
        let related = related_pages(&g, 0, 5);
        assert!(!related.is_empty());
        let ids: Vec<u32> = related.iter().map(|&(n, _)| n).collect();
        assert!(ids.contains(&1) && ids.contains(&2));
        // 1 and 2 (two shared citers) outrank 3 (one shared citer).
        let pos = |id: u32| ids.iter().position(|&x| x == id).unwrap();
        assert!(pos(1) < pos(3));
        assert!(!ids.contains(&0), "a page is not related to itself");
        assert!(!ids.contains(&9));
        // Symmetry of the underlying measure.
        assert!((link_similarity(&g, 0, 1) - link_similarity(&g, 1, 0)).abs() < 1e-12);
    }

    #[test]
    fn hubs_relate_by_coupling() {
        let g = fixture();
        let related = related_pages(&g, 10, 3);
        assert_eq!(related[0].0, 11, "the co-citing hub is the closest page");
    }
}
