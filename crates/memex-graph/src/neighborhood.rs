//! Bounded-radius neighbourhood expansion — "explore a limited radius
//! neighborhood and draw clickable graphs" (§5, the Mapuccino/Fetuccino
//! comparison) and the base-set construction for HITS.

use std::collections::VecDeque;

use crate::graph::{NodeId, WebGraph};

/// Direction of expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
    Both,
}

/// BFS from `seeds` up to `radius` hops, following `direction` links,
/// visiting at most `max_nodes` nodes. Returns `(node, distance)` pairs in
/// BFS order (seeds first, distance 0).
pub fn expand(
    graph: &WebGraph,
    seeds: &[NodeId],
    radius: usize,
    direction: Direction,
    max_nodes: usize,
) -> Vec<(NodeId, usize)> {
    let n = graph.num_nodes();
    let mut dist: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    for &s in seeds {
        if (s as usize) < n && dist[s as usize].is_none() {
            dist[s as usize] = Some(0);
            queue.push_back(s);
            out.push((s, 0));
            if out.len() >= max_nodes {
                return out;
            }
        }
    }
    while let Some(u) = queue.pop_front() {
        // Queued nodes always have a distance; skip defensively instead
        // of panicking on the read path if that invariant ever breaks.
        let Some(d) = dist.get(u as usize).copied().flatten() else {
            continue;
        };
        if d >= radius {
            continue;
        }
        let nexts: Box<dyn Iterator<Item = NodeId> + '_> = match direction {
            Direction::Forward => Box::new(graph.out_links(u).iter().copied()),
            Direction::Backward => Box::new(graph.in_links(u).iter().copied()),
            Direction::Both => Box::new(
                graph
                    .out_links(u)
                    .iter()
                    .copied()
                    .chain(graph.in_links(u).iter().copied()),
            ),
        };
        for v in nexts {
            if dist[v as usize].is_none() {
                dist[v as usize] = Some(d + 1);
                queue.push_back(v);
                out.push((v, d + 1));
                if out.len() >= max_nodes {
                    return out;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u32) -> WebGraph {
        let mut g = WebGraph::new();
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn forward_radius_limits_depth() {
        let g = chain(10);
        let hits = expand(&g, &[0], 3, Direction::Forward, usize::MAX);
        assert_eq!(hits, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn backward_follows_in_links() {
        let g = chain(10);
        let hits = expand(&g, &[5], 2, Direction::Backward, usize::MAX);
        assert_eq!(hits, vec![(5, 0), (4, 1), (3, 2)]);
    }

    #[test]
    fn both_directions_union() {
        let g = chain(10);
        let hits = expand(&g, &[5], 1, Direction::Both, usize::MAX);
        let nodes: Vec<NodeId> = hits.iter().map(|&(n, _)| n).collect();
        assert_eq!(nodes, vec![5, 6, 4]);
    }

    #[test]
    fn node_budget_respected() {
        let g = chain(100);
        let hits = expand(&g, &[0], 99, Direction::Forward, 5);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn duplicate_seeds_and_unknown_nodes() {
        let g = chain(3);
        let hits = expand(&g, &[0, 0, 99], 1, Direction::Forward, usize::MAX);
        assert_eq!(hits, vec![(0, 0), (1, 1)]);
    }
}
