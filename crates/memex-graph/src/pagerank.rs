//! Power-iteration PageRank with damping and dangling-mass redistribution —
//! used to rank "popular pages in or near my community's recent trail
//! graph" (§1's third motivating question).

use crate::graph::WebGraph;

/// PageRank options.
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    pub damping: f64,
    pub max_iters: usize,
    pub tol: f64,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            damping: 0.85,
            max_iters: 100,
            tol: 1e-10,
        }
    }
}

/// PageRank over the whole graph; returns one score per node id, summing
/// to 1 (empty graph gives an empty vector).
pub fn pagerank(graph: &WebGraph, opts: PageRankOptions) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    for _ in 0..opts.max_iters {
        let mut next = vec![(1.0 - opts.damping) * uniform; n];
        let mut dangling = 0.0f64;
        for (u, &ru) in rank.iter().enumerate() {
            let outs = graph.out_links(u as u32);
            if outs.is_empty() {
                dangling += ru;
            } else {
                let share = opts.damping * ru / outs.len() as f64;
                for &v in outs {
                    next[v as usize] += share;
                }
            }
        }
        // Dangling nodes teleport uniformly.
        let spread = opts.damping * dangling * uniform;
        for x in &mut next {
            *x += spread;
        }
        let delta: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < opts.tol {
            break;
        }
    }
    rank
}

/// Personalised PageRank: teleport only to `seeds` — ranks pages "near"
/// a user's trail set.
pub fn personalized_pagerank(graph: &WebGraph, seeds: &[u32], opts: PageRankOptions) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 || seeds.is_empty() {
        return vec![0.0; n];
    }
    let seed_mass = 1.0 / seeds.len() as f64;
    let mut teleport = vec![0.0f64; n];
    for &s in seeds {
        if (s as usize) < n {
            teleport[s as usize] += seed_mass;
        }
    }
    let mut rank = teleport.clone();
    for _ in 0..opts.max_iters {
        let mut next: Vec<f64> = teleport.iter().map(|&t| (1.0 - opts.damping) * t).collect();
        let mut dangling = 0.0f64;
        for (u, &ru) in rank.iter().enumerate() {
            let outs = graph.out_links(u as u32);
            if outs.is_empty() {
                dangling += ru;
            } else {
                let share = opts.damping * ru / outs.len() as f64;
                for &v in outs {
                    next[v as usize] += share;
                }
            }
        }
        for (x, &t) in next.iter_mut().zip(&teleport) {
            *x += opts.damping * dangling * t;
        }
        let delta: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < opts.tol {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_sum_to_one() {
        let mut g = WebGraph::new();
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 0); // 3 is dangling-free, 0 gains
        let r = pagerank(&g, PageRankOptions::default());
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn popular_page_outranks_others() {
        let mut g = WebGraph::new();
        for u in 1..=9u32 {
            g.add_edge(u, 0);
        }
        // give node 0 an outlink so it isn't purely dangling
        g.add_edge(0, 1);
        let r = pagerank(&g, PageRankOptions::default());
        let best = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0);
    }

    #[test]
    fn dangling_mass_is_conserved() {
        let mut g = WebGraph::new();
        g.add_edge(0, 1); // node 1 dangles
        let r = pagerank(&g, PageRankOptions::default());
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(r[1] > r[0], "sink accumulates");
    }

    #[test]
    fn personalized_concentrates_near_seeds() {
        let mut g = WebGraph::new();
        // Two disjoint triangles.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(10, 11);
        g.add_edge(11, 12);
        g.add_edge(12, 10);
        let r = personalized_pagerank(&g, &[0], PageRankOptions::default());
        let near: f64 = r[0] + r[1] + r[2];
        let far: f64 = r[10] + r[11] + r[12];
        assert!(near > 0.99);
        assert!(far < 1e-6);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = WebGraph::new();
        assert!(pagerank(&g, PageRankOptions::default()).is_empty());
        assert!(personalized_pagerank(&g, &[], PageRankOptions::default()).is_empty());
    }
}
