//! Trail graphs: the timestamped record of who visited what, and the
//! topical *context replay* behind the paper's trail tab (Fig. 2) —
//! "selecting a folder replays the hypertext graph of recent pages publicly
//! surfed by the community which are most likely to belong to the selected
//! topic, and thus recreates the user's browsing context."

use std::collections::HashMap;

use crate::graph::NodeId;

/// One browsing event. Times are logical milliseconds (the simulator's
/// clock); `referrer` is the page whose link was followed, when known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    pub user: u32,
    pub session: u32,
    pub page: NodeId,
    pub time: u64,
    pub referrer: Option<NodeId>,
    /// False for private-mode visits: they replay only for their owner.
    pub public: bool,
}

/// A node of a replayed context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextNode {
    pub page: NodeId,
    pub visit_count: u32,
    pub last_time: u64,
}

/// The replayed topical browsing context: a small hypertext graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrailContext {
    /// Pages, most-recently-visited first.
    pub nodes: Vec<ContextNode>,
    /// Traversed links among those pages, with traversal counts.
    pub edges: Vec<(NodeId, NodeId, u32)>,
}

/// Append-only archive of visits with trail-graph queries.
#[derive(Debug, Clone, Default)]
pub struct TrailGraph {
    visits: Vec<Visit>,
}

impl TrailGraph {
    pub fn new() -> TrailGraph {
        TrailGraph::default()
    }

    /// Record a visit. Visits may arrive slightly out of order (the paper's
    /// demons are asynchronous); queries sort as needed.
    pub fn record(&mut self, visit: Visit) {
        self.visits.push(visit);
    }

    pub fn len(&self) -> usize {
        self.visits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }

    pub fn visits(&self) -> &[Visit] {
        &self.visits
    }

    /// The visits of one user, grouped by session (in first-seen order).
    pub fn user_sessions(&self, user: u32) -> Vec<Vec<Visit>> {
        let mut order: Vec<u32> = Vec::new();
        let mut map: HashMap<u32, Vec<Visit>> = HashMap::new();
        for v in self.visits.iter().filter(|v| v.user == user) {
            if !map.contains_key(&v.session) {
                order.push(v.session);
            }
            map.entry(v.session).or_default().push(*v);
        }
        order
            .into_iter()
            .map(|s| map.remove(&s).expect("collected above"))
            .collect()
    }

    /// Most recent visit satisfying `pred` on the page — powers "what was
    /// the URL I visited about six months back regarding X" once the topic
    /// classifier supplies `pred`.
    pub fn last_visit_where<F: Fn(&Visit) -> bool>(&self, pred: F) -> Option<Visit> {
        self.visits
            .iter()
            .filter(|v| pred(v))
            .max_by_key(|v| v.time)
            .copied()
    }

    /// Replay the recent topical context (Fig. 2).
    ///
    /// * `on_topic` — the classifier's verdict for a page;
    /// * `viewer` — private visits of other users are excluded;
    /// * `since` — only visits at/after this time;
    /// * `max_pages` — cap on replayed pages (most recent win).
    pub fn replay_context<F: Fn(NodeId) -> bool>(
        &self,
        on_topic: F,
        viewer: u32,
        since: u64,
        max_pages: usize,
    ) -> TrailContext {
        // Aggregate visible on-topic visits per page.
        let mut agg: HashMap<NodeId, ContextNode> = HashMap::new();
        for v in &self.visits {
            if v.time < since || !(v.public || v.user == viewer) || !on_topic(v.page) {
                continue;
            }
            let e = agg.entry(v.page).or_insert(ContextNode {
                page: v.page,
                visit_count: 0,
                last_time: 0,
            });
            e.visit_count += 1;
            e.last_time = e.last_time.max(v.time);
        }
        let mut nodes: Vec<ContextNode> = agg.values().copied().collect();
        nodes.sort_by(|a, b| b.last_time.cmp(&a.last_time).then(a.page.cmp(&b.page)));
        nodes.truncate(max_pages);
        let kept: std::collections::HashSet<NodeId> = nodes.iter().map(|n| n.page).collect();
        // Traversed edges among kept pages.
        let mut edge_count: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        for v in &self.visits {
            if v.time < since || !(v.public || v.user == viewer) {
                continue;
            }
            if let Some(r) = v.referrer {
                if kept.contains(&r) && kept.contains(&v.page) && r != v.page {
                    *edge_count.entry((r, v.page)).or_insert(0) += 1;
                }
            }
        }
        let mut edges: Vec<(NodeId, NodeId, u32)> = edge_count
            .into_iter()
            .map(|((a, b), c)| (a, b, c))
            .collect();
        edges.sort_unstable();
        TrailContext { nodes, edges }
    }

    /// Distinct pages visited by `user` (optionally only after `since`).
    pub fn user_pages(&self, user: u32, since: u64) -> Vec<NodeId> {
        let mut pages: Vec<NodeId> = self
            .visits
            .iter()
            .filter(|v| v.user == user && v.time >= since)
            .map(|v| v.page)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Total visits per page across the (public) community — "popular
    /// pages in or near my community's recent trail graph".
    pub fn popularity(&self, since: u64) -> HashMap<NodeId, u32> {
        let mut out = HashMap::new();
        for v in self.visits.iter().filter(|v| v.public && v.time >= since) {
            *out.entry(v.page).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(user: u32, session: u32, page: NodeId, time: u64, referrer: Option<NodeId>) -> Visit {
        Visit {
            user,
            session,
            page,
            time,
            referrer,
            public: true,
        }
    }

    #[test]
    fn sessions_group_in_order() {
        let mut t = TrailGraph::new();
        t.record(v(1, 10, 100, 1, None));
        t.record(v(1, 10, 101, 2, Some(100)));
        t.record(v(1, 11, 200, 3, None));
        t.record(v(2, 99, 300, 4, None));
        let sessions = t.user_sessions(1);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].len(), 2);
        assert_eq!(sessions[1][0].page, 200);
        assert!(t.user_sessions(3).is_empty());
    }

    #[test]
    fn replay_filters_topic_time_and_privacy() {
        let mut t = TrailGraph::new();
        // Music pages: 1,2,3. Other: 50.
        t.record(v(1, 0, 1, 10, None));
        t.record(v(1, 0, 2, 11, Some(1)));
        t.record(v(2, 0, 3, 12, Some(2)));
        t.record(v(2, 0, 50, 13, Some(3)));
        t.record(Visit {
            user: 3,
            session: 0,
            page: 2,
            time: 14,
            referrer: None,
            public: false,
        });
        let music = |p: NodeId| p <= 3;
        let ctx = t.replay_context(music, 1, 0, 10);
        let pages: Vec<NodeId> = ctx.nodes.iter().map(|n| n.page).collect();
        assert_eq!(pages, vec![3, 2, 1], "most recent first");
        assert_eq!(
            ctx.edges,
            vec![(1, 2, 1), (2, 3, 1)],
            "only on-topic traversals kept"
        );
        // Private visit of user 3 contributed nothing for viewer 1...
        assert_eq!(
            ctx.nodes.iter().find(|n| n.page == 2).unwrap().visit_count,
            1
        );
        // ...but does for its owner.
        let ctx3 = t.replay_context(music, 3, 0, 10);
        assert_eq!(
            ctx3.nodes.iter().find(|n| n.page == 2).unwrap().visit_count,
            2
        );
        // Time filter.
        let recent = t.replay_context(music, 1, 12, 10);
        assert_eq!(recent.nodes.len(), 1);
    }

    #[test]
    fn replay_caps_pages_keeping_most_recent() {
        let mut t = TrailGraph::new();
        for i in 0..20u32 {
            t.record(v(1, 0, i, u64::from(i), None));
        }
        let ctx = t.replay_context(|_| true, 1, 0, 5);
        assert_eq!(ctx.nodes.len(), 5);
        assert_eq!(ctx.nodes[0].page, 19);
        assert_eq!(ctx.nodes[4].page, 15);
    }

    #[test]
    fn last_visit_where_finds_most_recent() {
        let mut t = TrailGraph::new();
        t.record(v(1, 0, 7, 100, None));
        t.record(v(1, 1, 7, 900, None));
        t.record(v(1, 1, 8, 500, None));
        let hit = t.last_visit_where(|vv| vv.page == 7).unwrap();
        assert_eq!(hit.time, 900);
        assert!(t.last_visit_where(|vv| vv.page == 99).is_none());
    }

    #[test]
    fn popularity_counts_public_only() {
        let mut t = TrailGraph::new();
        t.record(v(1, 0, 5, 1, None));
        t.record(v(2, 0, 5, 2, None));
        t.record(Visit {
            user: 3,
            session: 0,
            page: 5,
            time: 3,
            referrer: None,
            public: false,
        });
        let pop = t.popularity(0);
        assert_eq!(pop[&5], 2);
    }

    #[test]
    fn user_pages_dedup() {
        let mut t = TrailGraph::new();
        t.record(v(1, 0, 5, 1, None));
        t.record(v(1, 0, 5, 2, None));
        t.record(v(1, 0, 6, 3, None));
        assert_eq!(t.user_pages(1, 0), vec![5, 6]);
        assert_eq!(t.user_pages(1, 3), vec![6]);
    }
}
