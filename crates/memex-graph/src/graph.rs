//! A compact directed graph over dense node ids, with both out- and
//! in-adjacency kept sorted for merge-style algorithms.

/// Dense node identifier (page id within a corpus).
pub type NodeId = u32;

/// Directed graph with O(1) amortised edge insertion and sorted adjacency.
#[derive(Debug, Clone, Default)]
pub struct WebGraph {
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    num_edges: u64,
}

impl WebGraph {
    pub fn new() -> WebGraph {
        WebGraph::default()
    }

    /// Pre-size for `n` nodes.
    pub fn with_nodes(n: usize) -> WebGraph {
        WebGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Ensure node `id` exists (nodes are implicit 0..n).
    pub fn ensure_node(&mut self, id: NodeId) {
        let need = id as usize + 1;
        if self.out.len() < need {
            self.out.resize_with(need, Vec::new);
            self.inn.resize_with(need, Vec::new);
        }
    }

    /// Add edge `from -> to` (self-loops ignored, duplicates ignored).
    /// Returns true if the edge was new.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        self.ensure_node(from.max(to));
        let out = &mut self.out[from as usize];
        match out.binary_search(&to) {
            Ok(_) => false,
            Err(pos) => {
                out.insert(pos, to);
                let inn = &mut self.inn[to as usize];
                let ipos = inn.binary_search(&from).unwrap_err();
                inn.insert(ipos, from);
                self.num_edges += 1;
                true
            }
        }
    }

    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out
            .get(from as usize)
            .is_some_and(|v| v.binary_search(&to).is_ok())
    }

    /// Sorted out-neighbours.
    pub fn out_links(&self, id: NodeId) -> &[NodeId] {
        self.out.get(id as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sorted in-neighbours.
    pub fn in_links(&self, id: NodeId) -> &[NodeId] {
        self.inn.get(id as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_links(id).len()
    }

    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_links(id).len()
    }

    /// Number of (implicit) nodes.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// The subgraph induced by `nodes`: edges with both endpoints inside.
    /// Returned as `(kept_nodes_sorted, edges)`.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let inside = |id: NodeId| sorted.binary_search(&id).is_ok();
        let mut edges = Vec::new();
        for &u in &sorted {
            for &v in self.out_links(u) {
                if inside(v) {
                    edges.push((u, v));
                }
            }
        }
        (sorted, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_dedup_and_count() {
        let mut g = WebGraph::new();
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1), "duplicate rejected");
        assert!(!g.add_edge(2, 2), "self-loop rejected");
        assert!(g.add_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn adjacency_is_sorted_and_mirrored() {
        let mut g = WebGraph::new();
        for to in [5u32, 3, 9, 1] {
            g.add_edge(0, to);
        }
        assert_eq!(g.out_links(0), &[1, 3, 5, 9]);
        for to in [5u32, 3, 9, 1] {
            assert_eq!(g.in_links(to), &[0]);
        }
        assert_eq!(g.out_degree(0), 4);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn nodes_grow_implicitly() {
        let mut g = WebGraph::new();
        g.add_edge(100, 7);
        assert_eq!(g.num_nodes(), 101);
        assert!(g.out_links(50).is_empty());
        assert!(
            g.out_links(9999).is_empty(),
            "out-of-range is empty, not panic"
        );
    }

    #[test]
    fn induced_subgraph_filters_edges() {
        let mut g = WebGraph::new();
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let (nodes, edges) = g.induced_subgraph(&[0, 1, 2, 2]);
        assert_eq!(nodes, vec![0, 1, 2]);
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }
}
