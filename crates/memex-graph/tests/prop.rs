//! Property tests for the graph substrate: PageRank mass conservation,
//! HITS normalisation, BFS distance validity, and trail-replay filtering
//! laws on random graphs and event streams.

use proptest::prelude::*;

use memex_graph::graph::WebGraph;
use memex_graph::hits::hits;
use memex_graph::neighborhood::{expand, Direction};
use memex_graph::pagerank::{pagerank, personalized_pagerank, PageRankOptions};
use memex_graph::trail::{TrailGraph, Visit};

fn graph_strategy() -> impl Strategy<Value = WebGraph> {
    proptest::collection::vec((0u32..20, 0u32..20), 0..80).prop_map(|edges| {
        let mut g = WebGraph::new();
        g.ensure_node(19);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PageRank is a probability distribution on any graph.
    #[test]
    fn pagerank_conserves_mass(g in graph_strategy()) {
        let r = pagerank(&g, PageRankOptions::default());
        prop_assert_eq!(r.len(), g.num_nodes());
        let total: f64 = r.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
        prop_assert!(r.iter().all(|&x| x >= 0.0));
    }

    /// Personalised PageRank never leaks mass outside and stays normalised.
    #[test]
    fn personalized_pagerank_normalised(g in graph_strategy(), seeds in proptest::collection::vec(0u32..20, 1..5)) {
        let r = personalized_pagerank(&g, &seeds, PageRankOptions::default());
        let total: f64 = r.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// HITS scores are finite, non-negative and — when the base set has any
    /// edges at all — L2-normalised. An edge-free base set carries no link
    /// evidence and collapses to all-zero scores (documented degenerate
    /// case).
    #[test]
    fn hits_normalised(g in graph_strategy()) {
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let scores = hits(&g, &nodes, 30, 1e-9);
        let hub_norm: f64 = scores.values().map(|s| s.hub * s.hub).sum::<f64>().sqrt();
        let auth_norm: f64 = scores.values().map(|s| s.authority * s.authority).sum::<f64>().sqrt();
        if g.num_edges() == 0 {
            prop_assert!(hub_norm.abs() < 1e-9 && auth_norm.abs() < 1e-9);
        } else {
            prop_assert!((hub_norm - 1.0).abs() < 1e-3, "hub norm {hub_norm}");
            prop_assert!((auth_norm - 1.0).abs() < 1e-3, "auth norm {auth_norm}");
        }
        for s in scores.values() {
            prop_assert!(s.hub >= -1e-12 && s.authority >= -1e-12);
            prop_assert!(s.hub.is_finite() && s.authority.is_finite());
        }
    }

    /// BFS expansion yields valid, non-decreasing distances and respects
    /// the node budget; distance-1 nodes really are neighbours.
    #[test]
    fn expand_distances_valid(g in graph_strategy(), seed in 0u32..20, radius in 0usize..4, budget in 1usize..30) {
        let out = expand(&g, &[seed], radius, Direction::Forward, budget);
        prop_assert!(out.len() <= budget);
        prop_assert!(!out.is_empty() && out[0] == (seed, 0));
        let mut last = 0usize;
        for &(node, d) in &out {
            prop_assert!(d >= last, "BFS order violated");
            prop_assert!(d <= radius);
            last = d;
            if d == 1 {
                prop_assert!(g.out_links(seed).contains(&node));
            }
        }
        // No duplicates.
        let mut nodes: Vec<u32> = out.iter().map(|&(n, _)| n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), out.len());
    }

    /// Trail replay returns only on-topic, visible, in-window pages, and
    /// widening any filter never shrinks the result.
    #[test]
    fn replay_filtering_laws(
        visits in proptest::collection::vec(
            (0u32..4, 0u32..3, 0u32..12, 0u64..1000, any::<bool>()), 0..60),
        since in 0u64..1000,
        viewer in 0u32..4,
    ) {
        let mut t = TrailGraph::new();
        for (user, session, page, time, public) in &visits {
            t.record(Visit {
                user: *user,
                session: *session,
                page: *page,
                time: *time,
                referrer: None,
                public: *public,
            });
        }
        let on_topic = |p: u32| p.is_multiple_of(2);
        let ctx = t.replay_context(on_topic, viewer, since, 100);
        for n in &ctx.nodes {
            prop_assert!(on_topic(n.page));
            prop_assert!(n.last_time >= since);
            prop_assert!(n.visit_count >= 1);
        }
        // Nodes sorted by recency.
        prop_assert!(ctx.nodes.windows(2).all(|w| w[0].last_time >= w[1].last_time));
        // Widening the window only adds pages.
        let wider = t.replay_context(on_topic, viewer, 0, 100);
        prop_assert!(wider.nodes.len() >= ctx.nodes.len());
        // An "everything" topic contains the even-page context.
        let all = t.replay_context(|_| true, viewer, since, 100);
        let all_pages: std::collections::HashSet<u32> = all.nodes.iter().map(|n| n.page).collect();
        for n in &ctx.nodes {
            prop_assert!(all_pages.contains(&n.page));
        }
    }

    /// user_pages is sorted, deduplicated and time-filtered.
    #[test]
    fn user_pages_wellformed(
        visits in proptest::collection::vec((0u32..3, 0u32..10, 0u64..100), 0..40),
        since in 0u64..100,
    ) {
        let mut t = TrailGraph::new();
        for (user, page, time) in &visits {
            t.record(Visit { user: *user, session: 0, page: *page, time: *time, referrer: None, public: true });
        }
        for user in 0..3u32 {
            let pages = t.user_pages(user, since);
            prop_assert!(pages.windows(2).all(|w| w[0] < w[1]));
            for &p in &pages {
                prop_assert!(visits.iter().any(|&(u, pg, tm)| u == user && pg == p && tm >= since));
            }
        }
    }
}
