//! The [`Memex`] facade: everything the demo's client tabs call.
//!
//! Wires the server substrate (ingest, demons, storage) to the mining
//! layers (folders + classifier, themes, trails, search, recommendation)
//! and exposes the six §1 questions as methods:
//!
//! | §1 question | method |
//! |---|---|
//! | "URL I visited about six months back regarding X?" | [`Memex::recall`] |
//! | "Web neighborhood I was surfing last time on topic T?" | [`Memex::topic_context`] |
//! | "popular sites related to my experience, appeared recently?" | [`Memex::whats_new`] |
//! | "How is my ISP bill divided by topic?" | [`Memex::bill`] |
//! | "major topics of my workplace, where do I fit?" | [`Memex::community_themes`], [`Memex::my_place`] |
//! | "who shares my interest most closely?" | [`Memex::similar_surfers`] |

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use memex_cluster::themes::{ThemeDiscovery, ThemeOptions, Themes, UserFolder};
use memex_graph::hits::top_authorities;
use memex_graph::neighborhood::{expand, Direction};
use memex_graph::trail::TrailContext;
use memex_index::search::{bm25_search, Bm25Params};
use memex_learn::taxonomy::TopicId;
use memex_server::events::ClientEvent;
use memex_server::fetcher::CorpusFetcher;
use memex_server::pipeline::{MemexServer, ServerOptions};
use memex_store::error::StoreResult;
use memex_text::analyze::Analyzer;
use memex_text::vector::SparseVec;
use memex_web::corpus::Corpus;

use crate::folders::FolderSpace;

/// Facade configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemexOptions {
    pub server: ServerOptions,
    pub themes: ThemeOptions,
}

/// A ranked recall result (Q1).
#[derive(Debug, Clone, PartialEq)]
pub struct RecallHit {
    pub page: u32,
    pub url: String,
    pub score: f32,
    pub last_visit: u64,
    /// Query-biased excerpt of the page text.
    pub snippet: String,
}

/// One line of the ISP bill breakdown (Q4).
#[derive(Debug, Clone, PartialEq)]
pub struct BillLine {
    pub folder: String,
    pub bytes: u64,
    pub visits: u32,
    pub fraction: f64,
}

/// A rejection-capable per-user topic classifier: the user's leaf folders
/// plus a background class ("none of my folders").
pub struct TopicFilter {
    nb: memex_learn::nb::NaiveBayes,
    leaves: Vec<TopicId>,
    usable: bool,
}

impl TopicFilter {
    /// The folder this page belongs to, or `None` for "no folder"
    /// (background wins or the filter has no training data).
    pub fn classify(&self, tf: &[(memex_text::vocab::TermId, u32)]) -> Option<TopicId> {
        if !self.usable {
            return None;
        }
        let class = self.nb.predict(tf);
        self.leaves.get(class).copied()
    }
}

/// The assembled Memex system over a (simulated) web.
///
/// Every query method takes `&self` so the serving layer can answer many
/// queries in parallel behind an `RwLock`; all state maintenance (index
/// commits, theme cache rebuilds, bookmark filing) happens in
/// [`Memex::refresh`], which mutation paths run under the write lock.
pub struct Memex {
    pub corpus: Arc<Corpus>,
    pub server: MemexServer<CorpusFetcher>,
    folder_spaces: HashMap<u32, FolderSpace>,
    /// Shared read-only stand-in for users without a folder space yet, so
    /// `&self` queries never need `entry(..).or_default()`.
    empty_folder_space: FolderSpace,
    url_to_page: HashMap<String, u32>,
    analyzer: Analyzer,
    theme_opts: ThemeOptions,
    /// Cached community themes + the page id of each theme doc. Always
    /// populated; rebuilt by [`Memex::refresh`] when bookmarks changed.
    themes_cache: (Themes, Vec<u32>),
    themes_built_at_bookmarks: usize,
    /// Bookmarks already filed into folder spaces.
    filed_bookmarks: usize,
    /// Request tracer (flight recorder + slow log). Built disabled; the
    /// serving layer configures it ([`memex_obs::Tracer::configure`]).
    tracer: memex_obs::Tracer,
}

impl Memex {
    /// Stand up a Memex over a corpus.
    pub fn new(corpus: Arc<Corpus>, opts: MemexOptions) -> StoreResult<Memex> {
        let server = MemexServer::new(CorpusFetcher::new(corpus.clone()), opts.server)?;
        let url_to_page = corpus.pages.iter().map(|p| (p.url.clone(), p.id)).collect();
        let empty_themes = ThemeDiscovery::new(opts.themes).run(&[], &[]);
        let tracer = memex_obs::Tracer::default();
        tracer.attach_registry(server.registry());
        Ok(Memex {
            corpus,
            server,
            folder_spaces: HashMap::new(),
            empty_folder_space: FolderSpace::default(),
            url_to_page,
            analyzer: Analyzer::default(),
            theme_opts: opts.themes,
            themes_cache: (empty_themes, Vec::new()),
            themes_built_at_bookmarks: 0,
            filed_bookmarks: 0,
            tracer,
        })
    }

    /// Register a user with the server and give them a folder space.
    pub fn register_user(&mut self, user: u32, name: &str) -> StoreResult<()> {
        self.server.register_user(user, name)?;
        self.folder_spaces.entry(user).or_default();
        Ok(())
    }

    /// Resolve a URL to the dense page id, if the (simulated) web has it.
    pub fn resolve_url(&self, url: &str) -> Option<u32> {
        self.url_to_page.get(url).copied()
    }

    /// Ingest one client event (guaranteed-immediate path).
    /// The metrics registry shared by every subsystem this Memex owns.
    pub fn registry(&self) -> &memex_obs::MetricsRegistry {
        self.server.registry()
    }

    /// The request tracer owned by this Memex (`&self`: the tracer is
    /// internally synchronized, so readers can pull traces concurrently).
    pub fn tracer(&self) -> &memex_obs::Tracer {
        &self.tracer
    }

    pub fn submit(&mut self, event: ClientEvent) -> bool {
        self.server.submit(event)
    }

    /// A user's folder space (created on first touch).
    pub fn folder_space(&mut self, user: u32) -> &mut FolderSpace {
        self.folder_spaces.entry(user).or_default()
    }

    /// Read-only view of a user's folder space; users without one see a
    /// shared empty space (queries must not mutate, see [`Memex::refresh`]).
    pub fn folder_space_ref(&self, user: u32) -> &FolderSpace {
        self.folder_spaces
            .get(&user)
            .unwrap_or(&self.empty_folder_space)
    }

    /// Run every background demon to quiescence: server fetch/index/trail
    /// demons, then bookmark filing and the per-user classification demon
    /// (Fig. 1's '?' guesses).
    pub fn run_demons(&mut self) -> StoreResult<()> {
        self.server.drain_demons()?;
        // File newly recorded bookmarks into folder spaces.
        let new_bookmarks: Vec<_> = self.server.bookmarks[self.filed_bookmarks..].to_vec();
        self.filed_bookmarks = self.server.bookmarks.len();
        for b in new_bookmarks {
            let tf = self
                .server
                .tf(b.page)
                .map(<[_]>::to_vec)
                .unwrap_or_default();
            let fs = self.folder_spaces.entry(b.user).or_default();
            let folder = fs.add_folder(&b.folder);
            fs.bookmark(b.page, folder, &tf);
        }
        // Classification demon: guess folders for each user's unfiled
        // visited pages.
        let users: Vec<u32> = self.folder_spaces.keys().copied().collect();
        for user in users {
            let pages = self.server.trails.user_pages(user, 0);
            // `users` was listed from this map moments ago; skip rather
            // than panic the serving thread if it ever disagrees.
            let Some(fs) = self.folder_spaces.get_mut(&user) else {
                continue;
            };
            for page in pages {
                if fs.assignment(page).is_none() {
                    if let Some(tf) = self.server.tf(page) {
                        fs.classify(page, tf);
                    }
                }
            }
        }
        self.refresh()
    }

    /// Bring every query-visible cache up to date: seal the index buffer
    /// and rebuild the community-theme cache if new bookmarks arrived.
    ///
    /// Mutation paths (`run_demons`, `dispatch_write`) call this under the
    /// write lock so that every query method can take `&self` — queries
    /// never commit, never rebuild, never allocate folder spaces.
    pub fn refresh(&mut self) -> StoreResult<()> {
        self.server.index.commit()?;
        let n_bookmarks = self.server.bookmarks.len();
        if self.themes_built_at_bookmarks != n_bookmarks {
            // Documents: distinct bookmarked pages.
            let mut doc_pages: Vec<u32> = Vec::new();
            let mut doc_of_page: HashMap<u32, usize> = HashMap::new();
            let mut folders_by_key: HashMap<(u32, String), Vec<usize>> = HashMap::new();
            for b in &self.server.bookmarks {
                let doc = *doc_of_page.entry(b.page).or_insert_with(|| {
                    doc_pages.push(b.page);
                    doc_pages.len() - 1
                });
                folders_by_key
                    .entry((b.user, b.folder.clone()))
                    .or_default()
                    .push(doc);
            }
            let docs: Vec<SparseVec> = doc_pages
                .iter()
                .map(|&p| match self.server.tf(p) {
                    Some(tf) => self.analyzer.tfidf(&self.server.vocab, tf),
                    None => SparseVec::new(),
                })
                .collect();
            let mut folders: Vec<UserFolder> = folders_by_key
                .into_iter()
                .map(|((user, name), mut docs)| {
                    docs.sort_unstable();
                    docs.dedup();
                    UserFolder { user, name, docs }
                })
                .collect();
            folders.sort_by(|a, b| (a.user, &a.name).cmp(&(b.user, &b.name)));
            let themes = ThemeDiscovery::new(self.theme_opts).run(&docs, &folders);
            self.themes_cache = (themes, doc_pages);
            self.themes_built_at_bookmarks = n_bookmarks;
        }
        Ok(())
    }

    // -- Q1: recall ---------------------------------------------------------

    /// "What was the URL I visited about six months back regarding X?" —
    /// full-text search restricted to pages this user visited in
    /// `[since, until]`.
    pub fn recall(
        &self,
        user: u32,
        query: &str,
        since: u64,
        until: u64,
        k: usize,
    ) -> StoreResult<Vec<RecallHit>> {
        let q = self.analyzer.counts(query);
        let query_terms: Vec<(u32, u32)> = q
            .iter()
            .filter_map(|(t, &c)| self.server.vocab.id(t).map(|id| (id, c)))
            .collect();
        let hits = bm25_search(
            &self.server.index,
            &query_terms,
            k * 20,
            Bm25Params::default(),
        )?;
        // Visit-time filter per page for this user.
        let mut last_visit: HashMap<u32, u64> = HashMap::new();
        for v in self
            .server
            .trails
            .visits()
            .iter()
            .filter(|v| v.user == user)
        {
            if v.time >= since && v.time <= until {
                let e = last_visit.entry(v.page).or_insert(0);
                *e = (*e).max(v.time);
            }
        }
        let mut out: Vec<RecallHit> = hits
            .into_iter()
            .filter_map(|h| {
                last_visit.get(&h.doc).map(|&t| {
                    let page = &self.corpus.pages[h.doc as usize];
                    RecallHit {
                        page: h.doc,
                        url: page.url.clone(),
                        score: h.score,
                        last_visit: t,
                        snippet: memex_text::snippet::snippet(&page.text, query, 12),
                    }
                })
            })
            .take(k)
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(out)
    }

    /// Exact-phrase recall over the user's history: like [`Memex::recall`]
    /// but the words must appear consecutively (stopwords removed, stems
    /// applied — "compiler optimization" matches "compilers optimize").
    /// Hits are ordered most-recent-first.
    pub fn recall_phrase(
        &self,
        user: u32,
        phrase: &str,
        since: u64,
        until: u64,
        k: usize,
    ) -> StoreResult<Vec<RecallHit>> {
        let seq = self.analyzer.term_sequence(phrase);
        let ids: Option<Vec<u32>> = seq.iter().map(|t| self.server.vocab.id(t)).collect();
        let Some(ids) = ids else {
            return Ok(Vec::new());
        }; // unseen term: no match
        let docs = memex_index::search::phrase_search(&self.server.index, &ids)?;
        let mut last_visit: HashMap<u32, u64> = HashMap::new();
        for v in self
            .server
            .trails
            .visits()
            .iter()
            .filter(|v| v.user == user)
        {
            if v.time >= since && v.time <= until {
                let e = last_visit.entry(v.page).or_insert(0);
                *e = (*e).max(v.time);
            }
        }
        let mut out: Vec<RecallHit> = docs
            .into_iter()
            .filter_map(|doc| {
                last_visit.get(&doc).map(|&t| {
                    let page = &self.corpus.pages[doc as usize];
                    RecallHit {
                        page: doc,
                        url: page.url.clone(),
                        score: 1.0,
                        last_visit: t,
                        snippet: memex_text::snippet::snippet(&page.text, phrase, 12),
                    }
                })
            })
            .collect();
        out.sort_by_key(|h| std::cmp::Reverse(h.last_visit));
        out.truncate(k);
        Ok(out)
    }

    // -- Q2 / F2: topical context replay -------------------------------------

    /// Build a rejection-capable topic filter for one user: a naive Bayes
    /// over their leaf folders **plus a background class** trained from a
    /// sample of everything the community surfed. Community pages whose
    /// best class is the background simply don't *belong* to any folder —
    /// which is what "most likely to belong to the selected topic" needs
    /// (a forced choice among the user's folders would claim every page).
    pub fn topic_filter(&self, user: u32) -> TopicFilter {
        let fs = self.folder_space_ref(user);
        let leaves: Vec<TopicId> = fs.classes().to_vec();
        let confirmed: Vec<(u32, TopicId)> = fs
            .assignments()
            .filter(|(_, a)| a.confirmed)
            .map(|(p, a)| (p, a.folder))
            .collect();
        // `leaves + background` classes; NaiveBayes insists on >= 2, so a
        // user with no folders yet gets a padded (never-trained, unusable)
        // classifier instead of a panic on the query path.
        let mut nb = memex_learn::nb::NaiveBayes::new(
            (leaves.len() + 1).max(2),
            memex_learn::nb::NbOptions::default(),
        );
        let background = leaves.len();
        let mut trained = 0usize;
        for (page, folder) in &confirmed {
            if let (Some(class), Some(tf)) = (
                leaves.iter().position(|l| l == folder),
                self.server.tf(*page),
            ) {
                nb.add_document(class, tf);
                trained += 1;
            }
        }
        // Background: an even sample of community-visited pages.
        let mut sampled = 0usize;
        let mut seen = HashSet::new();
        for v in self.server.trails.visits() {
            if seen.insert(v.page) && seen.len() % 2 == 0 {
                if let Some(tf) = self.server.tf(v.page) {
                    nb.add_document(background, tf);
                    sampled += 1;
                    if sampled >= 300 {
                        break;
                    }
                }
            }
        }
        TopicFilter {
            nb,
            leaves,
            usable: trained > 0 && sampled > 0,
        }
    }

    /// Pages on topic `folder` for `user`: their confirmed assignments
    /// under the folder, plus every community-visited page the topic
    /// filter routes to a leaf under the folder.
    pub fn pages_on_topic(&self, user: u32, folder: TopicId) -> HashSet<u32> {
        let filter = self.topic_filter(user);
        let all_pages: Vec<u32> = self
            .server
            .trails
            .visits()
            .iter()
            .map(|v| v.page)
            .collect::<HashSet<u32>>()
            .into_iter()
            .collect();
        let fs = self.folder_space_ref(user);
        let mut on_topic = HashSet::new();
        for page in all_pages {
            // The user's own confirmed filing is authoritative.
            if let Some(a) = fs.assignment(page) {
                if a.confirmed {
                    if fs.taxonomy.is_ancestor_or_self(folder, a.folder) {
                        on_topic.insert(page);
                    }
                    continue;
                }
            }
            if let Some(tf) = self.server.tf(page) {
                if let Some(f) = filter.classify(tf) {
                    if fs.taxonomy.is_ancestor_or_self(folder, f) {
                        on_topic.insert(page);
                    }
                }
            }
        }
        on_topic
    }

    /// The trail tab (Fig. 2): "Selecting a folder replays the hypertext
    /// graph of recent pages publicly surfed by the community which are
    /// most likely to belong to the selected topic."
    pub fn topic_context(
        &self,
        user: u32,
        folder: TopicId,
        since: u64,
        max_pages: usize,
    ) -> TrailContext {
        let on_topic = self.pages_on_topic(user, folder);
        self.server
            .trails
            .replay_context(|p| on_topic.contains(&p), user, since, max_pages)
    }

    // -- Q3: what's new ------------------------------------------------------

    /// "Are there any popular sites, related to my experience on topic T,
    /// that have appeared \[recently\]?" — authoritative pages in/near the
    /// community's recent on-topic trail graph that the user hasn't seen.
    pub fn whats_new(&self, user: u32, folder: TopicId, since: u64, k: usize) -> Vec<(u32, f64)> {
        // Pin the index once, up front: the sweep below walks trails and
        // the web graph for a while, and consulting live index state that
        // deep in would read whatever ingest happens to have half-applied
        // by then. Everything index-derived comes from this snapshot.
        let index_snap = self.server.index.read_snapshot().ok();
        let on_topic = self.pages_on_topic(user, folder);
        // Community's recent on-topic pages...
        let recent: Vec<u32> = self
            .server
            .trails
            .visits()
            .iter()
            .filter(|v| v.public && v.time >= since && on_topic.contains(&v.page))
            .map(|v| v.page)
            .collect::<HashSet<u32>>()
            .into_iter()
            .collect();
        // ...expanded one hop through the fetched web graph ("in or near").
        let base: Vec<u32> = expand(&self.server.web, &recent, 1, Direction::Both, 4_000)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let seen_before: HashSet<u32> = self
            .server
            .trails
            .visits()
            .iter()
            .filter(|v| v.user == user && v.time < since)
            .map(|v| v.page)
            .collect();
        let fresh: Vec<(u32, f64)> =
            top_authorities(&self.server.web, &base, k + seen_before.len())
                .into_iter()
                .filter(|(p, _)| {
                    // Recommend only pages the pinned index knows: a page the
                    // expansion reached but ingest has not indexed yet would
                    // be recommended on graph shape alone.
                    !seen_before.contains(p)
                        && index_snap.as_ref().is_none_or(|s| s.doc_len(*p) > 0)
                })
                .take(k)
                .collect();
        if let Some(snap) = &index_snap {
            // Staleness in engine-state transitions (seals, compactions,
            // writes), not wall time: how far live ingest ran ahead of
            // the view this sweep answered from.
            let age = self
                .server
                .index
                .engine_epoch()
                .saturating_sub(snap.epoch());
            self.registry()
                .gauge("demon.whatsnew.snapshot_age")
                .set(i64::try_from(age).unwrap_or(i64::MAX));
        }
        fresh
    }

    // -- Q4: ISP bill --------------------------------------------------------

    /// "How is my ISP bill divided into access for work, travel, news,
    /// hobby and entertainment?" — bytes per folder for the user's visits
    /// in `[since, until]`.
    pub fn bill(&self, user: u32, since: u64, until: u64) -> Vec<BillLine> {
        let visits: Vec<(u32, u64)> = self
            .server
            .trails
            .visits()
            .iter()
            .filter(|v| v.user == user && v.time >= since && v.time <= until)
            .map(|v| (v.page, v.time))
            .collect();
        let filter = self.topic_filter(user);
        let mut per_folder: HashMap<String, (u64, u32)> = HashMap::new();
        let mut total_bytes = 0u64;
        for (page, _) in visits {
            let bytes = u64::from(self.server.page_bytes(page).unwrap_or(0));
            let folder_name = {
                let fs = self.folder_space_ref(user);
                let assigned = match fs.assignment(page) {
                    Some(a) if a.confirmed => Some(a.folder),
                    _ => self.server.tf(page).and_then(|tf| filter.classify(tf)),
                };
                match assigned {
                    Some(f) => fs.taxonomy.path(f),
                    None => "(other)".to_string(),
                }
            };
            let e = per_folder.entry(folder_name).or_insert((0, 0));
            e.0 += bytes;
            e.1 += 1;
            total_bytes += bytes;
        }
        let mut lines: Vec<BillLine> = per_folder
            .into_iter()
            .map(|(folder, (bytes, visits))| BillLine {
                folder,
                bytes,
                visits,
                fraction: if total_bytes == 0 {
                    0.0
                } else {
                    bytes as f64 / total_bytes as f64
                },
            })
            .collect();
        lines.sort_by_key(|l| std::cmp::Reverse(l.bytes));
        lines
    }

    // -- Q5: community themes -------------------------------------------------

    /// Consolidate all users' public folders into the community theme
    /// taxonomy (Fig. 4). Served from the cache maintained by
    /// [`Memex::refresh`] — call `run_demons`/`refresh` after bookmark
    /// mutations to pick up new folders. Returns the themes plus the page
    /// id behind each theme document index.
    pub fn community_themes(&self) -> &(Themes, Vec<u32>) {
        &self.themes_cache
    }

    /// TF-IDF vector of a fetched page.
    pub fn page_vector(&self, page: u32) -> Option<SparseVec> {
        self.server
            .tf(page)
            .map(|tf| self.analyzer.tfidf(&self.server.vocab, tf))
    }

    /// "Where and how do I fit into that map?" — the user's weight on each
    /// theme node, as `(theme path, weight)` sorted descending.
    pub fn my_place(&self, user: u32) -> Vec<(String, f64)> {
        let profile = crate::recommend::theme_profile(self, user);
        let (themes, _) = self.community_themes();
        let mut out: Vec<(String, f64)> = profile
            .iter()
            .filter(|(&node, _)| node != memex_learn::taxonomy::Taxonomy::ROOT)
            .map(|(&node, &w)| (themes.taxonomy.path(node), w))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    // -- Q6: similar surfers ---------------------------------------------------

    /// "Who are the people who share my interest most closely?" — theme
    /// profile cosine, descending, excluding the user.
    pub fn similar_surfers(&self, user: u32, k: usize) -> Vec<(u32, f64)> {
        crate::recommend::similar_surfers(self, user, k)
    }

    /// Collaborative page recommendation for a user.
    pub fn recommend_pages(&self, user: u32, k: usize) -> Vec<(u32, f64)> {
        crate::recommend::recommend_pages(self, user, k)
    }

    /// All users with a folder space (registration order not guaranteed).
    pub fn users(&self) -> Vec<u32> {
        let mut u: Vec<u32> = self.folder_spaces.keys().copied().collect();
        u.sort_unstable();
        u
    }

    // -- folder proposal (§2: "Memex also uses unsupervised clustering to
    // propose a topic hierarchy over a set of links that the user may want
    // to reorganize") ---------------------------------------------------------

    /// Cluster a user's *unfiled-or-guessed* visited pages into `k`
    /// proposed folders. Each proposal carries a suggested name (top
    /// centroid terms) and its member pages; accepting one is a plain
    /// [`FolderSpace::add_folder`] + `bookmark` loop.
    pub fn propose_folders(&self, user: u32, k: usize) -> Vec<FolderProposal> {
        let pages: Vec<u32> = {
            let fs = self.folder_space_ref(user);
            self.server
                .trails
                .user_pages(user, 0)
                .into_iter()
                .filter(|&p| !fs.assignment(p).is_some_and(|a| a.confirmed))
                .collect()
        };
        let docs: Vec<SparseVec> = pages
            .iter()
            .filter_map(|&p| {
                self.server
                    .tf(p)
                    .map(|tf| self.analyzer.tfidf(&self.server.vocab, tf))
            })
            .collect();
        if docs.is_empty() || k == 0 {
            return Vec::new();
        }
        let result = memex_cluster::scatter::buckshot(&docs, k.min(docs.len()), 0x50F7);
        let mut proposals: Vec<FolderProposal> = (0..result.centroids.len())
            .map(|c| FolderProposal {
                name: memex_cluster::scatter::top_terms(
                    &result.centroids[c],
                    &self.server.vocab,
                    3,
                )
                .join(" "),
                pages: Vec::new(),
            })
            .collect();
        for (i, &label) in result.labels.iter().enumerate() {
            proposals[label].pages.push(pages[i]);
        }
        proposals.retain(|p| !p.pages.is_empty());
        proposals.sort_by_key(|p| std::cmp::Reverse(p.pages.len()));
        proposals
    }
}

/// A folder the clustering demon proposes for reorganising loose pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FolderProposal {
    /// Suggested folder name: the cluster's top centroid terms.
    pub name: String,
    /// Member pages, in trail order.
    pub pages: Vec<u32>,
}
