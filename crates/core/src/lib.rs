//! # memex-core — the Memex system
//!
//! "We propose to demonstrate the beginnings of a 'Memex' for the Web: a
//! browsing assistant for individuals and groups with focused interests.
//! Memex blurs the artificial distinction between browsing history and
//! deliberate bookmarks."
//!
//! This crate assembles every substrate into the user-facing system:
//!
//! * [`folders`] — each user's editable folder/topic space (Fig. 1), with
//!   the per-user classifier that marks its guesses with `?` and learns
//!   from cut/paste feedback;
//! * [`memex`] — the [`Memex`] facade: event ingest, demons, and the six
//!   motivating queries of §1 (months-old URL recall, topical browsing
//!   context, what's-new discovery, ISP bill breakdown, community map,
//!   similar-surfer search);
//! * [`recommend`] — theme-weight user profiles and collaborative
//!   recommendation, with the URL-overlap baseline the paper says profiles
//!   are "far superior to";
//! * [`bookmarks_io`] — Netscape-format bookmark import/export ("Existing
//!   bookmarks from Netscape or Explorer can be imported … conversely
//!   Memex can export back");
//! * [`servlet`] — the request/response dispatch surface (the paper's
//!   HTTP-tunnelled servlet interface, sans the wire);
//! * [`sharded`] — [`ShardedMemex`]: N replicas behind `user % N` routing
//!   with an ordered replication log, the core of the sharded serving
//!   layer in `memex-net`.

pub mod bookmarks_io;
pub mod folders;
pub mod memex;
pub mod recommend;
pub mod servlet;
pub mod sharded;

pub use folders::{FolderSpace, PageAssignment};
pub use memex::{Memex, MemexOptions};
pub use servlet::{Request, Response};
pub use sharded::ShardedMemex;
