//! Per-user folder/topic spaces (paper Fig. 1).
//!
//! "Each user has a personal folder/topic space… The classification demon
//! then classifies all subsequent history elements, marking its guesses by
//! '?'. The user can correct or reinforce the classifier using cut/paste,
//! thus continually improving Memex's models for the user's topics of
//! interest."

use std::collections::HashMap;

use memex_learn::nb::{NaiveBayes, NbOptions};
use memex_learn::taxonomy::{Taxonomy, TopicId};
use memex_text::features::FeatureScore;
use memex_text::vocab::TermId;

/// How a page ended up in a folder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAssignment {
    pub folder: TopicId,
    /// False = a classifier guess, rendered with '?' in the folder tab.
    pub confirmed: bool,
}

/// One user's editable folder tree plus the learned model over it.
pub struct FolderSpace {
    pub taxonomy: Taxonomy,
    /// page -> assignment.
    assignments: HashMap<u32, PageAssignment>,
    /// Training cache: page -> tf (needed to unlearn on correction).
    tf_of: HashMap<u32, Vec<(TermId, u32)>>,
    classifier: Option<NaiveBayes>,
    /// class index -> folder id (leaves of the taxonomy at train time).
    classes: Vec<TopicId>,
    nb_opts: NbOptions,
    /// Fisher-selected vocabulary size (None = all terms).
    pub feature_k: Option<usize>,
}

impl Default for FolderSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl FolderSpace {
    pub fn new() -> FolderSpace {
        FolderSpace {
            taxonomy: Taxonomy::new(),
            assignments: HashMap::new(),
            tf_of: HashMap::new(),
            classifier: None,
            classes: Vec::new(),
            nb_opts: NbOptions::default(),
            feature_k: Some(2_000),
        }
    }

    /// Create (or find) a folder by path, e.g. `"/Music/Western Classical"`.
    pub fn add_folder(&mut self, path: &str) -> TopicId {
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        let id = self.taxonomy.add_path(&parts);
        self.rebuild_classifier();
        id
    }

    /// All assignments (page, assignment), guesses included, in ascending
    /// page order. Deterministic order matters: callers feed this into
    /// classifier training (float-sum order) and user-visible exports, and
    /// replicated archives must answer identically to their peers.
    pub fn assignments(&self) -> impl Iterator<Item = (u32, PageAssignment)> + '_ {
        let mut all: Vec<(u32, PageAssignment)> =
            self.assignments.iter().map(|(&p, &a)| (p, a)).collect();
        all.sort_unstable_by_key(|&(p, _)| p);
        all.into_iter()
    }

    /// Assignment of one page.
    pub fn assignment(&self, page: u32) -> Option<PageAssignment> {
        self.assignments.get(&page).copied()
    }

    /// Pages filed under `folder` or its subfolders.
    pub fn pages_under(&self, folder: TopicId) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .assignments
            .iter()
            .filter(|(_, a)| self.taxonomy.is_ancestor_or_self(folder, a.folder))
            .map(|(&p, _)| p)
            .collect();
        out.sort_unstable();
        out
    }

    /// User deliberately bookmarks `page` into `folder` (confirmed).
    /// Feeds the classifier immediately.
    pub fn bookmark(&mut self, page: u32, folder: TopicId, tf: &[(TermId, u32)]) {
        assert!(self.taxonomy.is_live(folder), "folder must exist");
        // If the page was guessed elsewhere, unlearn that first.
        self.unassign(page);
        // A folder receiving its first confirmed page brings new vocabulary
        // online; a full rebuild re-runs feature selection over it.
        let folder_was_empty = !self
            .assignments
            .values()
            .any(|a| a.confirmed && a.folder == folder);
        self.assignments.insert(
            page,
            PageAssignment {
                folder,
                confirmed: true,
            },
        );
        self.tf_of.insert(page, tf.to_vec());
        if self.classifier.is_none() || folder_was_empty {
            self.rebuild_classifier();
            return;
        }
        if let Some(class) = self.class_of(folder) {
            if let Some(nb) = &mut self.classifier {
                nb.add_document(class, tf);
            }
        } else {
            self.rebuild_classifier();
        }
    }

    /// The classification demon's entry point: guess a folder for an
    /// unfiled page. Returns the guess (marked '?') or `None` when the
    /// model cannot classify yet (fewer than two trained folders).
    pub fn classify(&mut self, page: u32, tf: &[(TermId, u32)]) -> Option<TopicId> {
        if self.assignments.get(&page).is_some_and(|a| a.confirmed) {
            return Some(self.assignments[&page].folder);
        }
        let nb = self.classifier.as_ref()?;
        if nb.num_docs() < 2.0 {
            return None;
        }
        let folder = self.classes[nb.predict(tf)];
        self.assignments.insert(
            page,
            PageAssignment {
                folder,
                confirmed: false,
            },
        );
        self.tf_of.insert(page, tf.to_vec());
        Some(folder)
    }

    /// User reinforces a guess (keeps it where the demon put it). The page
    /// becomes a confirmed training example.
    pub fn confirm(&mut self, page: u32) {
        let Some(a) = self.assignments.get_mut(&page) else {
            return;
        };
        if a.confirmed {
            return;
        }
        a.confirmed = true;
        let folder = a.folder;
        if let (Some(class), Some(tf)) = (self.class_of(folder), self.tf_of.get(&page).cloned()) {
            if let Some(nb) = &mut self.classifier {
                nb.add_document(class, &tf);
            }
        }
    }

    /// User corrects a guess: cut from its current folder, paste into
    /// `folder`. Equivalent to a confirmed bookmark.
    pub fn correct(&mut self, page: u32, folder: TopicId) {
        let tf = self.tf_of.get(&page).cloned().unwrap_or_default();
        self.bookmark(page, folder, &tf);
    }

    /// Remove a page from the space entirely (unlearns if confirmed).
    pub fn unassign(&mut self, page: u32) {
        if let Some(a) = self.assignments.remove(&page) {
            if a.confirmed {
                if let (Some(class), Some(tf)) = (self.class_of(a.folder), self.tf_of.get(&page)) {
                    let tf = tf.clone();
                    if let Some(nb) = &mut self.classifier {
                        nb.remove_document(class, &tf);
                    }
                }
            }
        }
    }

    /// Leaf folders the classifier routes to.
    pub fn classes(&self) -> &[TopicId] {
        &self.classes
    }

    /// Number of confirmed examples.
    pub fn confirmed_count(&self) -> usize {
        self.assignments.values().filter(|a| a.confirmed).count()
    }

    fn class_of(&self, folder: TopicId) -> Option<usize> {
        self.classes.iter().position(|&f| f == folder)
    }

    /// Rebuild the classifier over the current leaf set from confirmed
    /// assignments (called when the folder tree changes shape).
    pub fn rebuild_classifier(&mut self) {
        let leaves: Vec<TopicId> = self
            .taxonomy
            .leaves()
            .into_iter()
            .filter(|&l| l != Taxonomy::ROOT)
            .collect();
        if leaves.len() < 2 {
            self.classifier = None;
            self.classes = leaves;
            return;
        }
        let mut nb = NaiveBayes::new(leaves.len(), self.nb_opts);
        let mut trained = 0usize;
        for (&page, a) in &self.assignments {
            if !a.confirmed {
                continue;
            }
            // Assignments to internal folders train the nearest leaf under
            // them? No: only leaf assignments train (internal folders are
            // structural). Find the leaf == folder.
            if let Some(class) = leaves.iter().position(|&l| l == a.folder) {
                if let Some(tf) = self.tf_of.get(&page) {
                    nb.add_document(class, tf);
                    trained += 1;
                }
            }
        }
        if let Some(k) = self.feature_k {
            if trained >= 10 {
                nb.select_features(FeatureScore::Fisher, k);
            }
        }
        self.classes = leaves;
        self.classifier = if trained > 0 { Some(nb) } else { None };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(pairs: &[(u32, u32)]) -> Vec<(TermId, u32)> {
        pairs.to_vec()
    }

    fn space_with_two_folders() -> (FolderSpace, TopicId, TopicId) {
        let mut fs = FolderSpace::new();
        let music = fs.add_folder("/Music/Western Classical");
        let cycling = fs.add_folder("/Cycling");
        // Train both folders.
        for i in 0..5u32 {
            fs.bookmark(i, music, &tf(&[(1, 3), (2, 1)]));
            fs.bookmark(100 + i, cycling, &tf(&[(10, 3), (11, 1)]));
        }
        (fs, music, cycling)
    }

    #[test]
    fn folder_paths_create_nested_structure() {
        let mut fs = FolderSpace::new();
        let classical = fs.add_folder("/Music/Western Classical");
        assert_eq!(fs.taxonomy.path(classical), "/Music/Western Classical");
        let again = fs.add_folder("/Music/Western Classical");
        assert_eq!(classical, again);
    }

    #[test]
    fn demon_guesses_are_marked_unconfirmed() {
        let (mut fs, music, _) = space_with_two_folders();
        let guess = fs.classify(500, &tf(&[(1, 2)]));
        assert_eq!(guess, Some(music));
        let a = fs.assignment(500).unwrap();
        assert!(!a.confirmed, "demon guesses carry the '?'");
        assert_eq!(fs.confirmed_count(), 10);
    }

    #[test]
    fn confirm_reinforces_the_model() {
        let (mut fs, music, _) = space_with_two_folders();
        fs.classify(500, &tf(&[(1, 2)]));
        fs.confirm(500);
        assert!(fs.assignment(500).unwrap().confirmed);
        assert_eq!(fs.confirmed_count(), 11);
        assert_eq!(fs.assignment(500).unwrap().folder, music);
    }

    #[test]
    fn correction_moves_and_unlearns() {
        let (mut fs, music, cycling) = space_with_two_folders();
        // A cycling page the model initially mislearns as music.
        let ambiguous = tf(&[(1, 1), (10, 1)]);
        fs.bookmark(600, music, &ambiguous);
        assert_eq!(fs.assignment(600).unwrap().folder, music);
        fs.correct(600, cycling);
        let a = fs.assignment(600).unwrap();
        assert_eq!(a.folder, cycling);
        assert!(a.confirmed);
        assert_eq!(fs.confirmed_count(), 11, "moved, not duplicated");
    }

    #[test]
    fn classifier_needs_two_folders() {
        let mut fs = FolderSpace::new();
        let only = fs.add_folder("/Everything");
        fs.bookmark(1, only, &tf(&[(1, 1)]));
        assert_eq!(fs.classify(2, &tf(&[(1, 1)])), None);
    }

    #[test]
    fn pages_under_includes_subfolders() {
        let mut fs = FolderSpace::new();
        let music = fs.add_folder("/Music");
        let classical = fs.add_folder("/Music/Western Classical");
        let jazz = fs.add_folder("/Music/Jazz");
        fs.bookmark(1, classical, &tf(&[(1, 1)]));
        fs.bookmark(2, jazz, &tf(&[(2, 1)]));
        assert_eq!(fs.pages_under(music), vec![1, 2]);
        assert_eq!(fs.pages_under(classical), vec![1]);
    }

    #[test]
    fn restructuring_rebuilds_the_classifier() {
        let (mut fs, _, _) = space_with_two_folders();
        // Adding a third folder changes the class set.
        let travel = fs.add_folder("/Travel");
        fs.bookmark(300, travel, &tf(&[(20, 3)]));
        assert_eq!(fs.classes().len(), 3);
        assert_eq!(fs.classify(700, &tf(&[(20, 2)])), Some(travel));
    }

    #[test]
    fn confirmed_assignment_wins_over_reclassification() {
        let (mut fs, music, cycling) = space_with_two_folders();
        fs.bookmark(800, cycling, &tf(&[(1, 5)])); // user insists despite text
        assert_eq!(fs.classify(800, &tf(&[(1, 5)])), Some(cycling));
        let _ = music;
    }
}
