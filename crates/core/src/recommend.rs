//! Theme-weight user profiles and collaborative recommendation (§4):
//! "'Normalizing' all members of the community to themes also lets us
//! represent surfers' interests in a canonical form: roughly speaking, a
//! user profile is a set of weights associated with each node of a theme
//! hierarchy; this gives us a means of comparing profiles that is far
//! superior to overlap in sets of URLs."
//!
//! The URL-overlap (Jaccard) baseline lives here too — experiment T5
//! measures exactly that "far superior" claim.

use std::collections::{HashMap, HashSet};

use memex_cluster::themes::profile_similarity;
use memex_learn::taxonomy::TopicId;

use crate::memex::Memex;

/// Build a user's theme profile: for every page they visited, find its
/// theme (bookmarked pages carry their discovered theme; other pages are
/// routed to the nearest leaf theme by centroid similarity) and accumulate
/// weight up the theme taxonomy.
pub fn theme_profile(memex: &Memex, user: u32) -> HashMap<TopicId, f64> {
    let pages = memex.server.trails.user_pages(user, 0);
    // Snapshot what we need from the cache to keep borrows simple.
    let (doc_theme, doc_pages, taxonomy) = {
        let (themes, doc_pages) = memex.community_themes();
        (
            themes.doc_theme.clone(),
            doc_pages.clone(),
            themes.taxonomy.clone(),
        )
    };
    let doc_of_page: HashMap<u32, usize> =
        doc_pages.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut profile: HashMap<TopicId, f64> = HashMap::new();
    let total = pages.len().max(1) as f64;
    for page in pages {
        let theme = match doc_of_page.get(&page) {
            Some(&d) => doc_theme.get(d).copied().flatten(),
            None => {
                let v = memex.page_vector(page);
                let (themes, _) = memex.community_themes();
                v.and_then(|v| themes.assign(&v))
            }
        };
        if let Some(node) = theme {
            let mut cur = Some(node);
            while let Some(c) = cur {
                *profile.entry(c).or_insert(0.0) += 1.0 / total;
                cur = taxonomy.parent(c);
            }
        }
    }
    profile
}

/// Theme profiles for every registered user.
pub fn all_profiles(memex: &Memex) -> HashMap<u32, HashMap<TopicId, f64>> {
    memex
        .users()
        .into_iter()
        .map(|u| (u, theme_profile(memex, u)))
        .collect()
}

/// Most similar surfers by theme-profile cosine (excludes `user`).
pub fn similar_surfers(memex: &Memex, user: u32, k: usize) -> Vec<(u32, f64)> {
    let profiles = all_profiles(memex);
    let Some(mine) = profiles.get(&user) else {
        return Vec::new();
    };
    let mut scored: Vec<(u32, f64)> = profiles
        .iter()
        .filter(|(&u, _)| u != user)
        .map(|(&u, p)| (u, profile_similarity(mine, p)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

/// The baseline the paper dismisses: Jaccard overlap of visited URL sets.
pub fn url_jaccard(memex: &Memex, a: u32, b: u32) -> f64 {
    let pa: HashSet<u32> = memex.server.trails.user_pages(a, 0).into_iter().collect();
    let pb: HashSet<u32> = memex.server.trails.user_pages(b, 0).into_iter().collect();
    if pa.is_empty() && pb.is_empty() {
        return 0.0;
    }
    let inter = pa.intersection(&pb).count() as f64;
    let union = pa.union(&pb).count() as f64;
    inter / union
}

/// Surfer ranking by the URL-overlap baseline.
pub fn similar_surfers_by_url(memex: &Memex, user: u32, k: usize) -> Vec<(u32, f64)> {
    let mut scored: Vec<(u32, f64)> = memex
        .users()
        .into_iter()
        .filter(|&u| u != user)
        .map(|u| (u, url_jaccard(memex, user, u)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

/// Collaborative recommendation: pages that theme-similar users visited
/// (publicly) which `user` has not, scored by Σ neighbour-similarity ×
/// log(1 + neighbour's visit count).
pub fn recommend_pages(memex: &Memex, user: u32, k: usize) -> Vec<(u32, f64)> {
    let neighbours = similar_surfers(memex, user, 5);
    let mine: HashSet<u32> = memex
        .server
        .trails
        .user_pages(user, 0)
        .into_iter()
        .collect();
    let mut scores: HashMap<u32, f64> = HashMap::new();
    for (v, sim) in neighbours {
        if sim <= 0.0 {
            continue;
        }
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for visit in memex
            .server
            .trails
            .visits()
            .iter()
            .filter(|x| x.user == v && x.public)
        {
            *counts.entry(visit.page).or_insert(0) += 1;
        }
        for (page, c) in counts {
            if !mine.contains(&page) {
                *scores.entry(page).or_insert(0.0) += sim * f64::from(c + 1).ln();
            }
        }
    }
    let mut out: Vec<(u32, f64)> = scores.into_iter().collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memex::MemexOptions;
    use memex_server::events::{ClientEvent, VisitEvent};
    use memex_web::corpus::{Corpus, CorpusConfig};
    use std::sync::Arc;

    /// Two pairs of users browsing two disjoint topics, with bookmarks so
    /// themes exist; pair members visit *disjoint* page sets.
    fn world() -> Memex {
        let corpus = Arc::new(Corpus::generate(CorpusConfig {
            num_topics: 2,
            pages_per_topic: 40,
            ..CorpusConfig::default()
        }));
        let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).unwrap();
        for u in 0..4 {
            memex.register_user(u, &format!("u{u}")).unwrap();
        }
        let mut time = 0u64;
        for user in 0..4u32 {
            let topic = (user % 2) as usize;
            let pages = corpus.pages_of_topic(topic);
            // Disjoint halves per pair member.
            let half: Vec<u32> = pages
                .iter()
                .copied()
                .filter(|p| p % 2 == user / 2)
                .take(10)
                .collect();
            for &p in &half {
                time += 1;
                memex.submit(ClientEvent::Visit(VisitEvent {
                    user,
                    session: 0,
                    page: p,
                    url: corpus.pages[p as usize].url.clone(),
                    time,
                    referrer: None,
                }));
            }
            for &p in half.iter().take(4) {
                memex.submit(ClientEvent::Bookmark {
                    user,
                    page: p,
                    url: corpus.pages[p as usize].url.clone(),
                    folder: format!("/{}", corpus.topic_names[topic]),
                    time,
                });
            }
        }
        memex.run_demons().unwrap();
        memex
    }

    #[test]
    fn theme_profiles_pair_users_with_zero_url_overlap() {
        let memex = world();
        // Users 0 and 2 share topic 0 but visited disjoint pages.
        assert_eq!(url_jaccard(&memex, 0, 2), 0.0, "disjoint by construction");
        let similar = similar_surfers(&memex, 0, 3);
        assert_eq!(
            similar[0].0, 2,
            "theme profile still finds the soulmate: {similar:?}"
        );
        assert!(similar[0].1 > 0.5);
        // The URL baseline is blind here.
        let by_url = similar_surfers_by_url(&memex, 0, 3);
        assert!(by_url.iter().all(|&(_, s)| s == 0.0));
    }

    #[test]
    fn profiles_are_normalised_weights() {
        let memex = world();
        let p = theme_profile(&memex, 0);
        assert!(!p.is_empty());
        for &w in p.values() {
            assert!(w > 0.0 && w <= 1.0 + 1e-9);
        }
        // Root accumulates everything assigned, so it carries max weight.
        let max = p.values().cloned().fold(0.0f64, f64::max);
        let root_weight = p
            .get(&memex_learn::taxonomy::Taxonomy::ROOT)
            .copied()
            .unwrap_or(0.0);
        assert!((root_weight - max).abs() < 1e-9);
    }

    #[test]
    fn recommendations_come_from_the_shared_topic() {
        let memex = world();
        let recs = recommend_pages(&memex, 0, 5);
        assert!(!recs.is_empty());
        let corpus = memex.corpus.clone();
        for (page, _) in &recs {
            assert_eq!(corpus.topic_of(*page), 0, "recommendation off-topic");
        }
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded() {
        let memex = world();
        for a in 0..4 {
            for b in 0..4 {
                let ab = url_jaccard(&memex, a, b);
                assert!((0.0..=1.0).contains(&ab));
                assert_eq!(ab, url_jaccard(&memex, b, a));
            }
            assert_eq!(url_jaccard(&memex, a, a), 1.0);
        }
        assert_eq!(
            url_jaccard(&memex, 99, 98),
            0.0,
            "unknown users have empty trails"
        );
    }
}
