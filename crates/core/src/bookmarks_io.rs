//! Netscape bookmark-file import/export (paper §2): "Existing bookmarks
//! from Netscape or Explorer can be imported into Memex's editable
//! tree-structured topic view; conversely Memex can export back to these
//! browsers."
//!
//! The format is the venerable `NETSCAPE-Bookmark-file-1` HTML dialect:
//! nested `<DL>` lists, `<H3>` folder headings, `<A HREF>` items.

/// A parsed bookmark entry: folder path components + URL + title.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookmarkEntry {
    pub folder_path: Vec<String>,
    pub url: String,
    pub title: String,
}

/// Export entries to Netscape bookmark HTML. Entries are grouped by their
/// folder paths; folder order follows first appearance.
pub fn export_netscape(entries: &[BookmarkEntry]) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE NETSCAPE-Bookmark-file-1>\n");
    out.push_str("<!-- This is an automatically generated file. -->\n");
    out.push_str("<TITLE>Bookmarks</TITLE>\n<H1>Bookmarks</H1>\n<DL><p>\n");
    // Build a folder tree.
    #[derive(Default)]
    struct Node {
        children: Vec<(String, usize)>,
        items: Vec<(String, String)>,
    }
    let mut nodes: Vec<Node> = vec![Node::default()];
    for e in entries {
        let mut cur = 0usize;
        for comp in &e.folder_path {
            cur = match nodes[cur].children.iter().find(|(n, _)| n == comp) {
                Some(&(_, idx)) => idx,
                None => {
                    let idx = nodes.len();
                    nodes.push(Node::default());
                    nodes[cur].children.push((comp.clone(), idx));
                    idx
                }
            };
        }
        nodes[cur].items.push((e.url.clone(), e.title.clone()));
    }
    fn render(nodes: &[Node], idx: usize, depth: usize, out: &mut String) {
        let pad = "    ".repeat(depth);
        for (url, title) in &nodes[idx].items {
            out.push_str(&format!(
                "{pad}<DT><A HREF=\"{}\">{}</A>\n",
                escape(url),
                escape(title)
            ));
        }
        for (name, child) in &nodes[idx].children {
            out.push_str(&format!(
                "{pad}<DT><H3>{}</H3>\n{pad}<DL><p>\n",
                escape(name)
            ));
            render(nodes, *child, depth + 1, out);
            out.push_str(&format!("{pad}</DL><p>\n"));
        }
    }
    render(&nodes, 0, 1, &mut out);
    out.push_str("</DL><p>\n");
    out
}

/// Import a Netscape bookmark file. Tolerant of case, attribute noise and
/// missing close tags (real 1999 exports were messy).
pub fn import_netscape(html: &str) -> Vec<BookmarkEntry> {
    let mut entries = Vec::new();
    let mut path: Vec<String> = Vec::new();
    // Pending folder name: an <H3> opens a folder that becomes active at
    // the following <DL>.
    let mut pending_folder: Option<String> = None;
    let lower = html.to_ascii_lowercase();
    let mut i = 0usize;
    while let Some(rel) = lower[i..].find('<') {
        let tag_start = i + rel;
        let rest = &lower[tag_start..];
        if rest.starts_with("<h3") {
            // Folder heading: text up to </h3>.
            if let Some(gt) = lower[tag_start..].find('>') {
                let text_start = tag_start + gt + 1;
                let end = lower[text_start..]
                    .find("</h3")
                    .map(|e| text_start + e)
                    .unwrap_or(html.len());
                pending_folder = Some(decode(html[text_start..end].trim()));
                i = end;
                continue;
            }
            break;
        } else if rest.starts_with("<dl") {
            path.push(
                pending_folder
                    .take()
                    .unwrap_or_else(|| "Imported".to_string()),
            );
            i = tag_start + 3;
        } else if rest.starts_with("</dl") {
            path.pop();
            i = tag_start + 4;
        } else if rest.starts_with("<a") {
            // href attribute.
            let Some(gt) = lower[tag_start..].find('>') else {
                break;
            };
            let tag = &html[tag_start..tag_start + gt];
            let url = attr_value(tag, "href")
                .map(|u| decode(&u))
                .unwrap_or_default();
            let text_start = tag_start + gt + 1;
            let end = lower[text_start..]
                .find("</a")
                .map(|e| text_start + e)
                .unwrap_or(html.len());
            let title = decode(html[text_start..end].trim());
            if !url.is_empty() {
                // Drop the synthetic top-level "Bookmarks" list level.
                let folder_path: Vec<String> = path.iter().skip(1).cloned().collect();
                entries.push(BookmarkEntry {
                    folder_path,
                    url,
                    title,
                });
            }
            i = end;
        } else {
            i = tag_start + 1;
        }
    }
    entries
}

fn attr_value(tag: &str, name: &str) -> Option<String> {
    let lower = tag.to_ascii_lowercase();
    let pos = lower.find(name)?;
    let after = &tag[pos + name.len()..];
    let eq = after.find('=')?;
    let rest = after[eq + 1..].trim_start();
    let quote = rest.chars().next()?;
    if quote == '"' || quote == '\'' {
        let inner = &rest[1..];
        let end = inner.find(quote)?;
        Some(inner[..end].to_string())
    } else {
        let end = rest
            .find(|c: char| c.is_whitespace() || c == '>')
            .unwrap_or(rest.len());
        Some(rest[..end].to_string())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn decode(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &[&str], url: &str, title: &str) -> BookmarkEntry {
        BookmarkEntry {
            folder_path: path.iter().map(|s| s.to_string()).collect(),
            url: url.to_string(),
            title: title.to_string(),
        }
    }

    #[test]
    fn round_trip_preserves_entries() {
        let entries = vec![
            entry(
                &["Music", "Western Classical"],
                "http://bach.example/",
                "Bach archive",
            ),
            entry(
                &["Music", "Western Classical"],
                "http://handel.example/",
                "Handel",
            ),
            entry(&["Music"], "http://allmusic.example/", "All music"),
            entry(&["Cycling"], "http://mtb.example/", "Mountain bikes"),
            entry(&[], "http://root.example/", "Unfiled"),
        ];
        let html = export_netscape(&entries);
        let back = import_netscape(&html);
        assert_eq!(back.len(), entries.len());
        for e in &entries {
            assert!(back.contains(e), "missing {e:?}\n{html}");
        }
    }

    #[test]
    fn imports_a_real_netscape_fragment() {
        let html = r#"<!DOCTYPE NETSCAPE-Bookmark-file-1>
<TITLE>Bookmarks</TITLE>
<H1>Bookmarks for Soumen</H1>
<DL><p>
    <DT><H3 ADD_DATE="946684800">Music</H3>
    <DL><p>
        <DT><A HREF="http://www.jsbach.org/" ADD_DATE="946684800">J.S. Bach Home Page</A>
        <DT><H3>Western Classical</H3>
        <DL><p>
            <DT><A HREF="http://classical.example/">Classical Net</A>
        </DL><p>
    </DL><p>
    <DT><A HREF="http://www.vldb.org/">VLDB</A>
</DL><p>"#;
        let entries = import_netscape(html);
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries[0],
            entry(&["Music"], "http://www.jsbach.org/", "J.S. Bach Home Page")
        );
        assert_eq!(
            entries[1],
            entry(
                &["Music", "Western Classical"],
                "http://classical.example/",
                "Classical Net"
            )
        );
        assert_eq!(entries[2], entry(&[], "http://www.vldb.org/", "VLDB"));
    }

    #[test]
    fn escaping_round_trips() {
        let entries = vec![entry(
            &["A & B"],
            "http://x.example/?a=1&b=2",
            "Q <&> \"quotes\"",
        )];
        let back = import_netscape(&export_netscape(&entries));
        assert_eq!(back, entries);
    }

    #[test]
    fn tolerates_garbage() {
        assert!(import_netscape("").is_empty());
        assert!(import_netscape("<a>no href</a>").is_empty());
        let _ = import_netscape("<dl><dt><a href='http://x'>x"); // unterminated
    }
}
