//! The servlet surface (paper §3: "the server consists of servlets that
//! perform various archiving and mining functions as triggered by client
//! action"). The demo tunnelled these over HTTP; here the same
//! request/response vocabulary dispatches in-process, which keeps the
//! boundary (and its tests) without the wire.
//!
//! Requests are classified into *reads* (pure queries, [`dispatch_read`],
//! `&Memex`) and *writes* (mutations, [`dispatch_write`], `&mut Memex`) so
//! the serving layer can answer many reads in parallel behind an `RwLock`
//! while writes serialise. [`dispatch`] remains as a unified compatibility
//! shim for single-threaded callers.

use memex_learn::taxonomy::TopicId;
use memex_server::events::ClientEvent;

use crate::bookmarks_io::{export_netscape, import_netscape, BookmarkEntry};
use crate::memex::{BillLine, Memex, RecallHit};

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Request {
    /// Ingest a raw client event (visit/bookmark/mode).
    Event(ClientEvent),
    /// Full-text recall over the user's own history (Q1).
    Recall {
        user: u32,
        query: String,
        since: u64,
        until: u64,
        k: usize,
    },
    /// Replay the topical browsing context (Fig. 2 trail tab).
    TrailReplay {
        user: u32,
        folder: TopicId,
        since: u64,
        max_pages: usize,
    },
    /// Topic-organised discovery of new authoritative pages (Q3).
    WhatsNew {
        user: u32,
        folder: TopicId,
        since: u64,
        k: usize,
    },
    /// ISP bill breakdown (Q4).
    Bill { user: u32, since: u64, until: u64 },
    /// Similar surfers by theme profile (Q6).
    SimilarSurfers { user: u32, k: usize },
    /// Collaborative page recommendations.
    Recommend { user: u32, k: usize },
    /// Import a Netscape bookmark file into the user's folder space.
    ImportBookmarks { user: u32, html: String, time: u64 },
    /// Export the user's folder space back to Netscape format.
    ExportBookmarks { user: u32 },
    /// Propose folders (clusters with names) for the user's loose pages.
    ProposeFolders { user: u32, k: usize },
    /// Operational metrics snapshot across every subsystem the server owns
    /// (store, index, pipeline) plus servlet latencies.
    Stats,
    /// Completed request traces from the flight recorder (`slow_only:
    /// false`) or the slow-request log (`slow_only: true`), newest first,
    /// at most `limit` of them.
    Traces { slow_only: bool, limit: usize },
}

impl Request {
    /// Stable name of this request variant, used as the metric suffix in
    /// `servlet.<name>.latency`.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Event(_) => "event",
            Request::Recall { .. } => "recall",
            Request::TrailReplay { .. } => "trail_replay",
            Request::WhatsNew { .. } => "whats_new",
            Request::Bill { .. } => "bill",
            Request::SimilarSurfers { .. } => "similar_surfers",
            Request::Recommend { .. } => "recommend",
            Request::ImportBookmarks { .. } => "import_bookmarks",
            Request::ExportBookmarks { .. } => "export_bookmarks",
            Request::ProposeFolders { .. } => "propose_folders",
            Request::Stats => "stats",
            Request::Traces { .. } => "traces",
        }
    }

    /// Precomputed `servlet.<name>.latency` metric name for this variant,
    /// so the hot dispatch path never allocates a `format!` string.
    pub fn latency_metric(&self) -> &'static str {
        match self {
            Request::Event(_) => "servlet.event.latency",
            Request::Recall { .. } => "servlet.recall.latency",
            Request::TrailReplay { .. } => "servlet.trail_replay.latency",
            Request::WhatsNew { .. } => "servlet.whats_new.latency",
            Request::Bill { .. } => "servlet.bill.latency",
            Request::SimilarSurfers { .. } => "servlet.similar_surfers.latency",
            Request::Recommend { .. } => "servlet.recommend.latency",
            Request::ImportBookmarks { .. } => "servlet.import_bookmarks.latency",
            Request::ExportBookmarks { .. } => "servlet.export_bookmarks.latency",
            Request::ProposeFolders { .. } => "servlet.propose_folders.latency",
            Request::Stats => "servlet.stats.latency",
            Request::Traces { .. } => "servlet.traces.latency",
        }
    }

    /// `true` when the request is a pure query: it can be answered with
    /// `&Memex` (shared, concurrent) and is safe to retry or serve from a
    /// cache. Mutating requests (`Event`, `ImportBookmarks`) are writes.
    pub fn is_read(&self) -> bool {
        !matches!(self, Request::Event(_) | Request::ImportBookmarks { .. })
    }

    /// Split into the typed read/write halves consumed by
    /// [`dispatch_read`] / [`dispatch_write`].
    pub fn classify(self) -> Classified {
        if self.is_read() {
            Classified::Read(ReadRequest(self))
        } else {
            Classified::Write(WriteRequest(self))
        }
    }

    /// The user id this request is scoped to, or `None` for
    /// community-scoped requests (`Stats`, `Traces`) that aggregate over
    /// the whole deployment. A sharded serving layer routes `Some(user)`
    /// requests to shard `user % N` and answers `None` requests from an
    /// aggregation tier spanning every shard.
    pub fn shard_key(&self) -> Option<u32> {
        match self {
            Request::Event(e) => Some(e.user()),
            Request::Recall { user, .. }
            | Request::TrailReplay { user, .. }
            | Request::WhatsNew { user, .. }
            | Request::Bill { user, .. }
            | Request::SimilarSurfers { user, .. }
            | Request::Recommend { user, .. }
            | Request::ImportBookmarks { user, .. }
            | Request::ExportBookmarks { user }
            | Request::ProposeFolders { user, .. } => Some(*user),
            Request::Stats | Request::Traces { .. } => None,
        }
    }
}

/// A request proven by [`Request::classify`] to be a pure query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReadRequest(Request);

/// A request proven by [`Request::classify`] to mutate the archive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WriteRequest(Request);

/// Outcome of [`Request::classify`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Classified {
    Read(ReadRequest),
    Write(WriteRequest),
}

impl ReadRequest {
    /// The underlying request (always satisfies `is_read()`).
    pub fn as_request(&self) -> &Request {
        &self.0
    }

    pub fn into_request(self) -> Request {
        self.0
    }

    /// See [`Request::shard_key`]. `None` for `Stats`/`Traces`.
    pub fn shard_key(&self) -> Option<u32> {
        self.0.shard_key()
    }
}

impl WriteRequest {
    /// The underlying request (never satisfies `is_read()`).
    pub fn as_request(&self) -> &Request {
        &self.0
    }

    pub fn into_request(self) -> Request {
        self.0
    }

    /// The user id this write is scoped to. Every write variant (`Event`,
    /// `ImportBookmarks`) carries one, so unlike [`Request::shard_key`]
    /// this is total.
    pub fn shard_key(&self) -> u32 {
        // Both write variants are user-scoped; `unwrap_or` keeps the
        // serving layer panic-free if a community-scoped write ever
        // appears (it would route to shard 0).
        self.0.shard_key().unwrap_or(0)
    }
}

/// The matching responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Ack {
        archived: bool,
    },
    Recall(Vec<RecallHit>),
    TrailReplay(memex_graph::trail::TrailContext),
    WhatsNew(Vec<(u32, f64)>),
    Bill(Vec<BillLine>),
    SimilarSurfers(Vec<(u32, f64)>),
    Recommend(Vec<(u32, f64)>),
    Imported {
        /// Bookmarks resolved *and* accepted by the archive.
        archived: usize,
        /// Bookmarks resolved but rejected by the archive (e.g. the user
        /// is in privacy mode, so nothing was recorded).
        rejected: usize,
        /// Entries whose URL is unknown to the (simulated) web.
        unresolved: usize,
    },
    Exported(String),
    Proposals(Vec<crate::memex::FolderProposal>),
    Stats(memex_obs::Snapshot),
    /// Completed span trees pulled from the tracer (see
    /// [`Request::Traces`]).
    Traces(Vec<memex_obs::TraceData>),
    Error(String),
    /// Load-shed verdict from the serving layer: the request was *not*
    /// dispatched because the server's in-flight admission limit was hit.
    /// Clients may retry after backing off; nothing was mutated.
    Overloaded {
        in_flight: u32,
        limit: u32,
    },
}

/// Dispatch one request against the system: classify, then route to
/// [`dispatch_read`] or [`dispatch_write`]. Compatibility shim for
/// single-threaded callers that hold `&mut Memex` anyway.
pub fn dispatch(memex: &mut Memex, request: Request) -> Response {
    match request.classify() {
        Classified::Read(r) => dispatch_read(memex, r),
        Classified::Write(w) => dispatch_write(memex, w),
    }
}

/// Answer a pure query. Takes `&Memex`, so any number of these can run
/// concurrently under a read lock. Records `servlet.<variant>.latency`.
pub fn dispatch_read(memex: &Memex, request: ReadRequest) -> Response {
    let request = request.into_request();
    let _span = memex
        .registry()
        .histogram(request.latency_metric())
        .start_span();
    // Child span named after the variant; deeper layers (index, store)
    // attach their own children to it through the thread-local trace.
    let _trace = memex_obs::trace::span(request.name());
    match request {
        Request::Recall {
            user,
            query,
            since,
            until,
            k,
        } => match memex.recall(user, &query, since, until, k) {
            Ok(hits) => Response::Recall(hits),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::TrailReplay {
            user,
            folder,
            since,
            max_pages,
        } => Response::TrailReplay(memex.topic_context(user, folder, since, max_pages)),
        Request::WhatsNew {
            user,
            folder,
            since,
            k,
        } => Response::WhatsNew(memex.whats_new(user, folder, since, k)),
        Request::Bill { user, since, until } => Response::Bill(memex.bill(user, since, until)),
        Request::SimilarSurfers { user, k } => {
            Response::SimilarSurfers(memex.similar_surfers(user, k))
        }
        Request::Recommend { user, k } => Response::Recommend(memex.recommend_pages(user, k)),
        Request::ProposeFolders { user, k } => Response::Proposals(memex.propose_folders(user, k)),
        Request::Stats => {
            // Fold in the process-global registry: free-function subsystems
            // (e.g. the focused crawler) report there, not on the server.
            let mut snap = memex.registry().snapshot();
            snap.absorb(memex_obs::global().snapshot());
            Response::Stats(snap)
        }
        Request::Traces { slow_only, limit } => {
            Response::Traces(memex.tracer().collect(slow_only, limit))
        }
        Request::ExportBookmarks { user } => {
            let fs = memex.folder_space_ref(user);
            let entries: Vec<BookmarkEntry> = fs
                .assignments()
                .filter(|(_, a)| a.confirmed)
                .map(|(page, a)| {
                    let p = &memex.corpus.pages[page as usize];
                    BookmarkEntry {
                        folder_path: fs
                            .taxonomy
                            .path(a.folder)
                            .split('/')
                            .filter(|c| !c.is_empty())
                            .map(str::to_string)
                            .collect(),
                        url: p.url.clone(),
                        title: p.title.clone(),
                    }
                })
                .collect();
            Response::Exported(export_netscape(&entries))
        }
        // Classification guarantees these never reach the read path; answer
        // with a typed error rather than panicking in the serving layer.
        Request::Event(_) | Request::ImportBookmarks { .. } => {
            Response::Error("internal: write request routed to dispatch_read".to_string())
        }
    }
}

/// Apply a mutation and bring every query-visible cache up to date (demons
/// plus [`Memex::refresh`]) before the write lock is released, so readers
/// admitted afterwards see a fully consistent archive. Records
/// `servlet.<variant>.latency`.
pub fn dispatch_write(memex: &mut Memex, request: WriteRequest) -> Response {
    let _span = memex
        .registry()
        .histogram(request.as_request().latency_metric())
        .start_span();
    let _trace = memex_obs::trace::span(request.as_request().name());
    let verdict = apply_write(memex, &request);
    if let Err(e) = memex.run_demons() {
        return Response::Error(e.to_string());
    }
    verdict
}

/// Apply a write's state mutation *without* running the demons (and so
/// without updating query-visible caches). The verdict response (`Ack` /
/// `Imported`) is computed here, at ingest time, exactly as
/// [`dispatch_write`] would.
///
/// This is the replication half of sharded serving: a shard catching up on
/// writes that originated elsewhere applies each pending write with
/// `apply_write`, then runs the demons **once** for the whole batch —
/// demon order within a batch only affects unconfirmed folder-classifier
/// guesses, which no query answer depends on (confirmed assignments are
/// authoritative everywhere; `bill`/`topic_filter` reclassify on the fly).
/// The owner shard, which must answer reads immediately, keeps using
/// [`dispatch_write`].
pub fn apply_write(memex: &mut Memex, request: &WriteRequest) -> Response {
    match request.as_request() {
        Request::Event(e) => Response::Ack {
            archived: memex.submit(e.clone()),
        },
        Request::ImportBookmarks { user, html, time } => {
            let entries = import_netscape(html);
            let mut archived = 0usize;
            let mut rejected = 0usize;
            let mut unresolved = 0usize;
            for e in &entries {
                match memex.resolve_url(&e.url) {
                    Some(page) => {
                        let folder = if e.folder_path.is_empty() {
                            "/Imported".to_string()
                        } else {
                            format!("/{}", e.folder_path.join("/"))
                        };
                        let accepted = memex.submit(ClientEvent::Bookmark {
                            user: *user,
                            page,
                            url: e.url.clone(),
                            folder,
                            time: *time,
                        });
                        if accepted {
                            archived += 1;
                        } else {
                            rejected += 1;
                        }
                    }
                    None => unresolved += 1,
                }
            }
            Response::Imported {
                archived,
                rejected,
                unresolved,
            }
        }
        // Classification guarantees these never reach the write path.
        _ => Response::Error("internal: read request routed to dispatch_write".to_string()),
    }
}
