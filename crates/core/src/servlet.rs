//! The servlet surface (paper §3: "the server consists of servlets that
//! perform various archiving and mining functions as triggered by client
//! action"). The demo tunnelled these over HTTP; here the same
//! request/response vocabulary dispatches in-process, which keeps the
//! boundary (and its tests) without the wire.

use memex_learn::taxonomy::TopicId;
use memex_server::events::ClientEvent;

use crate::bookmarks_io::{export_netscape, import_netscape, BookmarkEntry};
use crate::memex::{BillLine, Memex, RecallHit};

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ingest a raw client event (visit/bookmark/mode).
    Event(ClientEvent),
    /// Full-text recall over the user's own history (Q1).
    Recall {
        user: u32,
        query: String,
        since: u64,
        until: u64,
        k: usize,
    },
    /// Replay the topical browsing context (Fig. 2 trail tab).
    TrailReplay {
        user: u32,
        folder: TopicId,
        since: u64,
        max_pages: usize,
    },
    /// Topic-organised discovery of new authoritative pages (Q3).
    WhatsNew {
        user: u32,
        folder: TopicId,
        since: u64,
        k: usize,
    },
    /// ISP bill breakdown (Q4).
    Bill { user: u32, since: u64, until: u64 },
    /// Similar surfers by theme profile (Q6).
    SimilarSurfers { user: u32, k: usize },
    /// Collaborative page recommendations.
    Recommend { user: u32, k: usize },
    /// Import a Netscape bookmark file into the user's folder space.
    ImportBookmarks { user: u32, html: String, time: u64 },
    /// Export the user's folder space back to Netscape format.
    ExportBookmarks { user: u32 },
    /// Propose folders (clusters with names) for the user's loose pages.
    ProposeFolders { user: u32, k: usize },
    /// Operational metrics snapshot across every subsystem the server owns
    /// (store, index, pipeline) plus servlet latencies.
    Stats,
}

impl Request {
    /// Stable name of this request variant, used as the metric suffix in
    /// `servlet.<name>.latency`.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Event(_) => "event",
            Request::Recall { .. } => "recall",
            Request::TrailReplay { .. } => "trail_replay",
            Request::WhatsNew { .. } => "whats_new",
            Request::Bill { .. } => "bill",
            Request::SimilarSurfers { .. } => "similar_surfers",
            Request::Recommend { .. } => "recommend",
            Request::ImportBookmarks { .. } => "import_bookmarks",
            Request::ExportBookmarks { .. } => "export_bookmarks",
            Request::ProposeFolders { .. } => "propose_folders",
            Request::Stats => "stats",
        }
    }
}

/// The matching responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Ack {
        archived: bool,
    },
    Recall(Vec<RecallHit>),
    TrailReplay(memex_graph::trail::TrailContext),
    WhatsNew(Vec<(u32, f64)>),
    Bill(Vec<BillLine>),
    SimilarSurfers(Vec<(u32, f64)>),
    Recommend(Vec<(u32, f64)>),
    Imported {
        bookmarks: usize,
        unresolved: usize,
    },
    Exported(String),
    Proposals(Vec<crate::memex::FolderProposal>),
    Stats(memex_obs::Snapshot),
    Error(String),
    /// Load-shed verdict from the serving layer: the request was *not*
    /// dispatched because the server's in-flight admission limit was hit.
    /// Clients may retry after backing off; nothing was mutated.
    Overloaded {
        in_flight: u32,
        limit: u32,
    },
}

/// Dispatch one request against the system. Every dispatch records its
/// latency into `servlet.<variant>.latency` on the server's registry.
pub fn dispatch(memex: &mut Memex, request: Request) -> Response {
    let _span = memex
        .registry()
        .histogram(&format!("servlet.{}.latency", request.name()))
        .start_span();
    match request {
        Request::Event(e) => Response::Ack {
            archived: memex.submit(e),
        },
        Request::Recall {
            user,
            query,
            since,
            until,
            k,
        } => match memex.recall(user, &query, since, until, k) {
            Ok(hits) => Response::Recall(hits),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::TrailReplay {
            user,
            folder,
            since,
            max_pages,
        } => Response::TrailReplay(memex.topic_context(user, folder, since, max_pages)),
        Request::WhatsNew {
            user,
            folder,
            since,
            k,
        } => Response::WhatsNew(memex.whats_new(user, folder, since, k)),
        Request::Bill { user, since, until } => Response::Bill(memex.bill(user, since, until)),
        Request::SimilarSurfers { user, k } => {
            Response::SimilarSurfers(memex.similar_surfers(user, k))
        }
        Request::Recommend { user, k } => Response::Recommend(memex.recommend_pages(user, k)),
        Request::ImportBookmarks { user, html, time } => {
            let entries = import_netscape(&html);
            let mut imported = 0usize;
            let mut unresolved = 0usize;
            for e in &entries {
                match memex.resolve_url(&e.url) {
                    Some(page) => {
                        let folder = if e.folder_path.is_empty() {
                            "/Imported".to_string()
                        } else {
                            format!("/{}", e.folder_path.join("/"))
                        };
                        memex.submit(ClientEvent::Bookmark {
                            user,
                            page,
                            url: e.url.clone(),
                            folder,
                            time,
                        });
                        imported += 1;
                    }
                    None => unresolved += 1,
                }
            }
            Response::Imported {
                bookmarks: imported,
                unresolved,
            }
        }
        Request::ProposeFolders { user, k } => Response::Proposals(memex.propose_folders(user, k)),
        Request::Stats => {
            // Fold in the process-global registry: free-function subsystems
            // (e.g. the focused crawler) report there, not on the server.
            let mut snap = memex.registry().snapshot();
            snap.absorb(memex_obs::global().snapshot());
            Response::Stats(snap)
        }
        Request::ExportBookmarks { user } => {
            let urls: Vec<(u32, String)> = {
                let fs = memex.folder_space(user);
                fs.assignments()
                    .filter(|(_, a)| a.confirmed)
                    .map(|(page, a)| (page, fs.taxonomy.path(a.folder)))
                    .collect()
            };
            let entries: Vec<BookmarkEntry> = urls
                .into_iter()
                .map(|(page, path)| {
                    let p = &memex.corpus.pages[page as usize];
                    BookmarkEntry {
                        folder_path: path
                            .split('/')
                            .filter(|c| !c.is_empty())
                            .map(str::to_string)
                            .collect(),
                        url: p.url.clone(),
                        title: p.title.clone(),
                    }
                })
                .collect();
            Response::Exported(export_netscape(&entries))
        }
    }
}
