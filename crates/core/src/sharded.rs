//! N-way sharding of per-user Memex state — the paper's Fig. 3
//! single-producer architecture generalized to N producers.
//!
//! [`ShardedMemex`] owns N full [`Memex`] replicas over the same simulated
//! web. Each user is owned by shard `user % N`: their writes apply there
//! *eagerly* (ingest + demons, exactly like a single Memex) and replicate
//! to the other shards *lazily* through an ordered write log. A shard
//! catches up before answering any request, so every answer it produces is
//! computed over the full community history — required because almost every
//! query mixes per-user state with community state (BM25 corpus statistics,
//! community trails behind `whats_new`/`bill`, cross-user theme profiles).
//!
//! The payoff is in *how* a shard catches up: pending writes are applied
//! state-only ([`servlet::apply_write`]) and the demons run **once** per
//! batch. The demon sweep (fetch/index/trail/classify/refresh) dominates
//! per-write cost, so on a write-heavy workload each shard performs ~1/N of
//! the sweeps a single Memex would — that is the write-scaling mechanism
//! the serving layer (`memex-net`) exploits with one `RwLock` per shard.
//!
//! Batching is answer-preserving: demon batch boundaries only influence
//! *unconfirmed* folder-classifier guesses, and no query answer depends on
//! those (confirmed assignments are authoritative; `bill` and the topic
//! filter reclassify on the fly; `ProposeFolders` clusters only unfiled
//! pages; themes rebuild from bookmarks). `tests/sharded_equivalence.rs`
//! pins this with a proptest: random multi-user request sequences through
//! `ShardedMemex{n=4}` and a single `Memex` must yield identical answer
//! streams.
//!
//! Community-scoped requests (`Stats`, `Traces` — [`Request::shard_key`]
//! returns `None`) are answered from an aggregation tier: merged metric
//! snapshots / concatenated trace collections across every shard.

use memex_store::error::StoreResult;

use std::collections::VecDeque;

use crate::memex::Memex;
use crate::servlet::{self, Classified, ReadRequest, Request, Response, WriteRequest};

/// N Memex replicas behind user-keyed routing. See the module docs.
pub struct ShardedMemex {
    shards: Vec<Memex>,
    /// Ordered log of every accepted write (the replication bus). Entries
    /// below every shard's cursor are compacted away.
    log: VecDeque<WriteRequest>,
    /// Absolute index of `log[0]` in the all-time write sequence.
    log_base: usize,
    /// Per-shard absolute cursor: how many log entries the shard applied.
    applied: Vec<usize>,
}

impl ShardedMemex {
    /// Wrap `shards` (at least one) behind user-keyed routing. The shards
    /// must be *identical replicas*: built over the same corpus with the
    /// same options and the same registered users, with identical event
    /// histories (freshly built is the common case).
    pub fn new(shards: Vec<Memex>) -> ShardedMemex {
        assert!(!shards.is_empty(), "ShardedMemex requires >= 1 shard");
        let n = shards.len();
        ShardedMemex {
            shards,
            log: VecDeque::new(),
            log_base: 0,
            applied: vec![0; n],
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `user`.
    pub fn shard_of(&self, user: u32) -> usize {
        (user as usize) % self.shards.len()
    }

    /// Register `user` on every shard (registration is community-visible
    /// metadata, like the corpus itself).
    pub fn register_user(&mut self, user: u32, name: &str) -> StoreResult<()> {
        for shard in &mut self.shards {
            shard.register_user(user, name)?;
        }
        Ok(())
    }

    /// Classify and route one request, exactly like [`servlet::dispatch`]
    /// against a single Memex.
    pub fn dispatch(&mut self, request: Request) -> Response {
        match request.classify() {
            Classified::Read(r) => self.dispatch_read(r),
            Classified::Write(w) => self.dispatch_write(w),
        }
    }

    /// Answer a query. User-scoped reads route to the owning shard (after
    /// it catches up on the write log); community-scoped reads aggregate
    /// across all shards. Takes `&mut self` because catch-up mutates the
    /// routed shard — the concurrent serving layer in `memex-net` holds
    /// per-shard locks instead.
    pub fn dispatch_read(&mut self, request: ReadRequest) -> Response {
        match request.shard_key() {
            Some(user) => {
                let s = self.shard_of(user);
                if let Err(e) = self.catch_up(s) {
                    return Response::Error(e.to_string());
                }
                servlet::dispatch_read(&self.shards[s], request)
            }
            None => self.dispatch_community(request),
        }
    }

    /// Apply a mutation on the owning shard (eagerly, demons included) and
    /// append it to the replication log for the others.
    pub fn dispatch_write(&mut self, request: WriteRequest) -> Response {
        let s = self.shard_of(request.shard_key());
        // Older writes from other users first: every shard applies the log
        // in one global order.
        if let Err(e) = self.catch_up(s) {
            return Response::Error(e.to_string());
        }
        let verdict = servlet::dispatch_write(&mut self.shards[s], request.clone());
        self.log.push_back(request);
        self.applied[s] = self.log_base + self.log.len();
        self.compact();
        verdict
    }

    /// Bring shard `s` up to date: apply every pending write state-only,
    /// then run the demons once for the whole batch.
    fn catch_up(&mut self, s: usize) -> StoreResult<()> {
        let end = self.log_base + self.log.len();
        let from = self.applied[s];
        if from == end {
            return Ok(());
        }
        for i in (from - self.log_base)..self.log.len() {
            let w = self.log[i].clone();
            let _ = servlet::apply_write(&mut self.shards[s], &w);
        }
        self.shards[s].run_demons()?;
        self.applied[s] = end;
        self.compact();
        Ok(())
    }

    /// Drop log entries every shard has applied.
    fn compact(&mut self) {
        let min = self.applied.iter().copied().min().unwrap_or(self.log_base);
        while self.log_base < min && !self.log.is_empty() {
            self.log.pop_front();
            self.log_base += 1;
        }
    }

    /// Community-scoped requests: the aggregation tier.
    fn dispatch_community(&mut self, request: ReadRequest) -> Response {
        let request = request.into_request();
        let _span = self.shards[0]
            .registry()
            .histogram(request.latency_metric())
            .start_span();
        let _trace = memex_obs::trace::span(request.name());
        match request {
            Request::Stats => {
                let mut snap = self.shards[0].registry().snapshot();
                for shard in &self.shards[1..] {
                    snap.absorb(shard.registry().snapshot());
                }
                snap.absorb(memex_obs::global().snapshot());
                Response::Stats(snap)
            }
            Request::Traces { slow_only, limit } => {
                let mut traces = Vec::new();
                for shard in &self.shards {
                    traces.extend(shard.tracer().collect(slow_only, limit));
                }
                traces.truncate(limit);
                Response::Traces(traces)
            }
            other => {
                // `shard_key() == None` only holds for Stats/Traces today;
                // a future community query added without aggregation
                // support degrades to a typed error, not a panic.
                Response::Error(format!(
                    "internal: community aggregation not implemented for {}",
                    other.name()
                ))
            }
        }
    }

    /// Catch every shard up on the write log (e.g. before tearing down).
    pub fn quiesce(&mut self) -> StoreResult<()> {
        for s in 0..self.shards.len() {
            self.catch_up(s)?;
        }
        Ok(())
    }

    /// Quiesce and unwrap the replicas.
    pub fn into_shards(mut self) -> StoreResult<Vec<Memex>> {
        self.quiesce()?;
        Ok(self.shards)
    }

    /// Borrow shard `i` (for assertions in tests and benches).
    pub fn shard(&self, i: usize) -> &Memex {
        &self.shards[i]
    }
}
