//! End-to-end system tests: a simulated community surfs the synthetic web
//! through the full Memex stack, then every §1 query is asked.

use std::sync::Arc;

use memex_core::memex::{Memex, MemexOptions};
use memex_core::servlet::{dispatch, Request, Response};
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::surfer::{Community, SurferConfig};

/// Build a world, push every simulated event through the server, run the
/// demons.
fn world() -> (Arc<Corpus>, Community, Memex) {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 4,
        pages_per_topic: 50,
        ..CorpusConfig::default()
    }));
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: 8,
            sessions_per_user: 10,
            ..SurferConfig::default()
        },
    );
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).unwrap();
    for truth in &community.users {
        memex
            .register_user(truth.user, &format!("user{}", truth.user))
            .unwrap();
    }
    // Interleave bookmarks with visits in time order.
    let mut bi = 0usize;
    for v in &community.visits {
        while bi < community.bookmarks.len() && community.bookmarks[bi].time <= v.time {
            let b = &community.bookmarks[bi];
            memex.submit(ClientEvent::Bookmark {
                user: b.user,
                page: b.page,
                url: corpus.pages[b.page as usize].url.clone(),
                folder: format!("/{}", b.folder),
                time: b.time,
            });
            bi += 1;
        }
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: v.user,
            session: v.session,
            page: v.page,
            url: corpus.pages[v.page as usize].url.clone(),
            time: v.time,
            referrer: v.referrer,
        }));
    }
    memex.run_demons().unwrap();
    (corpus, community, memex)
}

#[test]
fn full_pipeline_archives_everything() {
    let (_, community, mut memex) = world();
    let stats = memex.server.stats();
    assert_eq!(stats.events_discarded_overload, 0);
    assert!(stats.docs_indexed > 0);
    assert!(stats.bookmarks_recorded > 0);
    // Public visits made it to the trail graph.
    assert!(memex.server.trails.len() as u64 >= stats.visits_trailed / 2);
    // Folder spaces got populated by the bookmark filing + classify demon.
    let user = community.users[0].user;
    let fs = memex.folder_space(user);
    assert!(
        fs.confirmed_count() > 0,
        "bookmarks must be confirmed assignments"
    );
    assert!(
        fs.assignments().count() > fs.confirmed_count(),
        "the demon should have guessed extra pages"
    );
}

#[test]
fn recall_finds_a_months_old_page() {
    let (corpus, community, memex) = world();
    // Pick a real early visit by user 0 on their primary interest.
    let user = community.users[0].user;
    let topic = community.users[0].interests[0];
    let target = community
        .visits
        .iter()
        .find(|v| {
            v.user == user
                && corpus.topic_of(v.page) == topic
                && !corpus.pages[v.page as usize].is_front
        })
        .expect("user visited an interior page of their interest");
    // Query with that page's own top words plus the window around then.
    let words: Vec<&str> = corpus.pages[target.page as usize]
        .text
        .split_whitespace()
        .take(6)
        .collect();
    let query = words.join(" ");
    let window = 30 * 24 * 3_600_000u64; // one month
    let hits = memex
        .recall(
            user,
            &query,
            target.time.saturating_sub(window),
            target.time + window,
            10,
        )
        .unwrap();
    assert!(!hits.is_empty(), "recall must return something");
    assert!(
        hits.iter().any(|h| h.page == target.page),
        "the visited page should be among the hits"
    );
    // Everything returned was actually visited by the user in the window.
    for h in &hits {
        assert!(h.last_visit >= target.time.saturating_sub(window));
        assert!(h.last_visit <= target.time + window);
    }
}

#[test]
fn trail_replay_recreates_topical_context() {
    let (corpus, community, mut memex) = world();
    let user = community.users[0].user;
    let topic = community.users[0].interests[0];
    // The folder named after the user's primary interest exists from
    // bookmark filing.
    let folder = {
        let fs = memex.folder_space(user);
        let path = format!("/{}", corpus.topic_names[topic]);
        fs.add_folder(&path)
    };
    let ctx = memex.topic_context(user, folder, 0, 25);
    assert!(!ctx.nodes.is_empty(), "context should replay pages");
    // Precision: replayed pages are mostly of the right ground-truth topic.
    let on_topic = ctx
        .nodes
        .iter()
        .filter(|n| corpus.topic_of(n.page) == topic)
        .count();
    let precision = on_topic as f64 / ctx.nodes.len() as f64;
    assert!(precision > 0.6, "replay precision {precision}");
    // Edges connect replayed nodes only.
    let node_set: std::collections::HashSet<u32> = ctx.nodes.iter().map(|n| n.page).collect();
    for &(a, b, c) in &ctx.edges {
        assert!(node_set.contains(&a) && node_set.contains(&b));
        assert!(c >= 1);
    }
}

#[test]
fn bill_breaks_down_by_folder() {
    let (_, community, memex) = world();
    let user = community.users[1].user;
    let lines = memex.bill(user, 0, u64::MAX);
    assert!(!lines.is_empty());
    let total: f64 = lines.iter().map(|l| l.fraction).sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "fractions sum to 1, got {total}"
    );
    assert!(
        lines.windows(2).all(|w| w[0].bytes >= w[1].bytes),
        "sorted by bytes"
    );
    let bytes: u64 = lines.iter().map(|l| l.bytes).sum();
    assert!(bytes > 0);
}

#[test]
fn community_themes_and_profiles() {
    let (_, community, memex) = world();
    let (themes, _) = memex.community_themes().clone();
    assert!(!themes.themes.is_empty(), "community themes must exist");
    themes.taxonomy.check_invariants().unwrap();
    // Several users bookmark the same topics, so at least one theme should
    // have multiple users.
    assert!(
        themes.themes.iter().any(|t| t.users.len() >= 2),
        "shared interests should merge into shared themes"
    );
    let user = community.users[0].user;
    let place = memex.my_place(user);
    assert!(!place.is_empty(), "user must appear somewhere on the map");
    let top_weight = place[0].1;
    assert!(top_weight > 0.0 && top_weight <= 1.0 + 1e-9);
}

#[test]
fn similar_surfers_respect_shared_interests() {
    let (_, community, memex) = world();
    // users 0 and 4 share primary interest (u % num_topics with 4 topics,
    // 8 users).
    let similar = memex.similar_surfers(0, 7);
    assert_eq!(similar.len(), 7);
    let rank_of = |u: u32| similar.iter().position(|&(v, _)| v == u).unwrap();
    // The same-primary-interest user should rank above the median.
    assert!(
        rank_of(4) < 4,
        "user 4 (same primary interest) ranked {} in {:?}",
        rank_of(4),
        similar
    );
    let _ = community;
}

#[test]
fn recommendations_are_novel_pages() {
    let (_, _, memex) = world();
    let recs = memex.recommend_pages(0, 10);
    assert!(!recs.is_empty());
    let mine: std::collections::HashSet<u32> =
        memex.server.trails.user_pages(0, 0).into_iter().collect();
    for (page, score) in &recs {
        assert!(
            !mine.contains(page),
            "recommended page {page} was already visited"
        );
        assert!(*score > 0.0);
    }
}

#[test]
fn servlet_dispatch_covers_the_api() {
    let (corpus, community, mut memex) = world();
    let user = community.users[0].user;
    // Search through the servlet.
    let resp = dispatch(
        &mut memex,
        Request::Recall {
            user,
            query: "classical music".into(),
            since: 0,
            until: u64::MAX,
            k: 5,
        },
    );
    assert!(matches!(resp, Response::Recall(_)));
    // Bill.
    let resp = dispatch(
        &mut memex,
        Request::Bill {
            user,
            since: 0,
            until: u64::MAX,
        },
    );
    let Response::Bill(lines) = resp else {
        panic!("expected bill")
    };
    assert!(!lines.is_empty());
    // Export -> import round trip through the Netscape format.
    let Response::Exported(html) = dispatch(&mut memex, Request::ExportBookmarks { user }) else {
        panic!("expected export");
    };
    assert!(html.contains("NETSCAPE-Bookmark-file-1"));
    let fresh_user = 999u32;
    memex.register_user(fresh_user, "fresh").unwrap();
    let Response::Imported {
        archived,
        rejected,
        unresolved,
    } = dispatch(
        &mut memex,
        Request::ImportBookmarks {
            user: fresh_user,
            html,
            time: 1,
        },
    )
    else {
        panic!("expected import");
    };
    assert!(archived > 0);
    assert_eq!(rejected, 0, "no user was in privacy mode");
    assert_eq!(unresolved, 0, "all exported urls resolve in the corpus");
    let fs = memex.folder_space(fresh_user);
    assert_eq!(fs.confirmed_count(), archived);
    let _ = corpus;
}

#[test]
fn proposed_folders_cluster_loose_pages_by_topic() {
    let (corpus, community, mut memex) = world();
    let user = community.users[0].user;
    let proposals = memex.propose_folders(user, 4);
    assert!(!proposals.is_empty());
    // Every proposed folder should be topically coherent: its majority
    // ground-truth topic should own most members.
    let mut total = 0usize;
    let mut majority = 0usize;
    for p in &proposals {
        assert!(!p.name.is_empty(), "proposal must carry a suggested name");
        let mut counts = std::collections::HashMap::new();
        for &page in &p.pages {
            *counts.entry(corpus.topic_of(page)).or_insert(0usize) += 1;
        }
        majority += counts.values().max().copied().unwrap_or(0);
        total += p.pages.len();
    }
    let purity = majority as f64 / total.max(1) as f64;
    assert!(purity > 0.6, "proposal purity {purity}");
    // Confirmed bookmarks are not re-proposed.
    let confirmed: Vec<u32> = {
        let fs = memex.folder_space(user);
        fs.assignments()
            .filter(|(_, a)| a.confirmed)
            .map(|(p, _)| p)
            .collect()
    };
    let proposals = memex.propose_folders(user, 4);
    for p in &proposals {
        for page in &p.pages {
            assert!(!confirmed.contains(page));
        }
    }
}

#[test]
fn stats_servlet_reports_live_subsystems() {
    let (corpus, community, mut memex) = world();
    // Exercise a query path so servlet + index.query latencies exist.
    let user = community.users[0].user;
    let _ = dispatch(
        &mut memex,
        Request::Recall {
            user,
            query: "classical music".into(),
            since: 0,
            until: u64::MAX,
            k: 5,
        },
    );
    // Exercise the crawler (reports to the process-global registry).
    let seeds: Vec<u32> = corpus.front_pages_of_topic(0).into_iter().take(2).collect();
    let _ = memex_web::crawler::unfocused_crawl(&corpus, &seeds, 0, 40);

    let Response::Stats(snap) = dispatch(&mut memex, Request::Stats) else {
        panic!("expected stats");
    };
    // Live values from every layer: store, index, server pipeline, crawler,
    // and the servlet surface itself.
    assert!(snap.counter("store.kv.puts") > 0, "store layer silent");
    assert!(snap.counter("store.wal.appends") > 0, "wal silent");
    assert!(snap.counter("index.docs") > 0, "index layer silent");
    assert!(
        snap.counter("server.events.submitted") > 0,
        "pipeline silent"
    );
    assert!(snap.counter("server.fetch.pages") > 0, "fetcher silent");
    assert!(snap.counter("web.crawl.fetches") >= 40, "crawler silent");
    let q = snap
        .histogram("index.query.latency")
        .expect("query latency histogram");
    assert!(q.count > 0 && q.sum > 0);
    let s = snap
        .histogram("servlet.recall.latency")
        .expect("servlet latency histogram");
    assert_eq!(s.count, 1);
    // Per-demon staleness gauges exist (zero after run_demons caught up).
    assert!(snap
        .gauges
        .iter()
        .any(|(n, _)| n == "store.version.staleness.index-demon"));
    // The exporters render it.
    let text = snap.render_text();
    assert!(text.contains("server.events.submitted"));
    assert!(snap.render_prometheus().contains("index_docs"));
    assert!(snap.render_json().contains("\"store.kv.puts\""));
}

#[test]
fn whats_new_excludes_seen_pages_and_ranks_authorities() {
    let (corpus, community, mut memex) = world();
    let user = community.users[2].user;
    let topic = community.users[2].interests[0];
    let folder = {
        let fs = memex.folder_space(user);
        fs.add_folder(&format!("/{}", corpus.topic_names[topic]))
    };
    // Ask for what's new in the second half of the history.
    let horizon = {
        let visits = memex.server.trails.visits();
        visits[visits.len() / 2].time
    };
    let fresh = memex.whats_new(user, folder, horizon, 5);
    let seen_before: std::collections::HashSet<u32> = memex
        .server
        .trails
        .visits()
        .iter()
        .filter(|v| v.user == user && v.time < horizon)
        .map(|v| v.page)
        .collect();
    for (page, score) in &fresh {
        assert!(
            !seen_before.contains(page),
            "page {page} was already known to the user"
        );
        assert!(*score >= 0.0);
    }
}

/// The whole community surfs through a server whose fetcher fails
/// transiently 20% of the time: the demons must still drain every event,
/// every page ends up either indexed or explicitly abandoned, and the
/// retry/abandon accounting surfaces in both ServerStats and the metrics
/// snapshot.
#[test]
fn community_surf_survives_flaky_fetcher() {
    use memex_server::fetcher::{CorpusFetcher, FlakyConfig, FlakyFetcher};
    use memex_server::pipeline::{MemexServer, ServerOptions};

    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 3,
        pages_per_topic: 30,
        ..CorpusConfig::default()
    }));
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: 4,
            sessions_per_user: 6,
            ..SurferConfig::default()
        },
    );
    let fetcher = FlakyFetcher::new(
        CorpusFetcher::new(corpus.clone()),
        FlakyConfig {
            seed: 20_000_101,
            transient_per_10k: 2_000,
            ..FlakyConfig::default()
        },
    );
    let mut server = MemexServer::new(fetcher, ServerOptions::default()).unwrap();
    let mut pages = std::collections::HashSet::new();
    for truth in &community.users {
        server
            .register_user(truth.user, &format!("user{}", truth.user))
            .unwrap();
    }
    for v in &community.visits {
        pages.insert(v.page);
        server.submit(ClientEvent::Visit(VisitEvent {
            user: v.user,
            session: v.session,
            page: v.page,
            url: corpus.pages[v.page as usize].url.clone(),
            time: v.time,
            referrer: v.referrer,
        }));
    }
    server.drain_demons().unwrap();
    assert!(
        server.staleness().iter().all(|r| r.staleness == 0),
        "flaky fetches must never stall the demons"
    );
    let stats = server.stats();
    assert_eq!(
        stats.pages_fetched + stats.pages_abandoned,
        pages.len() as u64,
        "every visited page fetched or explicitly abandoned"
    );
    assert!(stats.fetch_retries > 0, "20% flakiness must force retries");
    assert_eq!(stats.docs_indexed, stats.pages_fetched);
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("server.fetch.retries"), stats.fetch_retries);
    assert_eq!(
        snap.counter("server.fetch.abandoned"),
        stats.pages_abandoned
    );
}
