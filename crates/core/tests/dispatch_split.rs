//! The split servlet dispatch (`dispatch_read` / `dispatch_write`) must be
//! indistinguishable from the unified `dispatch` shim on arbitrary request
//! sequences: same classification, same answers, same evolving archive.
//! Two identically-built worlds run the same random sequence — one through
//! the shim, one through explicit classify-then-route — and every response
//! pair must match. Reads are additionally checked for idempotence (asking
//! twice changes nothing).

use std::sync::Arc;

use proptest::prelude::*;

use memex_core::memex::{Memex, MemexOptions};
use memex_core::servlet::{dispatch, dispatch_read, dispatch_write, Classified, Request, Response};
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};

const PAGES_PER_TOPIC: u32 = 20;

fn corpus() -> Arc<Corpus> {
    Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 2,
        pages_per_topic: PAGES_PER_TOPIC as usize,
        ..CorpusConfig::default()
    }))
}

fn fresh_memex(corpus: &Arc<Corpus>) -> Memex {
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).expect("build memex");
    for user in 0..4u32 {
        memex
            .register_user(user, &format!("user{user}"))
            .expect("register");
    }
    memex
}

fn visit(corpus: &Arc<Corpus>, user: u32, page: u32, time: u64) -> Request {
    Request::Event(ClientEvent::Visit(VisitEvent {
        user,
        session: user,
        page,
        url: corpus.pages[page as usize].url.clone(),
        time,
        referrer: None,
    }))
}

/// A request template the strategy can instantiate without needing the
/// corpus (URLs are resolved when the op is materialised).
#[derive(Debug, Clone)]
enum Op {
    Visit { user: u32, page: u32 },
    Bookmark { user: u32, page: u32, folder: u8 },
    Import { user: u32, valid: bool },
    Recall { user: u32, query_word: u8, k: usize },
    TrailReplay { user: u32, folder: u32 },
    WhatsNew { user: u32, folder: u32, k: usize },
    Bill { user: u32, since: u64 },
    SimilarSurfers { user: u32, k: usize },
    Recommend { user: u32, k: usize },
    Export { user: u32 },
    Propose { user: u32, k: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let total_pages = 2 * PAGES_PER_TOPIC;
    prop_oneof![
        3 => (0u32..4, 0..total_pages).prop_map(|(user, page)| Op::Visit { user, page }),
        2 => (0u32..4, 0..total_pages, 0u8..3)
            .prop_map(|(user, page, folder)| Op::Bookmark { user, page, folder }),
        1 => (0u32..4, any::<bool>()).prop_map(|(user, valid)| Op::Import { user, valid }),
        2 => (0u32..4, 0u8..4, 0usize..6)
            .prop_map(|(user, query_word, k)| Op::Recall { user, query_word, k }),
        1 => (0u32..4, 0u32..4).prop_map(|(user, folder)| Op::TrailReplay { user, folder }),
        1 => (0u32..4, 0u32..4, 0usize..5)
            .prop_map(|(user, folder, k)| Op::WhatsNew { user, folder, k }),
        2 => (0u32..4, 0u64..50).prop_map(|(user, since)| Op::Bill { user, since }),
        1 => (0u32..4, 0usize..5).prop_map(|(user, k)| Op::SimilarSurfers { user, k }),
        1 => (0u32..4, 0usize..5).prop_map(|(user, k)| Op::Recommend { user, k }),
        1 => (0u32..4).prop_map(|user| Op::Export { user }),
        1 => (0u32..4, 0usize..4).prop_map(|(user, k)| Op::Propose { user, k }),
    ]
}

fn materialise(op: &Op, corpus: &Arc<Corpus>, time: u64) -> Request {
    match *op {
        Op::Visit { user, page } => visit(corpus, user, page, time),
        Op::Bookmark { user, page, folder } => Request::Event(ClientEvent::Bookmark {
            user,
            page,
            url: corpus.pages[page as usize].url.clone(),
            folder: format!("/folder{folder}"),
            time,
        }),
        Op::Import { user, valid } => {
            let html = if valid {
                format!(
                    "<!DOCTYPE NETSCAPE-Bookmark-file-1>\n<DL><p>\n\
                     <DT><A HREF=\"{}\">imported</A>\n</DL><p>\n",
                    corpus.pages[0].url
                )
            } else {
                "<DT><A HREF=\"http://nowhere.invalid/x\">gone</A>".to_string()
            };
            Request::ImportBookmarks { user, html, time }
        }
        Op::Recall {
            user,
            query_word,
            k,
        } => Request::Recall {
            user,
            query: format!("topic word{query_word}"),
            since: 0,
            until: u64::MAX,
            k,
        },
        Op::TrailReplay { user, folder } => Request::TrailReplay {
            user,
            folder,
            since: 0,
            max_pages: 10,
        },
        Op::WhatsNew { user, folder, k } => Request::WhatsNew {
            user,
            folder,
            since: 0,
            k,
        },
        Op::Bill { user, since } => Request::Bill {
            user,
            since,
            until: u64::MAX,
        },
        Op::SimilarSurfers { user, k } => Request::SimilarSurfers { user, k },
        Op::Recommend { user, k } => Request::Recommend { user, k },
        Op::Export { user } => Request::ExportBookmarks { user },
        Op::Propose { user, k } => Request::ProposeFolders { user, k },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Route every request of a random sequence through the unified shim on
    /// world A and through explicit classify/dispatch_read/dispatch_write
    /// on world B: the answer streams must be identical, which means the
    /// split cannot have changed ordering, classification, or semantics.
    #[test]
    fn split_dispatch_equals_unified_shim(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let corpus = corpus();
        let mut unified = fresh_memex(&corpus);
        let mut split = fresh_memex(&corpus);
        for (i, op) in ops.iter().enumerate() {
            let request = materialise(op, &corpus, 1 + i as u64);
            let a = dispatch(&mut unified, request.clone());
            let b = match request.classify() {
                Classified::Read(r) => {
                    // Reads are idempotent: asking twice must not change
                    // the answer (they cannot mutate an `&Memex`).
                    let first = dispatch_read(&split, r.clone());
                    let second = dispatch_read(&split, r);
                    prop_assert_eq!(&first, &second, "read #{} not idempotent", i);
                    first
                }
                Classified::Write(w) => dispatch_write(&mut split, w),
            };
            prop_assert_eq!(a, b, "request #{} diverged between shim and split", i);
        }
    }
}

/// The classification table is the contract the serving layer leans on:
/// exactly `Event` and `ImportBookmarks` are writes, everything else reads.
#[test]
fn classification_matches_the_mutation_surface() {
    let corpus = corpus();
    let reads = [
        Request::Recall {
            user: 0,
            query: "q".into(),
            since: 0,
            until: 1,
            k: 1,
        },
        Request::TrailReplay {
            user: 0,
            folder: 0,
            since: 0,
            max_pages: 1,
        },
        Request::WhatsNew {
            user: 0,
            folder: 0,
            since: 0,
            k: 1,
        },
        Request::Bill {
            user: 0,
            since: 0,
            until: 1,
        },
        Request::SimilarSurfers { user: 0, k: 1 },
        Request::Recommend { user: 0, k: 1 },
        Request::ExportBookmarks { user: 0 },
        Request::ProposeFolders { user: 0, k: 1 },
        Request::Stats,
        Request::Traces {
            slow_only: false,
            limit: 1,
        },
    ];
    for r in reads {
        assert!(r.is_read(), "{} must classify as a read", r.name());
        assert!(matches!(r.classify(), Classified::Read(_)));
    }
    let writes = [
        visit(&corpus, 0, 0, 1),
        Request::ImportBookmarks {
            user: 0,
            html: String::new(),
            time: 1,
        },
    ];
    for w in writes {
        assert!(!w.is_read(), "{} must classify as a write", w.name());
        assert!(matches!(w.classify(), Classified::Write(_)));
    }
}

/// Per-variant latency metric names are static (no per-request `format!`)
/// and still follow the catalogued `servlet.<name>.latency` wildcard.
#[test]
fn latency_metric_names_are_static_and_catalogue_shaped() {
    let corpus = corpus();
    let all = [
        visit(&corpus, 0, 0, 1),
        Request::Recall {
            user: 0,
            query: "q".into(),
            since: 0,
            until: 1,
            k: 1,
        },
        Request::TrailReplay {
            user: 0,
            folder: 0,
            since: 0,
            max_pages: 1,
        },
        Request::WhatsNew {
            user: 0,
            folder: 0,
            since: 0,
            k: 1,
        },
        Request::Bill {
            user: 0,
            since: 0,
            until: 1,
        },
        Request::SimilarSurfers { user: 0, k: 1 },
        Request::Recommend { user: 0, k: 1 },
        Request::ImportBookmarks {
            user: 0,
            html: String::new(),
            time: 1,
        },
        Request::ExportBookmarks { user: 0 },
        Request::ProposeFolders { user: 0, k: 1 },
        Request::Stats,
        Request::Traces {
            slow_only: true,
            limit: 8,
        },
    ];
    for r in &all {
        assert_eq!(
            r.latency_metric(),
            format!("servlet.{}.latency", r.name()),
            "static metric name drifted from the variant name"
        );
    }
}

/// A write through `dispatch_write` leaves the archive exactly as the
/// unified shim would: queries afterwards agree (the write path runs the
/// demons + refresh, so served state is immediately consistent).
#[test]
fn write_path_refreshes_query_visible_state() {
    let corpus = corpus();
    let mut memex = fresh_memex(&corpus);
    let page = corpus.pages_of_topic(0)[0];
    let resp = match visit(&corpus, 0, page, 1).classify() {
        Classified::Write(w) => dispatch_write(&mut memex, w),
        Classified::Read(_) => panic!("a visit event must classify as a write"),
    };
    assert_eq!(resp, Response::Ack { archived: true });
    // No manual run_demons(): the write path already refreshed, so the
    // visit is query-visible through the read path.
    let bill = match (Request::Bill {
        user: 0,
        since: 0,
        until: u64::MAX,
    })
    .classify()
    {
        Classified::Read(r) => dispatch_read(&memex, r),
        Classified::Write(_) => panic!("bill must classify as a read"),
    };
    let Response::Bill(lines) = bill else {
        panic!("expected a bill");
    };
    let visits: u32 = lines.iter().map(|l| l.visits).sum();
    assert_eq!(visits, 1, "write path did not refresh query-visible state");
}
