//! Sharding must be answer-invisible: a `ShardedMemex{n=4}` and a single
//! `Memex` fed the same random multi-user request sequence must yield
//! identical answer streams (mirrors `dispatch_split.rs`, which pinned the
//! read/write split the router is built on). This is the contract that
//! lets the serving layer shard by `user % N` without clients noticing —
//! in particular it exercises the lazy-replication catch-up path: a
//! request for user B right after a write by user A forces B's shard to
//! absorb A's write (batched, one demon sweep) before answering.

use std::sync::Arc;

use proptest::prelude::*;

use memex_core::memex::{Memex, MemexOptions};
use memex_core::servlet::{dispatch, Request, Response};
use memex_core::sharded::ShardedMemex;
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};

const PAGES_PER_TOPIC: u32 = 20;
const SHARDS: usize = 4;

fn corpus() -> Arc<Corpus> {
    Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 2,
        pages_per_topic: PAGES_PER_TOPIC as usize,
        ..CorpusConfig::default()
    }))
}

fn fresh_memex(corpus: &Arc<Corpus>) -> Memex {
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).expect("build memex");
    for user in 0..4u32 {
        memex
            .register_user(user, &format!("user{user}"))
            .expect("register");
    }
    memex
}

fn fresh_sharded(corpus: &Arc<Corpus>) -> ShardedMemex {
    ShardedMemex::new((0..SHARDS).map(|_| fresh_memex(corpus)).collect())
}

fn visit(corpus: &Arc<Corpus>, user: u32, page: u32, time: u64) -> Request {
    Request::Event(ClientEvent::Visit(VisitEvent {
        user,
        session: user,
        page,
        url: corpus.pages[page as usize].url.clone(),
        time,
        referrer: None,
    }))
}

/// Same request-template vocabulary as `dispatch_split.rs`: every
/// user-scoped variant, users spread across all four shards.
#[derive(Debug, Clone)]
enum Op {
    Visit { user: u32, page: u32 },
    Bookmark { user: u32, page: u32, folder: u8 },
    Import { user: u32, valid: bool },
    Recall { user: u32, query_word: u8, k: usize },
    TrailReplay { user: u32, folder: u32 },
    WhatsNew { user: u32, folder: u32, k: usize },
    Bill { user: u32, since: u64 },
    SimilarSurfers { user: u32, k: usize },
    Recommend { user: u32, k: usize },
    Export { user: u32 },
    Propose { user: u32, k: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let total_pages = 2 * PAGES_PER_TOPIC;
    prop_oneof![
        3 => (0u32..4, 0..total_pages).prop_map(|(user, page)| Op::Visit { user, page }),
        2 => (0u32..4, 0..total_pages, 0u8..3)
            .prop_map(|(user, page, folder)| Op::Bookmark { user, page, folder }),
        1 => (0u32..4, any::<bool>()).prop_map(|(user, valid)| Op::Import { user, valid }),
        2 => (0u32..4, 0u8..4, 0usize..6)
            .prop_map(|(user, query_word, k)| Op::Recall { user, query_word, k }),
        1 => (0u32..4, 0u32..4).prop_map(|(user, folder)| Op::TrailReplay { user, folder }),
        1 => (0u32..4, 0u32..4, 0usize..5)
            .prop_map(|(user, folder, k)| Op::WhatsNew { user, folder, k }),
        2 => (0u32..4, 0u64..50).prop_map(|(user, since)| Op::Bill { user, since }),
        1 => (0u32..4, 0usize..5).prop_map(|(user, k)| Op::SimilarSurfers { user, k }),
        1 => (0u32..4, 0usize..5).prop_map(|(user, k)| Op::Recommend { user, k }),
        1 => (0u32..4).prop_map(|user| Op::Export { user }),
        1 => (0u32..4, 0usize..4).prop_map(|(user, k)| Op::Propose { user, k }),
    ]
}

fn materialise(op: &Op, corpus: &Arc<Corpus>, time: u64) -> Request {
    match *op {
        Op::Visit { user, page } => visit(corpus, user, page, time),
        Op::Bookmark { user, page, folder } => Request::Event(ClientEvent::Bookmark {
            user,
            page,
            url: corpus.pages[page as usize].url.clone(),
            folder: format!("/folder{folder}"),
            time,
        }),
        Op::Import { user, valid } => {
            let html = if valid {
                format!(
                    "<!DOCTYPE NETSCAPE-Bookmark-file-1>\n<DL><p>\n\
                     <DT><A HREF=\"{}\">imported</A>\n</DL><p>\n",
                    corpus.pages[0].url
                )
            } else {
                "<DT><A HREF=\"http://nowhere.invalid/x\">gone</A>".to_string()
            };
            Request::ImportBookmarks { user, html, time }
        }
        Op::Recall {
            user,
            query_word,
            k,
        } => Request::Recall {
            user,
            query: format!("topic word{query_word}"),
            since: 0,
            until: u64::MAX,
            k,
        },
        Op::TrailReplay { user, folder } => Request::TrailReplay {
            user,
            folder,
            since: 0,
            max_pages: 10,
        },
        Op::WhatsNew { user, folder, k } => Request::WhatsNew {
            user,
            folder,
            since: 0,
            k,
        },
        Op::Bill { user, since } => Request::Bill {
            user,
            since,
            until: u64::MAX,
        },
        Op::SimilarSurfers { user, k } => Request::SimilarSurfers { user, k },
        Op::Recommend { user, k } => Request::Recommend { user, k },
        Op::Export { user } => Request::ExportBookmarks { user },
        Op::Propose { user, k } => Request::ProposeFolders { user, k },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The dispatch-equivalence spine: random sequences through the
    /// 4-shard router and a single Memex answer identically, request by
    /// request. Users 0..4 map to four distinct shards, so writes and the
    /// reads observing them almost always cross shard boundaries.
    #[test]
    fn sharded_dispatch_equals_single_memex(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let corpus = corpus();
        let mut single = fresh_memex(&corpus);
        let mut sharded = fresh_sharded(&corpus);
        for (i, op) in ops.iter().enumerate() {
            let request = materialise(op, &corpus, 1 + i as u64);
            let a = dispatch(&mut single, request.clone());
            let b = sharded.dispatch(request);
            prop_assert_eq!(a, b, "request #{} diverged between single and sharded", i);
        }
        // After the stream, force full convergence and re-check one
        // answer per user from whatever shard owns them.
        sharded.quiesce().expect("quiesce");
        for user in 0..4u32 {
            let bill = Request::Bill { user, since: 0, until: u64::MAX };
            let a = dispatch(&mut single, bill.clone());
            let b = sharded.dispatch(bill);
            prop_assert_eq!(a, b, "post-quiesce bill diverged for user {}", user);
        }
    }
}

/// The shard-key table is the routing contract: every user-scoped variant
/// yields `Some(user)`, exactly `Stats`/`Traces` are community-scoped.
#[test]
fn shard_key_table_matches_request_surface() {
    let corpus = corpus();
    let user_scoped = [
        visit(&corpus, 7, 0, 1),
        Request::Recall {
            user: 7,
            query: "q".into(),
            since: 0,
            until: 1,
            k: 1,
        },
        Request::TrailReplay {
            user: 7,
            folder: 0,
            since: 0,
            max_pages: 1,
        },
        Request::WhatsNew {
            user: 7,
            folder: 0,
            since: 0,
            k: 1,
        },
        Request::Bill {
            user: 7,
            since: 0,
            until: 1,
        },
        Request::SimilarSurfers { user: 7, k: 1 },
        Request::Recommend { user: 7, k: 1 },
        Request::ImportBookmarks {
            user: 7,
            html: String::new(),
            time: 1,
        },
        Request::ExportBookmarks { user: 7 },
        Request::ProposeFolders { user: 7, k: 1 },
    ];
    for r in &user_scoped {
        assert_eq!(r.shard_key(), Some(7), "{} must route by user", r.name());
    }
    let community = [
        Request::Stats,
        Request::Traces {
            slow_only: false,
            limit: 1,
        },
    ];
    for r in &community {
        assert_eq!(r.shard_key(), None, "{} must aggregate", r.name());
    }
}

/// A write by user 0 (shard 0) must be visible to a community-flavoured
/// query by user 1 (shard 1) — the catch-up path, deterministically.
#[test]
fn cross_shard_write_visibility() {
    let corpus = corpus();
    let mut single = fresh_memex(&corpus);
    let mut sharded = fresh_sharded(&corpus);
    let page = corpus.pages_of_topic(0)[0];
    let w = visit(&corpus, 0, page, 1);
    assert_eq!(
        dispatch(&mut single, w.clone()),
        sharded.dispatch(w),
        "write ack diverged"
    );
    // user 1's what's-new is computed over *community* trails, so it sees
    // user 0's visit only if shard 1 caught up.
    let q = Request::WhatsNew {
        user: 1,
        folder: 0,
        since: 0,
        k: 5,
    };
    assert_eq!(
        dispatch(&mut single, q.clone()),
        sharded.dispatch(q),
        "cross-shard read diverged"
    );
}

/// Stats aggregation folds every shard's registry: after traffic on two
/// shards, the merged snapshot must count both shards' dispatches.
#[test]
fn stats_aggregate_across_shards() {
    let corpus = corpus();
    let mut sharded = fresh_sharded(&corpus);
    let page = corpus.pages_of_topic(0)[0];
    sharded.dispatch(visit(&corpus, 0, page, 1));
    sharded.dispatch(visit(&corpus, 1, page, 2));
    let resp = sharded.dispatch(Request::Stats);
    let Response::Stats(snap) = resp else {
        panic!("expected stats");
    };
    // Each eager owner-shard dispatch records one servlet.event.latency
    // sample on its own registry; the aggregate must see both.
    assert!(
        snap.histogram("servlet.event.latency")
            .is_some_and(|h| h.count >= 2),
        "aggregated snapshot missing per-shard servlet samples"
    );
}
