//! The Memex wire format: length-prefixed, checksummed, versioned frames
//! carrying a hand-rolled binary serialization of every
//! [`Request`]/[`Response`] variant.
//!
//! ## Frame layout
//!
//! ```text
//! +----+----+---------+------+-------------+-------+------------------+----------+
//! | 'M'| 'X'| version | kind | len u32 LE  | ext?  | payload (len B)  | crc u32  |
//! +----+----+---------+------+-------------+-------+------------------+----------+
//!   magic      1 B      1 B      4 B         v3 only    ≤ 16 MiB         FNV-1a
//! ```
//!
//! Version 3+ frames carry an **extension block** between the header and
//! the payload: one `flags` byte, followed by a `u64 LE` trace id when
//! bit 0 ([`EXT_FLAG_TRACE`]) is set. Version 4 adds bit 1
//! ([`EXT_FLAG_RETRY`]): a second `u64 LE` — the trace id of the
//! *previous attempt* of the same logical request — follows the trace id,
//! so a server can annotate a retried read's root span with `retry_of`
//! and operators can stitch the attempts together. Flag bits a version
//! does not define are rejected (`EXT_FLAG_RETRY` in a v3 frame is an
//! error, as is `EXT_FLAG_RETRY` without `EXT_FLAG_TRACE`) — an extension
//! a decoder cannot parse would desynchronize the stream, so there is
//! nothing safe to skip. Version 2 frames have no extension block and
//! remain byte-identical to what PR 5 shipped; decoders accept everything
//! from [`MIN_WIRE_VERSION`] up, which is how a v2 or v3 client keeps
//! working against a v4 server (the server mirrors the client's version
//! in its responses).
//!
//! The CRC is FNV-1a over `version ‖ kind ‖ ext ‖ payload`, so a single
//! flipped bit anywhere after the magic is detected. `len` counts the
//! payload only and is capped at [`MAX_PAYLOAD`] **before** any
//! allocation happens, so a corrupted length can neither over-read the
//! stream nor balloon memory.
//!
//! ## Versioning rule
//!
//! [`WIRE_VERSION`] bumps whenever an existing variant's encoding changes
//! shape or the frame envelope changes (the v3 extension block);
//! *appending* new variants (new tags) is backwards-compatible and
//! does not bump the version. A decoder rejects frames whose version it
//! does not know with [`WireError::UnsupportedVersion`] and unknown tags
//! with [`WireError::BadTag`] — it never guesses.
//!
//! Every decode path returns a typed [`WireError`]; nothing in this module
//! panics on untrusted bytes (see `tests/corruption.rs` for the sweep that
//! enforces this at every byte offset).

use std::io::{Read, Write};

use memex_core::memex::{BillLine, FolderProposal, RecallHit};
use memex_core::servlet::{Request, Response};
use memex_graph::trail::{ContextNode, TrailContext};
use memex_obs::trace::{SpanData, TraceData};
use memex_obs::{Event, HistogramSnapshot, Snapshot, NUM_BUCKETS};
use memex_server::events::{ArchiveMode, ClientEvent, VisitEvent};

/// Current wire version (see the module docs for the bump rule).
/// v3 added the optional trace-context extension block; v4 added the
/// optional retry-of id within it.
pub const WIRE_VERSION: u8 = 4;

/// Oldest wire version this decoder still accepts. v2 frames (no
/// extension block) decode exactly as they did before the v3 bump.
pub const MIN_WIRE_VERSION: u8 = 2;

/// Extension flag bit: an 8-byte trace id follows the flags byte.
pub const EXT_FLAG_TRACE: u8 = 0b0000_0001;

/// Extension flag bit (v4+): an 8-byte "previous attempt" trace id
/// follows the trace id. Only valid together with [`EXT_FLAG_TRACE`].
pub const EXT_FLAG_RETRY: u8 = 0b0000_0010;

/// Hard cap on a frame's payload. Anything larger is rejected before
/// allocation with [`WireError::Oversized`].
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Frame header bytes preceding the payload: magic (2) + version (1) +
/// kind (1) + length (4).
pub const HEADER_LEN: usize = 8;

/// Trailing checksum bytes.
pub const TRAILER_LEN: usize = 4;

const MAGIC: [u8; 2] = *b"MX";

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    Request,
    Response,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_byte(b: u8) -> Result<FrameKind, WireError> {
        match b {
            0 => Ok(FrameKind::Request),
            1 => Ok(FrameKind::Response),
            other => Err(WireError::BadKind(other)),
        }
    }
}

/// Typed decode/IO failures. Every malformed input maps to one of these —
/// the decoder never panics.
#[derive(Debug)]
pub enum WireError {
    /// Underlying stream error (includes clean EOF as `UnexpectedEof`).
    Io(std::io::Error),
    /// The first two bytes were not `MX`.
    BadMagic([u8; 2]),
    /// Frame from a wire version this decoder does not speak.
    UnsupportedVersion(u8),
    /// Unknown frame-kind byte.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized { len: u64, cap: u64 },
    /// The buffer ended before the structure it claims to hold.
    Truncated { needed: usize, available: usize },
    /// FNV-1a over version+kind+payload did not match the trailer.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// Unknown enum tag while decoding `what`.
    BadTag { what: &'static str, tag: u8 },
    /// A boolean slot held something other than 0 or 1.
    BadBool(u8),
    /// A string slot held invalid UTF-8.
    BadUtf8,
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "bad frame kind {k}"),
            WireError::Oversized { len, cap } => {
                write!(f, "frame payload {len} B exceeds cap {cap} B")
            }
            WireError::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} B, had {available} B")
            }
            WireError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:08x}, computed {actual:08x}"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadBool(b) => write!(f, "bad bool byte {b}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn fnv1a(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for part in parts {
        for &b in *part {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

/// Trace context carried in a v3+ frame's extension block: the 64-bit id
/// the client stamped on the request, echoed back on the response, plus
/// (v4, retried reads only) the id of the previous attempt so the
/// server-side span trees of one logical request can be stitched
/// together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    /// Trace id of the previous attempt of this logical request, when
    /// this frame is a client retry (v4 frames only; v3 encoders must
    /// pass `None`).
    pub retry_of: Option<u64>,
}

/// A fully decoded frame envelope: which version the peer spoke, what the
/// frame carries, and the trace context (v3 frames only, when stamped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMeta {
    pub version: u8,
    pub kind: FrameKind,
    pub trace: Option<TraceContext>,
    pub payload: Vec<u8>,
}

/// Borrowed twin of [`FrameMeta`] for frames held entirely in a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    pub version: u8,
    pub kind: FrameKind,
    pub trace: Option<TraceContext>,
    pub payload: &'a [u8],
}

/// Assemble a complete frame (header + payload + checksum) in memory at
/// the current wire version, with no trace context.
pub fn frame_bytes(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    frame_bytes_versioned(WIRE_VERSION, kind, payload, None)
}

/// Assemble a frame at an explicit wire version. A server answers in the
/// version the client spoke; v2 frames cannot carry a trace context
/// (callers must pass `None`).
pub fn frame_bytes_versioned(
    version: u8,
    kind: FrameKind,
    payload: &[u8],
    trace: Option<TraceContext>,
) -> Vec<u8> {
    assert!(
        (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version),
        "cannot encode wire version {version}"
    );
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "encoder produced oversized payload"
    );
    debug_assert!(
        version >= 3 || trace.is_none(),
        "v2 frames cannot carry a trace context"
    );
    debug_assert!(
        version >= 4 || trace.is_none_or(|t| t.retry_of.is_none()),
        "v3 frames cannot carry a retry-of id"
    );
    let mut ext: Vec<u8> = Vec::with_capacity(17);
    if version >= 3 {
        match trace {
            Some(t) => {
                // A v3 encoder has no bit for retry_of; drop it rather
                // than emit a frame the peer must reject.
                let retry = if version >= 4 { t.retry_of } else { None };
                let mut flags = EXT_FLAG_TRACE;
                if retry.is_some() {
                    flags |= EXT_FLAG_RETRY;
                }
                ext.push(flags);
                ext.extend_from_slice(&t.trace_id.to_le_bytes());
                if let Some(prev) = retry {
                    ext.extend_from_slice(&prev.to_le_bytes());
                }
            }
            None => ext.push(0),
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + ext.len() + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&ext);
    out.extend_from_slice(payload);
    out.extend_from_slice(
        &fnv1a(&[&[version, kind.to_byte()], ext.as_slice(), payload]).to_le_bytes(),
    );
    out
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    w.write_all(&frame_bytes(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Write one frame at an explicit version/trace context.
pub fn write_frame_versioned(
    w: &mut impl Write,
    version: u8,
    kind: FrameKind,
    payload: &[u8],
    trace: Option<TraceContext>,
) -> Result<(), WireError> {
    w.write_all(&frame_bytes_versioned(version, kind, payload, trace))?;
    w.flush()?;
    Ok(())
}

/// Reject extension-flag bits the *sender's* version does not define. An
/// unknown extension changes the framing, so skipping is never safe; a
/// v3 frame claiming the v4-only retry bit is equally malformed, as is a
/// retry-of id with no trace id for it to qualify.
fn validate_ext_flags(flags: u8, version: u8) -> Result<(), WireError> {
    let known = if version >= 4 {
        EXT_FLAG_TRACE | EXT_FLAG_RETRY
    } else {
        EXT_FLAG_TRACE
    };
    let orphan_retry = flags & EXT_FLAG_RETRY != 0 && flags & EXT_FLAG_TRACE == 0;
    if flags & !known != 0 || orphan_retry {
        return Err(WireError::BadTag {
            what: "frame extension flags",
            tag: flags,
        });
    }
    Ok(())
}

/// Copy a slice's first 4 bytes into an array without a panicking
/// conversion; the decode path must stay panic-free on arbitrary input.
fn arr4(b: &[u8]) -> Result<[u8; 4], WireError> {
    match *b {
        [a, b2, c, d, ..] => Ok([a, b2, c, d]),
        _ => Err(WireError::Truncated {
            needed: 4,
            available: b.len(),
        }),
    }
}

/// Same as [`arr4`] for 8-byte fields.
fn arr8(b: &[u8]) -> Result<[u8; 8], WireError> {
    match *b {
        [a, b2, c, d, e, f, g, h, ..] => Ok([a, b2, c, d, e, f, g, h]),
        _ => Err(WireError::Truncated {
            needed: 8,
            available: b.len(),
        }),
    }
}

/// Read one frame from a stream, enforcing the size cap *before*
/// allocating the payload buffer and verifying the checksum after.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), WireError> {
    let meta = read_frame_meta(r)?;
    Ok((meta.kind, meta.payload))
}

/// [`read_frame`] exposing the full envelope: wire version and trace
/// context alongside kind and payload.
pub fn read_frame_meta(r: &mut impl Read) -> Result<FrameMeta, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (version, kind, len) = parse_header(&header)?;
    let mut ext: Vec<u8> = Vec::with_capacity(17);
    let mut trace = None;
    if version >= 3 {
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)?;
        let [flag_byte] = flags;
        validate_ext_flags(flag_byte, version)?;
        ext.push(flag_byte);
        if flag_byte & EXT_FLAG_TRACE != 0 {
            let mut id = [0u8; 8];
            r.read_exact(&mut id)?;
            ext.extend_from_slice(&id);
            let mut retry_of = None;
            if flag_byte & EXT_FLAG_RETRY != 0 {
                let mut prev = [0u8; 8];
                r.read_exact(&mut prev)?;
                retry_of = Some(u64::from_le_bytes(prev));
                ext.extend_from_slice(&prev);
            }
            trace = Some(TraceContext {
                trace_id: u64::from_le_bytes(id),
                retry_of,
            });
        }
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; TRAILER_LEN];
    r.read_exact(&mut trailer)?;
    check_crc(&header, &ext, &payload, trailer)?;
    Ok(FrameMeta {
        version,
        kind,
        trace,
        payload,
    })
}

/// Decode a frame held entirely in `buf`. Unlike [`read_frame`], the buffer
/// must contain *exactly* one frame: short buffers are
/// [`WireError::Truncated`], long ones [`WireError::TrailingBytes`].
pub fn decode_frame(buf: &[u8]) -> Result<(FrameKind, &[u8]), WireError> {
    let view = decode_frame_meta(buf)?;
    Ok((view.kind, view.payload))
}

/// [`decode_frame`] exposing the full envelope.
pub fn decode_frame_meta(buf: &[u8]) -> Result<FrameView<'_>, WireError> {
    let header = arr8(buf)?;
    let (version, kind, len) = parse_header(&header)?;
    let mut ext_len = 0usize;
    let mut trace = None;
    if version >= 3 {
        let flags = *buf.get(HEADER_LEN).ok_or(WireError::Truncated {
            needed: HEADER_LEN + 1,
            available: buf.len(),
        })?;
        validate_ext_flags(flags, version)?;
        ext_len = 1;
        if flags & EXT_FLAG_TRACE != 0 {
            let id = arr8(buf.get(HEADER_LEN + 1..).unwrap_or(&[]))?;
            ext_len = 9;
            let mut retry_of = None;
            if flags & EXT_FLAG_RETRY != 0 {
                let prev = arr8(buf.get(HEADER_LEN + 9..).unwrap_or(&[]))?;
                retry_of = Some(u64::from_le_bytes(prev));
                ext_len = 17;
            }
            trace = Some(TraceContext {
                trace_id: u64::from_le_bytes(id),
                retry_of,
            });
        }
    }
    let total = HEADER_LEN + ext_len + len + TRAILER_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            available: buf.len(),
        });
    }
    if buf.len() > total {
        return Err(WireError::TrailingBytes(buf.len() - total));
    }
    let truncated = WireError::Truncated {
        needed: total,
        available: buf.len(),
    };
    let ext = buf.get(HEADER_LEN..HEADER_LEN + ext_len).ok_or(truncated)?;
    let payload = buf
        .get(HEADER_LEN + ext_len..HEADER_LEN + ext_len + len)
        .ok_or(WireError::Truncated {
            needed: total,
            available: buf.len(),
        })?;
    let trailer = arr4(buf.get(HEADER_LEN + ext_len + len..).unwrap_or(&[]))?;
    check_crc(&header, ext, payload, trailer)?;
    Ok(FrameView {
        version,
        kind,
        trace,
        payload,
    })
}

fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, FrameKind, usize), WireError> {
    let [m0, m1, version, kind, l0, l1, l2, l3] = *header;
    if [m0, m1] != MAGIC {
        return Err(WireError::BadMagic([m0, m1]));
    }
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = FrameKind::from_byte(kind)?;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len: len as u64,
            cap: MAX_PAYLOAD as u64,
        });
    }
    Ok((version, kind, len))
}

fn check_crc(
    header: &[u8; HEADER_LEN],
    ext: &[u8],
    payload: &[u8],
    trailer: [u8; TRAILER_LEN],
) -> Result<(), WireError> {
    let [_, _, version, kind, ..] = *header;
    let expected = u32::from_le_bytes(trailer);
    let actual = fnv1a(&[&[version, kind], ext, payload]);
    if expected != actual {
        return Err(WireError::ChecksumMismatch { expected, actual });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// `usize` travels as `u64` so 32- and 64-bit peers interoperate.
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn len(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize, "collection too large for wire");
        self.u32(n as u32);
    }

    fn string(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let s = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            })?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(arr4(self.take(4)?)?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(arr8(self.take(8)?)?))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(arr8(self.take(8)?)?))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Oversized {
            len: v,
            cap: usize::MAX as u64,
        })
    }

    /// Collection length. Bounded by the bytes actually present (every
    /// element is ≥ 1 byte), so a corrupted count cannot drive a huge
    /// pre-allocation.
    fn len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            b => Err(WireError::BadTag {
                what: "option",
                tag: b,
            }),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

fn read_vec<T>(
    r: &mut Reader<'_>,
    mut elem: impl FnMut(&mut Reader<'_>) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(elem(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Domain encodings
// ---------------------------------------------------------------------------

fn write_mode(w: &mut Writer, m: ArchiveMode) {
    w.u8(match m {
        ArchiveMode::Off => 0,
        ArchiveMode::Private => 1,
        ArchiveMode::Community => 2,
    });
}

fn read_mode(r: &mut Reader<'_>) -> Result<ArchiveMode, WireError> {
    match r.u8()? {
        0 => Ok(ArchiveMode::Off),
        1 => Ok(ArchiveMode::Private),
        2 => Ok(ArchiveMode::Community),
        tag => Err(WireError::BadTag {
            what: "ArchiveMode",
            tag,
        }),
    }
}

fn write_event(w: &mut Writer, e: &ClientEvent) {
    match e {
        ClientEvent::Visit(v) => {
            w.u8(0);
            w.u32(v.user);
            w.u32(v.session);
            w.u32(v.page);
            w.string(&v.url);
            w.u64(v.time);
            w.opt_u32(v.referrer);
        }
        ClientEvent::Bookmark {
            user,
            page,
            url,
            folder,
            time,
        } => {
            w.u8(1);
            w.u32(*user);
            w.u32(*page);
            w.string(url);
            w.string(folder);
            w.u64(*time);
        }
        ClientEvent::SetMode { user, mode, time } => {
            w.u8(2);
            w.u32(*user);
            write_mode(w, *mode);
            w.u64(*time);
        }
    }
}

fn read_event(r: &mut Reader<'_>) -> Result<ClientEvent, WireError> {
    match r.u8()? {
        0 => Ok(ClientEvent::Visit(VisitEvent {
            user: r.u32()?,
            session: r.u32()?,
            page: r.u32()?,
            url: r.string()?,
            time: r.u64()?,
            referrer: r.opt_u32()?,
        })),
        1 => Ok(ClientEvent::Bookmark {
            user: r.u32()?,
            page: r.u32()?,
            url: r.string()?,
            folder: r.string()?,
            time: r.u64()?,
        }),
        2 => Ok(ClientEvent::SetMode {
            user: r.u32()?,
            mode: read_mode(r)?,
            time: r.u64()?,
        }),
        tag => Err(WireError::BadTag {
            what: "ClientEvent",
            tag,
        }),
    }
}

fn write_scored(w: &mut Writer, items: &[(u32, f64)]) {
    w.len(items.len());
    for (id, score) in items {
        w.u32(*id);
        w.f64(*score);
    }
}

fn read_scored(r: &mut Reader<'_>) -> Result<Vec<(u32, f64)>, WireError> {
    read_vec(r, |r| Ok((r.u32()?, r.f64()?)))
}

fn write_trail(w: &mut Writer, t: &TrailContext) {
    w.len(t.nodes.len());
    for n in &t.nodes {
        w.u32(n.page);
        w.u32(n.visit_count);
        w.u64(n.last_time);
    }
    w.len(t.edges.len());
    for (a, b, count) in &t.edges {
        w.u32(*a);
        w.u32(*b);
        w.u32(*count);
    }
}

fn read_trail(r: &mut Reader<'_>) -> Result<TrailContext, WireError> {
    let nodes = read_vec(r, |r| {
        Ok(ContextNode {
            page: r.u32()?,
            visit_count: r.u32()?,
            last_time: r.u64()?,
        })
    })?;
    let edges = read_vec(r, |r| Ok((r.u32()?, r.u32()?, r.u32()?)))?;
    Ok(TrailContext { nodes, edges })
}

fn write_histogram(w: &mut Writer, h: &HistogramSnapshot) {
    for b in &h.buckets {
        w.u64(*b);
    }
    w.u64(h.count);
    w.u64(h.sum);
}

fn read_histogram(r: &mut Reader<'_>) -> Result<HistogramSnapshot, WireError> {
    let mut buckets = [0u64; NUM_BUCKETS];
    for b in buckets.iter_mut() {
        *b = r.u64()?;
    }
    Ok(HistogramSnapshot {
        buckets,
        count: r.u64()?,
        sum: r.u64()?,
    })
}

fn write_snapshot(w: &mut Writer, s: &Snapshot) {
    w.len(s.counters.len());
    for (name, v) in &s.counters {
        w.string(name);
        w.u64(*v);
    }
    w.len(s.gauges.len());
    for (name, v) in &s.gauges {
        w.string(name);
        w.i64(*v);
    }
    w.len(s.histograms.len());
    for (name, h) in &s.histograms {
        w.string(name);
        write_histogram(w, h);
    }
    w.len(s.events.len());
    for (subsystem, ring) in &s.events {
        w.string(subsystem);
        w.len(ring.len());
        for ev in ring {
            w.u64(ev.seq);
            w.string(&ev.message);
        }
    }
}

fn read_snapshot(r: &mut Reader<'_>) -> Result<Snapshot, WireError> {
    let counters = read_vec(r, |r| Ok((r.string()?, r.u64()?)))?;
    let gauges = read_vec(r, |r| Ok((r.string()?, r.i64()?)))?;
    let histograms = read_vec(r, |r| Ok((r.string()?, read_histogram(r)?)))?;
    let events = read_vec(r, |r| {
        let subsystem = r.string()?;
        let ring = read_vec(r, |r| {
            Ok(Event {
                seq: r.u64()?,
                message: r.string()?,
            })
        })?;
        Ok((subsystem, ring))
    })?;
    Ok(Snapshot {
        counters,
        gauges,
        histograms,
        events,
    })
}

fn write_trace_data(w: &mut Writer, t: &TraceData) {
    w.u64(t.trace_id);
    w.len(t.spans.len());
    for s in &t.spans {
        w.u32(s.id);
        w.opt_u32(s.parent);
        w.string(&s.name);
        w.u64(s.start_ns);
        w.u64(s.end_ns);
        w.len(s.annotations.len());
        for (k, v) in &s.annotations {
            w.string(k);
            w.string(v);
        }
    }
}

fn read_trace_data(r: &mut Reader<'_>) -> Result<TraceData, WireError> {
    let trace_id = r.u64()?;
    let spans = read_vec(r, |r| {
        Ok(SpanData {
            id: r.u32()?,
            parent: r.opt_u32()?,
            name: r.string()?,
            start_ns: r.u64()?,
            end_ns: r.u64()?,
            annotations: read_vec(r, |r| Ok((r.string()?, r.string()?)))?,
        })
    })?;
    Ok(TraceData { trace_id, spans })
}

// ---------------------------------------------------------------------------
// Request / Response
// ---------------------------------------------------------------------------

// Tag tables. Appending a variant appends a tag; existing tags are frozen
// (the versioning rule above). The `match`es below are deliberately
// wildcard-free: adding a `Request`/`Response` variant without teaching the
// codec about it fails compilation *here* before any test runs.

/// Encode a request payload (frame it with [`write_frame`] /
/// [`frame_bytes`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match req {
        Request::Event(e) => {
            w.u8(0);
            write_event(&mut w, e);
        }
        Request::Recall {
            user,
            query,
            since,
            until,
            k,
        } => {
            w.u8(1);
            w.u32(*user);
            w.string(query);
            w.u64(*since);
            w.u64(*until);
            w.usize(*k);
        }
        Request::TrailReplay {
            user,
            folder,
            since,
            max_pages,
        } => {
            w.u8(2);
            w.u32(*user);
            w.u32(*folder);
            w.u64(*since);
            w.usize(*max_pages);
        }
        Request::WhatsNew {
            user,
            folder,
            since,
            k,
        } => {
            w.u8(3);
            w.u32(*user);
            w.u32(*folder);
            w.u64(*since);
            w.usize(*k);
        }
        Request::Bill { user, since, until } => {
            w.u8(4);
            w.u32(*user);
            w.u64(*since);
            w.u64(*until);
        }
        Request::SimilarSurfers { user, k } => {
            w.u8(5);
            w.u32(*user);
            w.usize(*k);
        }
        Request::Recommend { user, k } => {
            w.u8(6);
            w.u32(*user);
            w.usize(*k);
        }
        Request::ImportBookmarks { user, html, time } => {
            w.u8(7);
            w.u32(*user);
            w.string(html);
            w.u64(*time);
        }
        Request::ExportBookmarks { user } => {
            w.u8(8);
            w.u32(*user);
        }
        Request::ProposeFolders { user, k } => {
            w.u8(9);
            w.u32(*user);
            w.usize(*k);
        }
        Request::Stats => {
            w.u8(10);
        }
        Request::Traces { slow_only, limit } => {
            w.u8(11);
            w.bool(*slow_only);
            w.usize(*limit);
        }
    }
    w.buf
}

/// Decode a request payload produced by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        0 => Request::Event(read_event(&mut r)?),
        1 => Request::Recall {
            user: r.u32()?,
            query: r.string()?,
            since: r.u64()?,
            until: r.u64()?,
            k: r.usize()?,
        },
        2 => Request::TrailReplay {
            user: r.u32()?,
            folder: r.u32()?,
            since: r.u64()?,
            max_pages: r.usize()?,
        },
        3 => Request::WhatsNew {
            user: r.u32()?,
            folder: r.u32()?,
            since: r.u64()?,
            k: r.usize()?,
        },
        4 => Request::Bill {
            user: r.u32()?,
            since: r.u64()?,
            until: r.u64()?,
        },
        5 => Request::SimilarSurfers {
            user: r.u32()?,
            k: r.usize()?,
        },
        6 => Request::Recommend {
            user: r.u32()?,
            k: r.usize()?,
        },
        7 => Request::ImportBookmarks {
            user: r.u32()?,
            html: r.string()?,
            time: r.u64()?,
        },
        8 => Request::ExportBookmarks { user: r.u32()? },
        9 => Request::ProposeFolders {
            user: r.u32()?,
            k: r.usize()?,
        },
        10 => Request::Stats,
        11 => Request::Traces {
            slow_only: r.bool()?,
            limit: r.usize()?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "Request",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(req)
}

/// Encode a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match resp {
        Response::Ack { archived } => {
            w.u8(0);
            w.bool(*archived);
        }
        Response::Recall(hits) => {
            w.u8(1);
            w.len(hits.len());
            for h in hits {
                w.u32(h.page);
                w.string(&h.url);
                w.f32(h.score);
                w.u64(h.last_visit);
                w.string(&h.snippet);
            }
        }
        Response::TrailReplay(t) => {
            w.u8(2);
            write_trail(&mut w, t);
        }
        Response::WhatsNew(items) => {
            w.u8(3);
            write_scored(&mut w, items);
        }
        Response::Bill(lines) => {
            w.u8(4);
            w.len(lines.len());
            for l in lines {
                w.string(&l.folder);
                w.u64(l.bytes);
                w.u32(l.visits);
                w.f64(l.fraction);
            }
        }
        Response::SimilarSurfers(items) => {
            w.u8(5);
            write_scored(&mut w, items);
        }
        Response::Recommend(items) => {
            w.u8(6);
            write_scored(&mut w, items);
        }
        Response::Imported {
            archived,
            rejected,
            unresolved,
        } => {
            w.u8(7);
            w.usize(*archived);
            w.usize(*rejected);
            w.usize(*unresolved);
        }
        Response::Exported(html) => {
            w.u8(8);
            w.string(html);
        }
        Response::Proposals(props) => {
            w.u8(9);
            w.len(props.len());
            for p in props {
                w.string(&p.name);
                w.len(p.pages.len());
                for page in &p.pages {
                    w.u32(*page);
                }
            }
        }
        Response::Stats(snap) => {
            w.u8(10);
            write_snapshot(&mut w, snap);
        }
        Response::Error(msg) => {
            w.u8(11);
            w.string(msg);
        }
        Response::Overloaded { in_flight, limit } => {
            w.u8(12);
            w.u32(*in_flight);
            w.u32(*limit);
        }
        Response::Traces(traces) => {
            w.u8(13);
            w.len(traces.len());
            for t in traces {
                write_trace_data(&mut w, t);
            }
        }
    }
    w.buf
}

/// Decode a response payload produced by [`encode_response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let resp = match r.u8()? {
        0 => Response::Ack {
            archived: r.bool()?,
        },
        1 => Response::Recall(read_vec(&mut r, |r| {
            Ok(RecallHit {
                page: r.u32()?,
                url: r.string()?,
                score: r.f32()?,
                last_visit: r.u64()?,
                snippet: r.string()?,
            })
        })?),
        2 => Response::TrailReplay(read_trail(&mut r)?),
        3 => Response::WhatsNew(read_scored(&mut r)?),
        4 => Response::Bill(read_vec(&mut r, |r| {
            Ok(BillLine {
                folder: r.string()?,
                bytes: r.u64()?,
                visits: r.u32()?,
                fraction: r.f64()?,
            })
        })?),
        5 => Response::SimilarSurfers(read_scored(&mut r)?),
        6 => Response::Recommend(read_scored(&mut r)?),
        7 => Response::Imported {
            archived: r.usize()?,
            rejected: r.usize()?,
            unresolved: r.usize()?,
        },
        8 => Response::Exported(r.string()?),
        9 => Response::Proposals(read_vec(&mut r, |r| {
            Ok(FolderProposal {
                name: r.string()?,
                pages: read_vec(r, |r| r.u32())?,
            })
        })?),
        10 => Response::Stats(read_snapshot(&mut r)?),
        11 => Response::Error(r.string()?),
        12 => Response::Overloaded {
            in_flight: r.u32()?,
            limit: r.u32()?,
        },
        13 => Response::Traces(read_vec(&mut r, read_trace_data)?),
        tag => {
            return Err(WireError::BadTag {
                what: "Response",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(resp)
}

// Convenience stream helpers used by client and server.

/// Frame and write a request.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    write_frame(w, FrameKind::Request, &encode_request(req))
}

/// Frame and write a response.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    write_frame(w, FrameKind::Response, &encode_response(resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = encode_request(&Request::Stats);
        let frame = frame_bytes(FrameKind::Request, &payload);
        let (kind, decoded) = decode_frame(&frame).expect("roundtrip");
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(decoded, &payload[..]);
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = frame_bytes(FrameKind::Request, &encode_request(&Request::Stats));
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(WireError::Oversized { .. })
        ));
        // Stream path too: the reader must not try to allocate 4 GiB.
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn stream_eof_is_io_error() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        assert!(matches!(
            decode_request(&[200]),
            Err(WireError::BadTag {
                what: "Request",
                tag: 200
            })
        ));
        assert!(matches!(
            decode_response(&[200]),
            Err(WireError::BadTag {
                what: "Response",
                tag: 200
            })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = encode_request(&Request::Stats);
        payload.push(0);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn trace_context_roundtrips_in_v3_frames() {
        let payload = encode_request(&Request::Stats);
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            retry_of: None,
        };
        let frame = frame_bytes_versioned(3, FrameKind::Request, &payload, Some(ctx));
        let view = decode_frame_meta(&frame).expect("decode");
        assert_eq!(view.version, 3);
        assert_eq!(view.trace, Some(ctx));
        assert_eq!(view.payload, &payload[..]);
        // Stream path agrees.
        let mut cursor = std::io::Cursor::new(frame);
        let meta = read_frame_meta(&mut cursor).expect("read");
        assert_eq!(meta.trace, Some(ctx));
        assert_eq!(meta.payload, payload);
    }

    #[test]
    fn retry_of_roundtrips_in_v4_frames() {
        let payload = encode_request(&Request::Stats);
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            retry_of: Some(0x0123_4567_89AB_CDEF),
        };
        let frame = frame_bytes_versioned(WIRE_VERSION, FrameKind::Request, &payload, Some(ctx));
        let view = decode_frame_meta(&frame).expect("decode");
        assert_eq!(view.version, WIRE_VERSION);
        assert_eq!(view.trace, Some(ctx));
        assert_eq!(view.payload, &payload[..]);
        let mut cursor = std::io::Cursor::new(frame);
        let meta = read_frame_meta(&mut cursor).expect("read");
        assert_eq!(meta.trace, Some(ctx));
        assert_eq!(meta.payload, payload);
    }

    #[test]
    fn retry_flag_rejected_in_v3_frames_and_without_trace() {
        let payload = encode_request(&Request::Stats);
        // A v3 frame claiming the v4-only retry bit is malformed (the CRC
        // must be recomputed so the flag byte, not the checksum, trips).
        let ctx = TraceContext {
            trace_id: 7,
            retry_of: None,
        };
        let mut frame = frame_bytes_versioned(3, FrameKind::Request, &payload, Some(ctx));
        frame[HEADER_LEN] |= EXT_FLAG_RETRY;
        let crc_start = frame.len() - TRAILER_LEN;
        let crc = fnv1a(&[&frame[2..crc_start]]).to_le_bytes();
        frame[crc_start..].copy_from_slice(&crc);
        assert!(matches!(
            decode_frame_meta(&frame),
            Err(WireError::BadTag {
                what: "frame extension flags",
                ..
            })
        ));
        // And a retry-of id with no trace id to qualify is malformed in
        // any version.
        let mut frame = frame_bytes_versioned(WIRE_VERSION, FrameKind::Request, &payload, None);
        frame[HEADER_LEN] = EXT_FLAG_RETRY;
        let crc_start = frame.len() - TRAILER_LEN;
        let crc = fnv1a(&[&frame[2..crc_start]]).to_le_bytes();
        frame[crc_start..].copy_from_slice(&crc);
        assert!(matches!(
            decode_frame_meta(&frame),
            Err(WireError::BadTag {
                what: "frame extension flags",
                ..
            })
        ));
    }

    #[test]
    fn v3_ext_block_layout_is_unchanged_by_the_v4_bump() {
        let payload = encode_request(&Request::Stats);
        let ctx = TraceContext {
            trace_id: 11,
            retry_of: None,
        };
        let frame = frame_bytes_versioned(3, FrameKind::Request, &payload, Some(ctx));
        // v3 ext block: flags byte + 8-byte trace id, nothing more.
        assert_eq!(
            frame.len(),
            HEADER_LEN + 9 + payload.len() + TRAILER_LEN,
            "v3 frame must not grow a retry-of field"
        );
    }

    #[test]
    fn v2_frames_still_decode_and_carry_no_trace() {
        let payload = encode_request(&Request::Stats);
        let frame = frame_bytes_versioned(2, FrameKind::Request, &payload, None);
        // Byte-identical to the pre-v3 layout: header, payload, crc.
        assert_eq!(frame.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
        let view = decode_frame_meta(&frame).expect("decode v2");
        assert_eq!(view.version, 2);
        assert_eq!(view.trace, None);
        assert_eq!(view.payload, &payload[..]);
        let (kind, decoded) = decode_frame(&frame).expect("plain decode");
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(decoded, &payload[..]);
    }

    #[test]
    fn unknown_extension_flags_rejected() {
        let payload = encode_request(&Request::Stats);
        let mut frame = frame_bytes_versioned(WIRE_VERSION, FrameKind::Request, &payload, None);
        frame[HEADER_LEN] = 0x82; // unknown high bits
        assert!(matches!(
            decode_frame_meta(&frame),
            Err(WireError::BadTag {
                what: "frame extension flags",
                ..
            })
        ));
    }

    #[test]
    fn unknown_versions_rejected() {
        let payload = encode_request(&Request::Stats);
        let mut frame = frame_bytes(FrameKind::Request, &payload);
        for bad in [0u8, 1, WIRE_VERSION + 1, 255] {
            frame[2] = bad;
            assert!(matches!(
                decode_frame_meta(&frame),
                Err(WireError::UnsupportedVersion(v)) if v == bad
            ));
        }
    }

    #[test]
    fn traces_request_and_response_roundtrip() {
        let req = Request::Traces {
            slow_only: true,
            limit: 17,
        };
        assert_eq!(decode_request(&encode_request(&req)).expect("req"), req);
        let resp = Response::Traces(vec![TraceData {
            trace_id: 42,
            spans: vec![
                SpanData {
                    id: 1,
                    parent: Some(0),
                    name: "index.bm25".into(),
                    start_ns: 10,
                    end_ns: 90,
                    annotations: vec![],
                },
                SpanData {
                    id: 0,
                    parent: None,
                    name: "net.req".into(),
                    start_ns: 0,
                    end_ns: 100,
                    annotations: vec![("lock_wait_ns".into(), "7".into())],
                },
            ],
        }]);
        assert_eq!(
            decode_response(&encode_response(&resp)).expect("resp"),
            resp
        );
    }
}
