//! The concurrent TCP serving layer.
//!
//! One accept thread feeds connections into a *bounded* queue drained by a
//! fixed pool of worker threads; each worker speaks the frame protocol of
//! [`crate::wire`] and dispatches decoded requests against the shared
//! [`Memex`].
//!
//! **Read/write split:** requests are classified by
//! [`memex_core::servlet::Request::is_read`]. Reads dispatch through
//! [`dispatch_read`] under a *shared* `RwLock` read guard, so any number of
//! workers answer queries in parallel; writes take the exclusive guard,
//! apply the mutation plus demons/refresh through [`dispatch_write`], and
//! bump the write epoch. The paper's §3 single-producer/multi-consumer
//! serving shape, on one process.
//!
//! **Epoch-keyed read cache:** identical read requests between two writes
//! hit a bounded FIFO cache keyed by the request itself. Every entry is
//! tagged with the write epoch *loaded before* the underlying dispatch
//! acquired the read lock; an entry is served only while its tag equals the
//! current epoch, so a cached response can never outlive the write that
//! invalidated it (a racing write can only *under*-tag an entry, making it
//! die early — never serve stale). `Request::Stats` bypasses the cache:
//! its answer changes without any write. Counters: `net.read.cache.hit`,
//! `net.read.cache.miss`, `net.read.cache.evict`.
//!
//! **Admission control:** a semaphore-style in-flight counter caps how many
//! requests may be dispatching at once. A request arriving above the cap is
//! answered immediately with [`Response::Overloaded`] (counted in
//! `net.shed`) instead of queueing without bound; a connection arriving
//! while the accept queue is full gets the same verdict and is closed
//! (counted in `net.shed` and `net.conn.rejected`). The server never makes
//! a client wait silently for capacity.
//!
//! **Shutdown:** [`NetServer::shutdown`] flips the shutdown flag, wakes the
//! accept thread with a self-connection, and joins every thread. Workers
//! drain the accept queue before exiting (the channel hands out buffered
//! connections even after the sender is dropped), and any in-progress
//! request completes and is answered — nothing is dropped silently.
//!
//! **Tracing:** when [`NetServerConfig::trace`] enables it, every
//! exchanged request gets a root span (`net.req`) covering
//! decode → lock-acquire → dispatch → encode, annotated with
//! `lock_wait_ns`/`lock_kind` at RwLock acquisition (and `cache_hit=true`
//! on cache-served reads). The trace id comes from the v3 frame envelope
//! when the client stamped one, else from the server's seeded generator;
//! responses echo it. Completed span trees land in the Memex's
//! [`memex_obs::Tracer`] flight recorder (and slow log) and are served
//! over the wire by `Request::Traces`. Responses are always framed in the
//! wire version the client spoke, so v2 clients keep working unchanged.
//!
//! All serving stats flow through the Memex's own metrics registry
//! (`net.conn.*`, `net.req.*`, `net.read.*`, `net.shed`,
//! `net.decode.errors`), so `Request::Stats` — itself servable over the
//! wire — reports them.

use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use memex_core::memex::Memex;
use memex_core::servlet::{dispatch_read, dispatch_write, Classified, Request, Response};
use memex_obs::{trace, MetricsRegistry, TraceConfig, Tracer};

use crate::wire::{self, FrameKind, TraceContext, WireError};

/// Tuning knobs for [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Fixed worker-pool size (each worker owns one connection at a time).
    pub workers: usize,
    /// Bound of the accepted-connection queue; a connection arriving while
    /// the queue is full is shed with an overload frame.
    pub accept_queue: usize,
    /// Maximum requests dispatching concurrently before load-shedding.
    pub max_in_flight: usize,
    /// Per-connection read timeout. A connection idle longer than this is
    /// closed (clients reconnect transparently); during shutdown it bounds
    /// how long a worker can stay parked on a silent peer.
    pub read_timeout: Duration,
    /// Per-response write timeout.
    pub write_timeout: Duration,
    /// Capacity (entries) of the epoch-keyed read-result cache; `0`
    /// disables caching entirely.
    pub read_cache: usize,
    /// Request-tracing knobs (applied to the Memex's tracer at start).
    /// Disabled by default: tracing is opt-in per server.
    pub trace: TraceConfig,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            workers: 4,
            accept_queue: 64,
            max_in_flight: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            read_cache: 256,
            trace: TraceConfig::default(),
        }
    }
}

/// Bounded FIFO read-result cache keyed by the request. Entries carry the
/// write epoch observed before their dispatch; [`ReadCache::get`] serves an
/// entry only while that tag equals the current epoch and eagerly drops
/// stale entries it trips over.
struct ReadCache {
    capacity: usize,
    map: HashMap<Request, (u64, Response)>,
    /// Insertion order for FIFO eviction; may lag `map` (stale entries are
    /// removed from `map` first), which eviction tolerates.
    order: VecDeque<Request>,
}

impl ReadCache {
    fn new(capacity: usize) -> ReadCache {
        ReadCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&mut self, key: &Request, epoch: u64) -> Option<Response> {
        match self.map.get(key) {
            Some((tag, resp)) if *tag == epoch => Some(resp.clone()),
            Some(_) => {
                // Stale: a write invalidated it. Drop eagerly so the slot
                // frees up without waiting for FIFO eviction.
                self.map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Insert; returns how many live entries were evicted for capacity.
    fn put(&mut self, key: Request, epoch: u64, resp: Response) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut evicted = 0u64;
        if self.map.insert(key.clone(), (epoch, resp)).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        if self.map.remove(&old).is_some() {
                            evicted += 1;
                        }
                    }
                    None => break,
                }
            }
        }
        evicted
    }
}

struct Shared {
    memex: RwLock<Memex>,
    registry: MetricsRegistry,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    /// Bumped (under the write lock, before the mutation) on every
    /// dispatched write; versions the read cache.
    epoch: AtomicU64,
    cache: Mutex<ReadCache>,
    config: NetServerConfig,
    tracer: Tracer,
}

impl Shared {
    fn cache_get(&self, key: &Request, epoch: u64) -> Option<Response> {
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key, epoch)
    }

    fn cache_put(&self, key: Request, epoch: u64, resp: Response) {
        let evicted = self
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .put(key, epoch, resp);
        if evicted > 0 {
            self.registry.counter("net.read.cache.evict").add(evicted);
        }
    }
}

/// A running Memex network server. Dropping without calling
/// [`NetServer::shutdown`] detaches the threads; call `shutdown` for a
/// clean join.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `memex`. The server takes ownership; [`NetServer::shutdown`]
    /// hands it back.
    pub fn start(
        memex: Memex,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = memex.registry().clone();
        memex.tracer().configure(config.trace);
        let tracer = memex.tracer().clone();
        let shared = Arc::new(Shared {
            memex: RwLock::new(memex),
            registry,
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            cache: Mutex::new(ReadCache::new(config.read_cache)),
            config,
            tracer,
        });
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("memex-net-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("memex-net-accept".into())
            .spawn(move || accept_loop(listener, tx, accept_shared))?;
        Ok(NetServer {
            local_addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain the queue, join every thread, and hand the
    /// `Memex` back. In-progress requests are answered before their
    /// connections close.
    pub fn shutdown(mut self) -> Memex {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept thread: it may be parked in `accept()`.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // The accept thread dropped the sender; workers drain what is
        // buffered, then their `recv` disconnects and they exit.
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // Every thread is joined, so this Arc is unique. Spin defensively
        // on the (unreachable) contended case instead of panicking —
        // shutdown must never kill the thread that owns the data.
        let mut shared = self.shared;
        let shared = loop {
            match Arc::try_unwrap(shared) {
                Ok(s) => break s,
                Err(still_shared) => {
                    shared = still_shared;
                    std::thread::yield_now();
                }
            }
        };
        // A panicking write dispatch poisons the memex lock; the state
        // behind it is still the state — recover it rather than propagate
        // the poison.
        match shared.memex.into_inner() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Test instrumentation: poison the internal `Memex` lock by unwinding
    /// a throwaway thread while it holds the *write* guard (only writers
    /// poison an `RwLock`). The loopback suite uses this to prove a
    /// poisoned lock degrades to a typed [`Response::Error`] on every
    /// subsequent request — never a dead worker or a hung connection.
    #[doc(hidden)]
    pub fn poison_memex_for_test(&self) {
        let shared = Arc::clone(&self.shared);
        let _ = std::thread::Builder::new()
            .name("memex-net-poisoner".into())
            .spawn(move || {
                let _guard = shared.memex.write();
                // Unwind without tripping the panic hook: quiet in test
                // output, still poisons the held lock.
                std::panic::resume_unwind(Box::new("poisoning memex lock for test"));
            })
            .map(|h| h.join());
    }
}

fn accept_loop(listener: TcpListener, tx: SyncSender<TcpStream>, shared: Arc<Shared>) {
    let reg = &shared.registry;
    let accepted = reg.counter("net.conn.accepted");
    let rejected = reg.counter("net.conn.rejected");
    let shed = reg.counter("net.shed");
    let errors = reg.counter("net.accept.errors");
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late arrival) — close it.
                    drop(stream);
                    break;
                }
                accepted.inc();
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // Bounded queue is the contract: shed explicitly
                        // rather than let connections pile up unseen.
                        shed.inc();
                        rejected.inc();
                        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                        // The client's wire version is unknown before its
                        // first frame: answer in v2, which every client
                        // this server supports can decode.
                        let _ = wire::write_frame_versioned(
                            &mut stream,
                            wire::MIN_WIRE_VERSION,
                            FrameKind::Response,
                            &wire::encode_response(&Response::Overloaded {
                                in_flight: shared.config.accept_queue as u32,
                                limit: shared.config.accept_queue as u32,
                            }),
                            None,
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => errors.inc(),
        }
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        // Take the next connection, then release the receiver lock before
        // serving it so siblings keep draining the queue. A poisoned
        // receiver lock (a sibling died mid-recv) must not cascade into
        // more dead workers — recover the guard and keep draining.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match stream {
            Ok(s) => serve_connection(s, &shared),
            Err(_) => return, // sender dropped and queue drained
        }
    }
}

/// Outcome of one request/response exchange on a connection.
enum Exchange {
    Served,
    Closed,
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let reg = &shared.registry;
    let active = reg.gauge("net.conn.active");
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    active.add(1);
    while let Exchange::Served = exchange_one(&mut stream, shared) {
        // After answering, honour a pending shutdown: the request in
        // flight was served, the connection closes at a frame boundary.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    active.add(-1);
    reg.counter("net.conn.closed").inc();
}

/// Record how long an RwLock acquisition stalled this request: into the
/// `net.lock.wait` histogram always, and onto the active trace's root
/// span (`lock_wait_ns`, `lock_kind`) when tracing is on.
fn note_lock_acquired(reg: &MetricsRegistry, kind: &str, waited_since: Instant) {
    let wait_ns = waited_since.elapsed().as_nanos() as u64;
    reg.histogram("net.lock.wait").record(wait_ns);
    trace::annotate("lock_wait_ns", wait_ns);
    trace::annotate("lock_kind", kind);
}

/// Serve one read request: probe the epoch-keyed cache, else dispatch
/// under the shared read guard and (when cacheable) remember the answer.
fn answer_read(shared: &Shared, request: memex_core::servlet::ReadRequest) -> Response {
    let reg = &shared.registry;
    let started = Instant::now();
    // The epoch MUST be loaded before the read lock is acquired: a write
    // that slips in between can only make this dispatch's tag *older* than
    // the state it actually saw, so the entry dies early instead of
    // serving stale.
    let epoch = shared.epoch.load(Ordering::SeqCst);
    // `Stats` and `Traces` bypass the cache: their answers change without
    // any write (new samples, newly completed traces).
    let cacheable = shared.config.read_cache > 0
        && !matches!(
            request.as_request(),
            Request::Stats | Request::Traces { .. }
        );
    let cache_key = if cacheable {
        Some(request.as_request().clone())
    } else {
        None
    };
    if let Some(key) = &cache_key {
        if let Some(resp) = shared.cache_get(key, epoch) {
            reg.counter("net.req.ok").inc();
            reg.counter("net.read.ok").inc();
            reg.counter("net.read.cache.hit").inc();
            // A cache hit is a served request: record it in the same
            // per-servlet histogram as a dispatched one, otherwise the
            // histogram silently excludes the fastest responses.
            reg.histogram(key.latency_metric())
                .record(started.elapsed().as_nanos() as u64);
            trace::annotate("cache_hit", "true");
            return resp;
        }
        reg.counter("net.read.cache.miss").inc();
    }
    // The lock is taken *inside* the unwind boundary: a panicking dispatch
    // drops the guard mid-unwind and the worker survives to answer with a
    // typed error. (Read guards do not poison an `RwLock`; a poisoned
    // observation here means an earlier *write* panicked.)
    let lock_started = Instant::now();
    let dispatched =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match shared.memex.read() {
            Ok(memex) => {
                note_lock_acquired(reg, "read", lock_started);
                Some(dispatch_read(&memex, request))
            }
            Err(_poisoned) => None,
        }));
    match dispatched {
        Ok(Some(resp)) => {
            reg.counter("net.req.ok").inc();
            reg.counter("net.read.ok").inc();
            if let Some(key) = cache_key {
                shared.cache_put(key, epoch, resp.clone());
            }
            resp
        }
        Ok(None) => {
            reg.counter("net.req.poisoned").inc();
            Response::Error("internal: memex state poisoned by an earlier panic".into())
        }
        Err(_panic) => {
            reg.counter("net.req.panics").inc();
            Response::Error("internal: request dispatch panicked".into())
        }
    }
}

/// Serve one write request under the exclusive guard, bumping the write
/// epoch (which invalidates every cached read) before the mutation runs.
fn answer_write(shared: &Shared, request: memex_core::servlet::WriteRequest) -> Response {
    let reg = &shared.registry;
    let lock_started = Instant::now();
    let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match shared.memex.write() {
            Ok(mut memex) => {
                note_lock_acquired(reg, "write", lock_started);
                // Bump before mutating: a reader that loaded the old epoch
                // concurrently will tag its entry with it and the entry
                // dies the moment this store lands.
                shared.epoch.fetch_add(1, Ordering::SeqCst);
                Some(dispatch_write(&mut memex, request))
            }
            Err(_poisoned) => None,
        }
    }));
    match dispatched {
        Ok(Some(resp)) => {
            reg.counter("net.req.ok").inc();
            resp
        }
        Ok(None) => {
            reg.counter("net.req.poisoned").inc();
            Response::Error("internal: memex state poisoned by an earlier panic".into())
        }
        Err(_panic) => {
            // The panicking dispatch held the write guard, so the lock is
            // now poisoned; later requests degrade to typed errors above.
            reg.counter("net.req.panics").inc();
            Response::Error("internal: request dispatch panicked".into())
        }
    }
}

/// Answer in the wire version the client spoke, echoing its trace context
/// (v3 frames only): a v2 client never sees a frame it cannot decode.
fn respond(
    stream: &mut TcpStream,
    version: u8,
    trace_ctx: Option<TraceContext>,
    resp: &Response,
) -> Result<(), WireError> {
    let trace_ctx = if version >= 3 { trace_ctx } else { None };
    wire::write_frame_versioned(
        stream,
        version,
        FrameKind::Response,
        &wire::encode_response(resp),
        trace_ctx,
    )
}

fn exchange_one(stream: &mut TcpStream, shared: &Shared) -> Exchange {
    let reg = &shared.registry;
    let frame = match wire::read_frame_meta(stream) {
        Ok(f) => f,
        Err(WireError::Io(e)) => {
            // Clean close, peer reset, or idle timeout: just drop the
            // connection. Framing stays in sync only from a frame
            // boundary, so a timeout mid-frame also closes.
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                reg.counter("net.conn.idle_closed").inc();
            }
            return Exchange::Closed;
        }
        Err(e) => {
            // Corrupted or unversioned frame: report and close (the stream
            // position is no longer trustworthy). The peer's version is
            // unknown, so answer in v2 — decodable by every client.
            reg.counter("net.decode.errors").inc();
            let _ = respond(
                stream,
                wire::MIN_WIRE_VERSION,
                None,
                &Response::Error(format!("decode: {e}")),
            );
            return Exchange::Closed;
        }
    };
    if frame.kind == FrameKind::Response {
        // A client must never send response frames; protocol violation.
        reg.counter("net.decode.errors").inc();
        let _ = respond(
            stream,
            frame.version,
            None,
            &Response::Error("protocol: response frame sent to server".into()),
        );
        return Exchange::Closed;
    }
    // Root span for the whole exchange, opened before payload decode so
    // the tree covers decode → lock-acquire → dispatch → encode. The id
    // is the client's (v3 trace context) or minted from the server's
    // seeded generator; the guard publishes the completed tree to the
    // flight recorder when it drops at the end of this function.
    let trace_guard = shared
        .tracer
        .start_trace("net.req", frame.trace.map(|t| t.trace_id));
    let decode_span = trace::span("net.decode");
    let request = match wire::decode_request(&frame.payload) {
        Ok(r) => r,
        Err(e) => {
            drop(decode_span);
            reg.counter("net.decode.errors").inc();
            let _ = respond(
                stream,
                frame.version,
                frame.trace,
                &Response::Error(format!("decode: {e}")),
            );
            return Exchange::Closed;
        }
    };
    drop(decode_span);
    // Admission control: acquire an in-flight permit or shed. The permit
    // covers lock wait + dispatch, so a convoy behind a slow request is
    // surfaced as explicit overload frames instead of unbounded queueing.
    let limit = shared.config.max_in_flight;
    let prev = shared.in_flight.fetch_add(1, Ordering::SeqCst);
    if prev >= limit {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        reg.counter("net.shed").inc();
        trace::annotate("shed", "true");
        let overload = Response::Overloaded {
            in_flight: prev.min(u32::MAX as usize) as u32,
            limit: limit.min(u32::MAX as usize) as u32,
        };
        return match respond(stream, frame.version, frame.trace, &overload) {
            Ok(()) => Exchange::Served,
            Err(_) => Exchange::Closed,
        };
    }
    let response = {
        let _span = reg.span("net.req.latency");
        match request.classify() {
            Classified::Read(r) => answer_read(shared, r),
            Classified::Write(w) => answer_write(shared, w),
        }
    };
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    let encode_started = Instant::now();
    let wrote = respond(stream, frame.version, frame.trace, &response);
    trace::record_span("net.encode", encode_started, Instant::now());
    // Completes the trace: everything after this is outside the request.
    drop(trace_guard);
    match wrote {
        Ok(()) => Exchange::Served,
        Err(_) => {
            reg.counter("net.conn.write_errors").inc();
            Exchange::Closed
        }
    }
}
