//! The concurrent TCP serving layer.
//!
//! One accept thread feeds connections into a *bounded* queue drained by a
//! fixed pool of worker threads; each worker speaks the frame protocol of
//! [`crate::wire`] and dispatches decoded requests against the served
//! [`Memex`] state — one replica per shard.
//!
//! **Read/write split:** requests are classified by
//! [`memex_core::servlet::Request::is_read`]. Reads dispatch through
//! [`dispatch_read`] under a *shared* `RwLock` read guard, so any number of
//! workers answer queries in parallel; writes take the exclusive guard,
//! apply the mutation plus demons/refresh through [`dispatch_write`], and
//! bump the write epoch. The paper's §3 single-producer/multi-consumer
//! serving shape, on one process.
//!
//! **Sharding (the shard router):** [`NetServer::start_sharded`] serves N
//! [`Memex`] replicas, each behind its *own* `RwLock`, epoch counter, and
//! read cache. [`memex_core::servlet::Request::shard_key`] routes every
//! user-scoped request to shard `user % N`, so a write by user A never
//! blocks a read by user B on another shard. A write applies eagerly on
//! its owner shard (demons included, exactly like a single Memex), then
//! fans out to every other shard's *inbound queue*; a shard absorbs its
//! queue — state-only applies plus **one** demon sweep for the whole batch
//! — before its next answer. Batch boundaries only influence unconfirmed
//! folder-classifier guesses, which no query answer depends on, so a
//! sharded server is answer-equivalent to a single Memex (pinned by
//! `memex-core/tests/sharded_equivalence.rs` and `tests/shard_loopback.rs`).
//! Community-scoped requests (`Stats`, `Traces` — shard key `None`) are
//! answered from an aggregation tier that merges every shard's metrics
//! registry (and reads the serving tracer) without taking any shard lock.
//! Per-shard serving is visible as `net.shard.<i>.*` metrics and a
//! `shard=<i>` root-span annotation.
//!
//! **Epoch-keyed read cache:** identical read requests between two writes
//! hit a bounded FIFO cache keyed by the request itself. Every entry is
//! tagged with the write epoch *loaded before* the underlying dispatch
//! acquired the read lock; an entry is served only while its tag equals the
//! current epoch, so a cached response can never outlive the write that
//! invalidated it (a racing write can only *under*-tag an entry, making it
//! die early — never serve stale). When the cache observes a newer epoch it
//! purges every stale-tagged entry in one sweep (counted in
//! `net.read.cache.stale_purged`), so dead entries stop occupying capacity
//! and can never force the eviction of fresh ones (`net.read.cache.evict`
//! counts only live-entry evictions). `Request::Stats` bypasses the cache:
//! its answer changes without any write. Counters: `net.read.cache.hit`,
//! `net.read.cache.miss`, `net.read.cache.evict`,
//! `net.read.cache.stale_purged`.
//!
//! **Admission control:** a semaphore-style in-flight counter caps how many
//! requests may be dispatching at once. A request arriving above the cap is
//! answered immediately with [`Response::Overloaded`] (counted in
//! `net.shed` *and* `net.req.shed`, with its latency recorded in
//! `net.req.latency` and its — short — trace completing normally) instead
//! of queueing without bound; a connection arriving while the accept queue
//! is full gets the same verdict and is closed (counted in `net.shed` and
//! `net.conn.rejected`; no request was read, so there is no `net.req.*`
//! accounting for it). The server never makes a client wait silently for
//! capacity.
//!
//! **Shutdown:** [`NetServer::shutdown`] / [`NetServer::shutdown_all`]
//! flip the shutdown flag, wake the accept thread with a self-connection,
//! and join every thread. Workers drain the accept queue before exiting
//! (the channel hands out buffered connections even after the sender is
//! dropped), and any in-progress request completes and is answered —
//! nothing is dropped silently. Each handed-back replica absorbs its
//! remaining inbound queue first, so it reflects every acknowledged write.
//!
//! **Tracing:** when [`NetServerConfig::trace`] enables it, every
//! exchanged request gets a root span (`net.req`) covering
//! decode → lock-acquire → dispatch → encode, annotated with
//! `lock_wait_ns`/`lock_kind` at RwLock acquisition, `shard=<i>` after
//! routing (and `cache_hit=true` on cache-served reads, `shed=true` on
//! overload verdicts, `retry_of=<id>` when a v4 client marked the request
//! as a retry of an earlier attempt). The trace id comes from the v3+
//! frame envelope when the client stamped one, else from the server's
//! seeded generator; responses echo it. Completed span trees land in the
//! serving (shard 0) Memex's [`memex_obs::Tracer`] flight recorder (and
//! slow log) and are served over the wire by `Request::Traces`. Responses
//! are always framed in the wire version the client spoke, so v2/v3
//! clients keep working unchanged.
//!
//! All serving stats flow through the serving Memex's metrics registry
//! (`net.conn.*`, `net.req.*`, `net.read.*`, `net.shed`, `net.shard.<i>.*`,
//! `net.decode.errors`), so `Request::Stats` — itself servable over the
//! wire — reports them.

use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use memex_core::memex::Memex;
use memex_core::servlet::{
    self, dispatch_read, dispatch_write, Classified, ReadRequest, Request, Response, WriteRequest,
};
use memex_obs::{trace, MetricsRegistry, TraceConfig, Tracer};

use crate::wire::{self, FrameKind, TraceContext, WireError};

/// Tuning knobs for [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Fixed worker-pool size (each worker owns one connection at a time).
    pub workers: usize,
    /// Bound of the accepted-connection queue; a connection arriving while
    /// the queue is full is shed with an overload frame.
    pub accept_queue: usize,
    /// Maximum requests dispatching concurrently before load-shedding.
    pub max_in_flight: usize,
    /// Per-connection read timeout. A connection idle longer than this is
    /// closed (clients reconnect transparently); during shutdown it bounds
    /// how long a worker can stay parked on a silent peer.
    pub read_timeout: Duration,
    /// Per-response write timeout.
    pub write_timeout: Duration,
    /// Capacity (entries) of each shard's epoch-keyed read-result cache;
    /// `0` disables caching entirely.
    pub read_cache: usize,
    /// Declared shard count. [`NetServer::start_sharded`] requires this to
    /// equal the number of `Memex` replicas passed (so a topology typo is
    /// an error, not a silent reroute); [`NetServer::start`] serves one
    /// shard and requires the default `1`.
    pub shards: usize,
    /// Request-tracing knobs (applied to the serving Memex's tracer at
    /// start). Disabled by default: tracing is opt-in per server.
    pub trace: TraceConfig,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            workers: 4,
            accept_queue: 64,
            max_in_flight: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            read_cache: 256,
            shards: 1,
            trace: TraceConfig::default(),
        }
    }
}

/// Bounded FIFO read-result cache keyed by the request. Entries carry the
/// write epoch observed before their dispatch; [`ReadCache::get`] serves an
/// entry only while that tag equals the newest epoch the cache has seen.
/// The first observation of a newer epoch sweeps every stale-tagged entry
/// out in one pass, so dead entries never occupy capacity that should hold
/// fresh ones.
struct ReadCache {
    capacity: usize,
    /// Newest write epoch this cache has observed; entries tagged older
    /// are dead weight and are purged on the bump.
    epoch: u64,
    map: HashMap<Request, (u64, Response)>,
    /// Insertion order for FIFO eviction; may lag `map` (stale entries are
    /// removed from `map` first), which eviction tolerates.
    order: VecDeque<Request>,
}

impl ReadCache {
    fn new(capacity: usize) -> ReadCache {
        ReadCache {
            capacity,
            epoch: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Observe `epoch`; on a bump, purge every entry tagged older. Returns
    /// how many stale entries were purged.
    fn note_epoch(&mut self, epoch: u64) -> u64 {
        if epoch <= self.epoch {
            return 0;
        }
        self.epoch = epoch;
        let before = self.map.len();
        self.map.retain(|_, (tag, _)| *tag >= epoch);
        let purged = (before - self.map.len()) as u64;
        if purged > 0 {
            self.order.retain(|k| self.map.contains_key(k));
        }
        purged
    }

    /// Probe for `key` at `epoch`. Returns the hit (if live) and how many
    /// stale entries the epoch observation purged.
    fn get(&mut self, key: &Request, epoch: u64) -> (Option<Response>, u64) {
        let purged = self.note_epoch(epoch);
        let hit = match self.map.get(key) {
            Some((tag, resp)) if *tag == self.epoch => Some(resp.clone()),
            Some(_) => {
                // Tagged older than the newest seen epoch (an under-tagged
                // racing insert): dead — drop rather than serve.
                self.map.remove(key);
                None
            }
            None => None,
        };
        (hit, purged)
    }

    /// Insert. Returns `(evicted, purged)`: how many *live* entries were
    /// evicted for capacity, and how many stale ones the epoch observation
    /// purged. An insert tagged older than the newest seen epoch is dead
    /// on arrival and is not stored (it must not waste a slot).
    fn put(&mut self, key: Request, epoch: u64, resp: Response) -> (u64, u64) {
        if self.capacity == 0 {
            return (0, 0);
        }
        let purged = self.note_epoch(epoch);
        if epoch < self.epoch {
            return (0, purged);
        }
        let mut evicted = 0u64;
        if self.map.insert(key.clone(), (epoch, resp)).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        if self.map.remove(&old).is_some() {
                            evicted += 1;
                        }
                    }
                    None => break,
                }
            }
        }
        (evicted, purged)
    }
}

/// One shard: a full Memex replica behind its own lock, epoch, read cache,
/// and replication queue. Metric names are pre-rendered at startup so the
/// hot path never allocates a `format!` string.
struct ShardSlot {
    memex: RwLock<Memex>,
    /// Bumped (under the write lock, before the mutation) on every write
    /// or replication batch applied here; versions this shard's cache.
    epoch: AtomicU64,
    cache: Mutex<ReadCache>,
    /// Writes owned by *other* shards, awaiting batched application here.
    inbound: Mutex<VecDeque<WriteRequest>>,
    /// `inbound.len()`, readable without the lock on the read hot path.
    pending: AtomicUsize,
    m_read_ok: String,
    m_write_ok: String,
    m_replicated: String,
    m_lag: String,
    m_lock_wait: String,
}

impl ShardSlot {
    fn new(index: usize, memex: Memex, cache_capacity: usize) -> ShardSlot {
        ShardSlot {
            memex: RwLock::new(memex),
            epoch: AtomicU64::new(0),
            cache: Mutex::new(ReadCache::new(cache_capacity)),
            inbound: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            m_read_ok: format!("net.shard.{index}.read.ok"),
            m_write_ok: format!("net.shard.{index}.write.ok"),
            m_replicated: format!("net.shard.{index}.replicated"),
            m_lag: format!("net.shard.{index}.lag"),
            m_lock_wait: format!("net.shard.{index}.lock.wait"),
        }
    }

    fn cache_get(&self, reg: &MetricsRegistry, key: &Request, epoch: u64) -> Option<Response> {
        let (hit, purged) = self
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key, epoch);
        if purged > 0 {
            reg.counter("net.read.cache.stale_purged").add(purged);
        }
        hit
    }

    fn cache_put(&self, reg: &MetricsRegistry, key: Request, epoch: u64, resp: Response) {
        let (evicted, purged) = self
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .put(key, epoch, resp);
        if evicted > 0 {
            reg.counter("net.read.cache.evict").add(evicted);
        }
        if purged > 0 {
            reg.counter("net.read.cache.stale_purged").add(purged);
        }
    }

    /// Recover the replica, absorbing any replication still queued so the
    /// handed-back Memex reflects every acknowledged write.
    fn into_memex(self) -> Memex {
        let mut memex = match self.memex.into_inner() {
            Ok(m) => m,
            // A panicking write dispatch poisons the lock; the state
            // behind it is still the state — recover it rather than
            // propagate the poison.
            Err(poisoned) => poisoned.into_inner(),
        };
        let queued = match self.inbound.into_inner() {
            Ok(q) => q,
            Err(poisoned) => poisoned.into_inner(),
        };
        if !queued.is_empty() {
            for w in &queued {
                let _ = servlet::apply_write(&mut memex, w);
            }
            let _ = memex.run_demons();
        }
        memex
    }
}

struct Shared {
    /// Shard 0 plus the rest, kept separate so the topology is
    /// structurally non-empty and single-shard accessors stay total
    /// without a panicking unwrap.
    shard0: ShardSlot,
    shards_rest: Vec<ShardSlot>,
    /// The serving registry — shard 0's Memex registry; all `net.*`
    /// serving-layer metrics land here.
    registry: MetricsRegistry,
    /// Replica registries (shards 1..N), merged into `Stats` answers.
    rest_registries: Vec<MetricsRegistry>,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    config: NetServerConfig,
    /// The serving tracer — shard 0's. Root spans start here, so every
    /// completed tree lands here regardless of which shard dispatched.
    tracer: Tracer,
}

impl Shared {
    fn num_shards(&self) -> usize {
        1 + self.shards_rest.len()
    }

    fn slots(&self) -> impl Iterator<Item = &ShardSlot> {
        std::iter::once(&self.shard0).chain(self.shards_rest.iter())
    }

    /// The shard that owns `user`. Total: the fallback arm cannot be hit
    /// (`idx < num_shards`) but degrades to shard 0 rather than panicking.
    fn route(&self, user: u32) -> (usize, &ShardSlot) {
        let idx = (user as usize) % self.num_shards();
        if idx == 0 {
            (0, &self.shard0)
        } else {
            match self.shards_rest.get(idx - 1) {
                Some(slot) => (idx, slot),
                None => (0, &self.shard0),
            }
        }
    }

    /// Unwrap every replica (shard 0 first), draining queued replication.
    fn into_memexes(self) -> (Memex, Vec<Memex>) {
        let first = self.shard0.into_memex();
        let rest = self
            .shards_rest
            .into_iter()
            .map(ShardSlot::into_memex)
            .collect();
        (first, rest)
    }
}

/// A running Memex network server. Dropping without calling
/// [`NetServer::shutdown`] / [`NetServer::shutdown_all`] detaches the
/// threads; call one of them for a clean join.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `memex` as a single shard. The server takes ownership;
    /// [`NetServer::shutdown`] hands it back. Requires
    /// [`NetServerConfig::shards`] `== 1` (the default).
    pub fn start(
        memex: Memex,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::start_sharded(vec![memex], addr, config)
    }

    /// Bind `addr` and serve N identical `Memex` replicas as shards keyed
    /// by `user % N` (see the module docs). The replicas must be built
    /// over the same corpus with the same options and registered users.
    /// [`NetServerConfig::shards`] must equal `shards.len()`;
    /// [`NetServer::shutdown_all`] hands the replicas back.
    pub fn start_sharded(
        shards: Vec<Memex>,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        if config.shards != shards.len() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "NetServerConfig::shards is {} but {} Memex replica(s) were passed",
                    config.shards,
                    shards.len()
                ),
            ));
        }
        let mut replicas = shards.into_iter();
        let first = match replicas.next() {
            Some(m) => m,
            None => {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    "a server needs at least one shard",
                ))
            }
        };
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = first.registry().clone();
        first.tracer().configure(config.trace);
        let tracer = first.tracer().clone();
        let rest: Vec<Memex> = replicas.collect();
        let rest_registries = rest.iter().map(|m| m.registry().clone()).collect();
        let shard0 = ShardSlot::new(0, first, config.read_cache);
        let shards_rest = rest
            .into_iter()
            .enumerate()
            .map(|(i, m)| ShardSlot::new(i + 1, m, config.read_cache))
            .collect();
        let shared = Arc::new(Shared {
            shard0,
            shards_rest,
            registry,
            rest_registries,
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            config,
            tracer,
        });
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("memex-net-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("memex-net-accept".into())
            .spawn(move || accept_loop(listener, tx, accept_shared))?;
        Ok(NetServer {
            local_addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain the queue, and join every thread. In-progress
    /// requests are answered before their connections close.
    fn teardown(mut self) -> Shared {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept thread: it may be parked in `accept()`.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // The accept thread dropped the sender; workers drain what is
        // buffered, then their `recv` disconnects and they exit.
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // Every thread is joined, so this Arc is unique. Spin defensively
        // on the (unreachable) contended case instead of panicking —
        // shutdown must never kill the thread that owns the data.
        let mut shared = self.shared;
        loop {
            match Arc::try_unwrap(shared) {
                Ok(s) => break s,
                Err(still_shared) => {
                    shared = still_shared;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Shut down a single-shard server and hand its `Memex` back. On a
    /// sharded server this returns shard 0's replica and drops the rest —
    /// use [`NetServer::shutdown_all`] there.
    pub fn shutdown(self) -> Memex {
        let (first, _rest) = self.teardown().into_memexes();
        first
    }

    /// Shut down and hand every shard's replica back (shard 0 first).
    /// Each replica absorbs its remaining inbound replication before being
    /// returned, so all of them reflect every acknowledged write.
    pub fn shutdown_all(self) -> Vec<Memex> {
        let (first, rest) = self.teardown().into_memexes();
        let mut all = Vec::with_capacity(1 + rest.len());
        all.push(first);
        all.extend(rest);
        all
    }

    /// Test instrumentation: poison shard 0's `Memex` lock by unwinding
    /// a throwaway thread while it holds the *write* guard (only writers
    /// poison an `RwLock`). The loopback suite uses this to prove a
    /// poisoned lock degrades to a typed [`Response::Error`] on every
    /// subsequent request — never a dead worker or a hung connection.
    #[doc(hidden)]
    pub fn poison_memex_for_test(&self) {
        let shared = Arc::clone(&self.shared);
        let _ = std::thread::Builder::new()
            .name("memex-net-poisoner".into())
            .spawn(move || {
                let slot = &shared.shard0;
                let _guard = slot.memex.write();
                // Unwind without tripping the panic hook: quiet in test
                // output, still poisons the held lock.
                std::panic::resume_unwind(Box::new("poisoning memex lock for test"));
            })
            .map(|h| h.join());
    }
}

fn accept_loop(listener: TcpListener, tx: SyncSender<TcpStream>, shared: Arc<Shared>) {
    let reg = &shared.registry;
    let accepted = reg.counter("net.conn.accepted");
    let rejected = reg.counter("net.conn.rejected");
    let shed = reg.counter("net.shed");
    let errors = reg.counter("net.accept.errors");
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late arrival) — close it.
                    drop(stream);
                    break;
                }
                accepted.inc();
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // Bounded queue is the contract: shed explicitly
                        // rather than let connections pile up unseen.
                        shed.inc();
                        rejected.inc();
                        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                        // The client's wire version is unknown before its
                        // first frame: answer in v2, which every client
                        // this server supports can decode.
                        let _ = wire::write_frame_versioned(
                            &mut stream,
                            wire::MIN_WIRE_VERSION,
                            FrameKind::Response,
                            &wire::encode_response(&Response::Overloaded {
                                in_flight: shared.config.accept_queue as u32,
                                limit: shared.config.accept_queue as u32,
                            }),
                            None,
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => errors.inc(),
        }
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        // Take the next connection, then release the receiver lock before
        // serving it so siblings keep draining the queue. A poisoned
        // receiver lock (a sibling died mid-recv) must not cascade into
        // more dead workers — recover the guard and keep draining.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match stream {
            Ok(s) => serve_connection(s, &shared),
            Err(_) => return, // sender dropped and queue drained
        }
    }
}

/// Outcome of one request/response exchange on a connection.
enum Exchange {
    Served,
    Closed,
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let reg = &shared.registry;
    let active = reg.gauge("net.conn.active");
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    active.add(1);
    while let Exchange::Served = exchange_one(&mut stream, shared) {
        // After answering, honour a pending shutdown: the request in
        // flight was served, the connection closes at a frame boundary.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    active.add(-1);
    reg.counter("net.conn.closed").inc();
}

/// Record how long an RwLock acquisition stalled this request: into the
/// global `net.lock.wait` histogram and the shard's own lock-wait
/// histogram always, and onto the active trace's root span
/// (`lock_wait_ns`, `lock_kind`) when tracing is on.
fn note_lock_acquired(reg: &MetricsRegistry, slot: &ShardSlot, kind: &str, waited_since: Instant) {
    let wait_ns = waited_since.elapsed().as_nanos() as u64;
    reg.histogram("net.lock.wait").record(wait_ns);
    reg.histogram(&slot.m_lock_wait).record(wait_ns);
    trace::annotate("lock_wait_ns", wait_ns);
    trace::annotate("lock_kind", kind);
}

/// Absorb every write queued for replication into this shard: state-only
/// applies plus **one** demon sweep for the whole batch (the write-scaling
/// amortization — see the module docs). Called with no lock held.
fn absorb_replicated(reg: &MetricsRegistry, slot: &ShardSlot) {
    let lock_started = Instant::now();
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Ok(mut memex) = slot.memex.write() {
            note_lock_acquired(reg, slot, "write", lock_started);
            let drained: Vec<WriteRequest> = {
                let mut q = slot.inbound.lock().unwrap_or_else(PoisonError::into_inner);
                slot.pending.store(0, Ordering::SeqCst);
                q.drain(..).collect()
            };
            if drained.is_empty() {
                return;
            }
            // Bump before mutating, same discipline as `answer_write`.
            slot.epoch.fetch_add(1, Ordering::SeqCst);
            for w in &drained {
                let _ = servlet::apply_write(&mut memex, w);
            }
            // A demon failure here leaves the events on the bus; the next
            // sweep (any write or catch-up on this shard) retries them.
            let _ = memex.run_demons();
            reg.counter(&slot.m_replicated).add(drained.len() as u64);
        }
    }));
    reg.gauge(&slot.m_lag)
        .set(slot.pending.load(Ordering::SeqCst) as i64);
}

/// Serve one read request on its shard: absorb pending replication, probe
/// the epoch-keyed cache, else dispatch under the shared read guard and
/// (when cacheable) remember the answer. Community-scoped reads (shard key
/// `None`) go to the aggregation tier instead when more than one shard is
/// served.
fn answer_read(shared: &Shared, request: ReadRequest) -> Response {
    let reg = &shared.registry;
    let (idx, slot) = match request.shard_key() {
        Some(user) => shared.route(user),
        // Single-shard servers answer community requests exactly like any
        // other read (shard 0 sees all state); sharded ones aggregate.
        None if shared.num_shards() == 1 => (0, &shared.shard0),
        None => return answer_community(shared, request),
    };
    trace::annotate("shard", idx);
    if slot.pending.load(Ordering::SeqCst) > 0 {
        absorb_replicated(reg, slot);
    }
    let started = Instant::now();
    // The epoch MUST be loaded before the read lock is acquired: a write
    // that slips in between can only make this dispatch's tag *older* than
    // the state it actually saw, so the entry dies early instead of
    // serving stale.
    let epoch = slot.epoch.load(Ordering::SeqCst);
    // `Stats` and `Traces` bypass the cache: their answers change without
    // any write (new samples, newly completed traces).
    let cacheable = shared.config.read_cache > 0
        && !matches!(
            request.as_request(),
            Request::Stats | Request::Traces { .. }
        );
    let cache_key = if cacheable {
        Some(request.as_request().clone())
    } else {
        None
    };
    if let Some(key) = &cache_key {
        if let Some(resp) = slot.cache_get(reg, key, epoch) {
            reg.counter("net.req.ok").inc();
            reg.counter("net.read.ok").inc();
            reg.counter(&slot.m_read_ok).inc();
            reg.counter("net.read.cache.hit").inc();
            // A cache hit is a served request: record it in the same
            // per-servlet histogram as a dispatched one, otherwise the
            // histogram silently excludes the fastest responses.
            reg.histogram(key.latency_metric())
                .record(started.elapsed().as_nanos() as u64);
            trace::annotate("cache_hit", "true");
            return resp;
        }
        reg.counter("net.read.cache.miss").inc();
    }
    // The lock is taken *inside* the unwind boundary: a panicking dispatch
    // drops the guard mid-unwind and the worker survives to answer with a
    // typed error. (Read guards do not poison an `RwLock`; a poisoned
    // observation here means an earlier *write* panicked.)
    let lock_started = Instant::now();
    let dispatched =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match slot.memex.read() {
            Ok(memex) => {
                note_lock_acquired(reg, slot, "read", lock_started);
                Some(dispatch_read(&memex, request))
            }
            Err(_poisoned) => None,
        }));
    match dispatched {
        Ok(Some(resp)) => {
            reg.counter("net.req.ok").inc();
            reg.counter("net.read.ok").inc();
            reg.counter(&slot.m_read_ok).inc();
            if let Some(key) = cache_key {
                slot.cache_put(reg, key, epoch, resp.clone());
            }
            resp
        }
        Ok(None) => {
            reg.counter("net.req.poisoned").inc();
            Response::Error("internal: memex state poisoned by an earlier panic".into())
        }
        Err(_panic) => {
            reg.counter("net.req.panics").inc();
            Response::Error("internal: request dispatch panicked".into())
        }
    }
}

/// The aggregation tier: answer a community-scoped request by merging
/// every shard's view, taking **no** shard lock — community queries can
/// never convoy behind a shard's writer.
fn answer_community(shared: &Shared, request: ReadRequest) -> Response {
    let reg = &shared.registry;
    trace::annotate("shard", "all");
    let request = request.into_request();
    let _lat = reg.histogram(request.latency_metric()).start_span();
    let _span = trace::span(request.name());
    let resp = match &request {
        Request::Stats => {
            // Serving registry (shard 0, carries all net.* counters) +
            // every replica's registry (their servlet.* samples) + the
            // process-global registry.
            let mut snap = reg.snapshot();
            for r in &shared.rest_registries {
                snap.absorb(r.snapshot());
            }
            snap.absorb(memex_obs::global().snapshot());
            Response::Stats(snap)
        }
        // Every root span starts on the serving tracer, so all completed
        // trees live there regardless of which shard dispatched.
        Request::Traces { slow_only, limit } => {
            Response::Traces(shared.tracer.collect(*slow_only, *limit))
        }
        // `shard_key() == None` holds only for Stats/Traces today; a new
        // community variant added without aggregation support degrades to
        // a typed error, never a panic.
        _ => Response::Error("internal: community read without aggregation support".into()),
    };
    reg.counter("net.req.ok").inc();
    reg.counter("net.read.ok").inc();
    resp
}

/// Serve one write request on its owner shard under the exclusive guard:
/// bump the write epoch (which invalidates that shard's cached reads),
/// absorb any queued replication (one batch, one demon sweep), apply this
/// write eagerly, then fan it out to every other shard's inbound queue.
fn answer_write(shared: &Shared, request: WriteRequest) -> Response {
    let reg = &shared.registry;
    let (idx, slot) = shared.route(request.shard_key());
    trace::annotate("shard", idx);
    let lock_started = Instant::now();
    let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match slot.memex.write() {
            Ok(mut memex) => {
                note_lock_acquired(reg, slot, "write", lock_started);
                // Bump before mutating: a reader that loaded the old epoch
                // concurrently will tag its entry with it and the entry
                // dies the moment this store lands.
                slot.epoch.fetch_add(1, Ordering::SeqCst);
                // Older writes replicated from other shards apply first,
                // so every shard applies the global write sequence in
                // arrival order; the demon sweep inside `dispatch_write`
                // below covers the whole batch.
                let drained: Vec<WriteRequest> = {
                    let mut q = slot.inbound.lock().unwrap_or_else(PoisonError::into_inner);
                    slot.pending.store(0, Ordering::SeqCst);
                    q.drain(..).collect()
                };
                for w in &drained {
                    let _ = servlet::apply_write(&mut memex, w);
                }
                if !drained.is_empty() {
                    reg.counter(&slot.m_replicated).add(drained.len() as u64);
                }
                Some(dispatch_write(&mut memex, request.clone()))
            }
            Err(_poisoned) => None,
        }
    }));
    match dispatched {
        Ok(Some(resp)) => {
            reg.counter("net.req.ok").inc();
            reg.counter(&slot.m_write_ok).inc();
            // Fan out only after the owner applied it (and with no lock
            // held): a poisoned or panicked owner does not replicate a
            // write it may not have durably applied itself.
            replicate_to_peers(shared, idx, &request);
            resp
        }
        Ok(None) => {
            reg.counter("net.req.poisoned").inc();
            Response::Error("internal: memex state poisoned by an earlier panic".into())
        }
        Err(_panic) => {
            // The panicking dispatch held the write guard, so the lock is
            // now poisoned; later requests degrade to typed errors above.
            reg.counter("net.req.panics").inc();
            Response::Error("internal: request dispatch panicked".into())
        }
    }
}

/// Queue `request` on every shard except `origin` (which applied it
/// eagerly). Queues drain at each shard's next answer.
fn replicate_to_peers(shared: &Shared, origin: usize, request: &WriteRequest) {
    if shared.num_shards() == 1 {
        return;
    }
    for (i, peer) in shared.slots().enumerate() {
        if i == origin {
            continue;
        }
        let depth = {
            let mut q = peer.inbound.lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(request.clone());
            let depth = q.len();
            peer.pending.store(depth, Ordering::SeqCst);
            depth
        };
        shared.registry.gauge(&peer.m_lag).set(depth as i64);
    }
}

/// Answer in the wire version the client spoke, echoing its trace context
/// (v3+ frames only; the v4-only `retry_of` field is stripped for v3
/// peers): a v2 client never sees a frame it cannot decode.
fn respond(
    stream: &mut TcpStream,
    version: u8,
    trace_ctx: Option<TraceContext>,
    resp: &Response,
) -> Result<(), WireError> {
    let trace_ctx = match version {
        0..=2 => None,
        3 => trace_ctx.map(|t| TraceContext {
            retry_of: None,
            ..t
        }),
        _ => trace_ctx,
    };
    wire::write_frame_versioned(
        stream,
        version,
        FrameKind::Response,
        &wire::encode_response(resp),
        trace_ctx,
    )
}

fn exchange_one(stream: &mut TcpStream, shared: &Shared) -> Exchange {
    let reg = &shared.registry;
    let frame = match wire::read_frame_meta(stream) {
        Ok(f) => f,
        Err(WireError::Io(e)) => {
            // Clean close, peer reset, or idle timeout: just drop the
            // connection. Framing stays in sync only from a frame
            // boundary, so a timeout mid-frame also closes.
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                reg.counter("net.conn.idle_closed").inc();
            }
            return Exchange::Closed;
        }
        Err(e) => {
            // Corrupted or unversioned frame: report and close (the stream
            // position is no longer trustworthy). The peer's version is
            // unknown, so answer in v2 — decodable by every client.
            reg.counter("net.decode.errors").inc();
            let _ = respond(
                stream,
                wire::MIN_WIRE_VERSION,
                None,
                &Response::Error(format!("decode: {e}")),
            );
            return Exchange::Closed;
        }
    };
    let req_started = Instant::now();
    if frame.kind == FrameKind::Response {
        // A client must never send response frames; protocol violation.
        reg.counter("net.decode.errors").inc();
        let _ = respond(
            stream,
            frame.version,
            None,
            &Response::Error("protocol: response frame sent to server".into()),
        );
        return Exchange::Closed;
    }
    // Root span for the whole exchange, opened before payload decode so
    // the tree covers decode → lock-acquire → dispatch → encode. The id
    // is the client's (v3+ trace context) or minted from the server's
    // seeded generator; the guard publishes the completed tree to the
    // flight recorder when it drops at the end of this function.
    let trace_guard = shared
        .tracer
        .start_trace("net.req", frame.trace.map(|t| t.trace_id));
    if let Some(prev) = frame.trace.and_then(|t| t.retry_of) {
        // A v4 client marked this as the retry of a dead attempt: link
        // the trees so operators can stitch the logical request together.
        trace::annotate("retry_of", prev);
    }
    let decode_span = trace::span("net.decode");
    let request = match wire::decode_request(&frame.payload) {
        Ok(r) => r,
        Err(e) => {
            drop(decode_span);
            reg.counter("net.decode.errors").inc();
            let _ = respond(
                stream,
                frame.version,
                frame.trace,
                &Response::Error(format!("decode: {e}")),
            );
            return Exchange::Closed;
        }
    };
    drop(decode_span);
    // Admission control: acquire an in-flight permit or shed. The permit
    // covers lock wait + dispatch, so a convoy behind a slow request is
    // surfaced as explicit overload frames instead of unbounded queueing.
    let limit = shared.config.max_in_flight;
    let prev = shared.in_flight.fetch_add(1, Ordering::SeqCst);
    if prev >= limit {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        // A shed reply is still a served request: it must show up in the
        // `net.req.*` accounting and the flight recorder, not just in
        // `net.shed` — overload is exactly when operators look there.
        reg.counter("net.shed").inc();
        reg.counter("net.req.shed").inc();
        reg.histogram("net.req.latency")
            .record(req_started.elapsed().as_nanos() as u64);
        trace::annotate("shed", "true");
        let overload = Response::Overloaded {
            in_flight: prev.min(u32::MAX as usize) as u32,
            limit: limit.min(u32::MAX as usize) as u32,
        };
        let wrote = respond(stream, frame.version, frame.trace, &overload);
        // Complete the (short) trace before returning: decode → shed.
        drop(trace_guard);
        return match wrote {
            Ok(()) => Exchange::Served,
            Err(_) => Exchange::Closed,
        };
    }
    let response = {
        let _span = reg.span("net.req.latency");
        match request.classify() {
            Classified::Read(r) => answer_read(shared, r),
            Classified::Write(w) => answer_write(shared, w),
        }
    };
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    let encode_started = Instant::now();
    let wrote = respond(stream, frame.version, frame.trace, &response);
    trace::record_span("net.encode", encode_started, Instant::now());
    // Completes the trace: everything after this is outside the request.
    drop(trace_guard);
    match wrote {
        Ok(()) => Exchange::Served,
        Err(_) => {
            reg.counter("net.conn.write_errors").inc();
            Exchange::Closed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bill(user: u32) -> Request {
        Request::Bill {
            user,
            since: 0,
            until: u64::MAX,
        }
    }

    // A cheap, distinguishable stand-in response for cache entries.
    fn resp(tag: u32) -> Response {
        Response::Overloaded {
            in_flight: tag,
            limit: tag,
        }
    }

    /// Regression for the stale-entry capacity leak: fill the cache at
    /// epoch 0, bump the epoch (one write), then insert fresh entries up
    /// to capacity again — the dead entries must be purged on the bump,
    /// not evict the fresh ones.
    #[test]
    fn stale_entries_are_purged_not_capacity_holders() {
        let cap = 4usize;
        let mut cache = ReadCache::new(cap);
        for u in 0..cap as u32 {
            let (evicted, purged) = cache.put(bill(u), 0, resp(u));
            assert_eq!((evicted, purged), (0, 0), "warm-up insert {u}");
        }
        assert_eq!(cache.map.len(), cap);
        // One write bumps the epoch; the first probe at the new epoch
        // sweeps every stale entry.
        let (hit, purged) = cache.get(&bill(0), 1);
        assert!(hit.is_none(), "stale entry must not serve");
        assert_eq!(purged, cap as u64, "all dead entries purged on the bump");
        assert_eq!(cache.map.len(), 0);
        assert!(cache.order.is_empty(), "FIFO order swept with the map");
        // Fresh entries now fill the freed capacity without a single
        // live-entry eviction.
        let mut evictions = 0u64;
        for u in 0..cap as u32 {
            let (evicted, _) = cache.put(bill(u), 1, resp(u));
            evictions += evicted;
        }
        assert_eq!(
            evictions, 0,
            "fresh entries must not be evicted by dead ones"
        );
        for u in 0..cap as u32 {
            let (hit, _) = cache.get(&bill(u), 1);
            assert!(hit.is_some(), "fresh entry {u} evicted");
        }
    }

    /// The epoch bump can also be observed first by `put` (a reader that
    /// dispatched after the write): the sweep happens there too.
    #[test]
    fn put_observes_epoch_bump_and_purges() {
        let mut cache = ReadCache::new(8);
        for u in 0..4u32 {
            cache.put(bill(u), 3, resp(u));
        }
        let (evicted, purged) = cache.put(bill(9), 4, resp(9));
        assert_eq!(evicted, 0);
        assert_eq!(purged, 4, "put must sweep stale entries on a bump");
        let (hit, _) = cache.get(&bill(9), 4);
        assert!(hit.is_some());
    }

    /// An under-tagged insert (reader raced a write) is dead on arrival:
    /// it must not occupy a slot it can never serve from.
    #[test]
    fn under_tagged_insert_is_not_stored() {
        let mut cache = ReadCache::new(8);
        cache.put(bill(0), 5, resp(0));
        let (evicted, purged) = cache.put(bill(1), 4, resp(1));
        assert_eq!((evicted, purged), (0, 0));
        assert!(
            !cache.map.contains_key(&bill(1)),
            "dead-on-arrival entry stored"
        );
        let (hit, _) = cache.get(&bill(0), 5);
        assert!(hit.is_some(), "live entry disturbed by dead insert");
    }

    /// Eviction accounting stays honest: live entries evicted for
    /// capacity are counted, purged stale ones are not conflated.
    #[test]
    fn capacity_eviction_counts_only_live_entries() {
        let mut cache = ReadCache::new(2);
        cache.put(bill(0), 0, resp(0));
        cache.put(bill(1), 0, resp(1));
        let (evicted, purged) = cache.put(bill(2), 0, resp(2));
        assert_eq!((evicted, purged), (1, 0), "FIFO evicts the oldest live");
        let (hit, _) = cache.get(&bill(0), 0);
        assert!(hit.is_none(), "oldest entry should have been evicted");
    }
}
