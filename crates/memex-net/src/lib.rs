//! # memex-net — the wire
//!
//! The paper's Memex server is a network service: "servlets that perform
//! various archiving and mining functions as triggered by client action",
//! tunnelled over HTTP (§3). This crate puts our reproduction's servlet
//! vocabulary (`memex_core::servlet::{Request, Response}`) on a real
//! socket, `std`-only:
//!
//! - [`wire`] — length-prefixed, checksummed, versioned binary framing
//!   with a hand-rolled serializer for every request/response variant.
//!   Typed errors, a hard frame cap, no panics on hostile bytes.
//! - [`NetServer`] — a concurrent TCP server: fixed worker pool over a
//!   bounded accept queue, per-request timeouts, graceful shutdown, and
//!   semaphore-style admission control that sheds load with explicit
//!   [`memex_core::servlet::Response::Overloaded`] frames.
//! - [`MemexClient`] — a blocking client with connect/request timeouts and
//!   transparent reconnect-on-broken-pipe.
//!
//! Serving metrics (`net.conn.*`, `net.req.latency`, `net.shed`,
//! `net.decode.errors`) flow through the Memex's `memex-obs` registry, so
//! `Request::Stats` over the wire reports on the wire itself.
//!
//! Wire v3 adds end-to-end request tracing: the client stamps a 64-bit
//! trace id into the frame envelope ([`TraceContext`]), the server builds
//! a span tree per request (decode → lock wait → dispatch → encode, with
//! index/store children) into its flight recorder, and
//! `Request::Traces` pulls the trees back over the wire. v2 peers keep
//! working: decoders accept both versions and the server answers in the
//! version the client spoke.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, MemexClient, NetError};
pub use server::{NetServer, NetServerConfig};
pub use wire::{FrameKind, TraceContext, WireError, MAX_PAYLOAD, MIN_WIRE_VERSION, WIRE_VERSION};
