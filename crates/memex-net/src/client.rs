//! Blocking client for the Memex wire protocol.
//!
//! [`MemexClient`] keeps one TCP connection and pipelines request/response
//! pairs over it. Connects are bounded by a connect timeout, each exchange
//! by read/write timeouts, and a connection torn down underneath us
//! (broken pipe, reset, EOF — e.g. the server closed an idle connection)
//! is re-dialled transparently and the request retried, at most
//! [`ClientConfig::reconnect_attempts`] times — but **only for read
//! requests** ([`Request::is_read`]). A write (`Event`, `ImportBookmarks`)
//! whose connection dies mid-exchange may already have been applied by the
//! server, so re-sending could double-apply it; those surface as
//! [`NetError::WriteInterrupted`] and the caller decides (the requests are
//! not idempotent, so the client never guesses). Timeouts are *not*
//! retried for anything: the request may have dispatched.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use memex_core::servlet::{Request, Response};

use crate::wire::{self, FrameKind, WireError};

/// Client-side timeouts and retry policy.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Bound on establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Bound on each of the write and read halves of one exchange.
    pub request_timeout: Duration,
    /// How many times a request may be re-sent on a fresh connection after
    /// the old one proves broken.
    pub reconnect_attempts: u32,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            reconnect_attempts: 1,
        }
    }
}

/// Client-visible failures.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, timeout, reset…).
    Io(std::io::Error),
    /// The bytes on the wire were not a valid frame/payload.
    Wire(WireError),
    /// The peer violated the protocol (e.g. sent a request frame back).
    Protocol(&'static str),
    /// The connection died during a mutating request (`Event`,
    /// `ImportBookmarks`). The server may or may not have applied it; the
    /// client will not re-send because that could double-apply the
    /// mutation. The caller must decide how to reconcile.
    WriteInterrupted(std::io::Error),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::Protocol(what) => write!(f, "protocol: {what}"),
            NetError::WriteInterrupted(e) => write!(
                f,
                "connection died during a mutating request (may or may not \
                 have been applied; not re-sent): {e}"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Protocol(_) => None,
            NetError::WriteInterrupted(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        // Flatten so callers match one `Io` arm for all transport trouble.
        match e {
            WireError::Io(io) => NetError::Io(io),
            other => NetError::Wire(other),
        }
    }
}

impl NetError {
    /// Would a fresh connection plausibly fix this? True for the
    /// connection-is-dead family, false for timeouts (the request may have
    /// been dispatched) and for decode/protocol errors.
    fn reconnectable(&self) -> bool {
        match self {
            NetError::Io(e) => matches!(
                e.kind(),
                ErrorKind::BrokenPipe
                    | ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::UnexpectedEof
                    | ErrorKind::NotConnected
            ),
            NetError::Wire(_) | NetError::Protocol(_) | NetError::WriteInterrupted(_) => false,
        }
    }
}

/// A blocking Memex client over one auto-healing TCP connection.
pub struct MemexClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
}

impl MemexClient {
    /// Resolve `addr` and dial the server (eagerly, so a dead server is
    /// reported here rather than on the first request).
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<MemexClient, NetError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(ErrorKind::NotFound, "address resolved to nothing")
        })?;
        let mut client = MemexClient {
            addr,
            config,
            stream: None,
        };
        client.stream = Some(client.dial()?);
        Ok(client)
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.request_timeout))?;
        stream.set_write_timeout(Some(self.config.request_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Send one request and block for its response.
    ///
    /// Read requests are transparently retried on a fresh connection when
    /// the old one proves dead. Writes are never re-sent: a dead
    /// connection mid-write yields [`NetError::WriteInterrupted`].
    pub fn request(&mut self, request: &Request) -> Result<Response, NetError> {
        let payload = wire::encode_request(request);
        let mut attempts_left = self.config.reconnect_attempts;
        loop {
            if self.stream.is_none() {
                self.stream = Some(self.dial()?);
            }
            let stream = match self.stream.as_mut() {
                Some(s) => s,
                // Unreachable after the dial above; degrade to a typed
                // error rather than a panic on the request path.
                None => return Err(NetError::Protocol("connection slot empty after dial")),
            };
            match Self::exchange(stream, &payload) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Whatever happened, this connection is suspect.
                    self.stream = None;
                    if e.reconnectable() {
                        if !request.is_read() {
                            // The server may have applied the mutation
                            // before the connection died; re-sending could
                            // double-apply it.
                            if let NetError::Io(io) = e {
                                return Err(NetError::WriteInterrupted(io));
                            }
                            return Err(e);
                        }
                        if attempts_left > 0 {
                            attempts_left -= 1;
                            continue;
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    fn exchange(stream: &mut TcpStream, request_payload: &[u8]) -> Result<Response, NetError> {
        wire::write_frame(stream, FrameKind::Request, request_payload)?;
        let (kind, payload) = wire::read_frame(stream)?;
        if kind != FrameKind::Response {
            return Err(NetError::Protocol("request frame received from server"));
        }
        Ok(wire::decode_response(&payload)?)
    }
}
