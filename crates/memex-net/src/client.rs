//! Blocking client for the Memex wire protocol.
//!
//! [`MemexClient`] keeps one TCP connection and pipelines request/response
//! pairs over it. Connects are bounded by a connect timeout, each exchange
//! by read/write timeouts, and a connection torn down underneath us
//! (broken pipe, reset, EOF — e.g. the server closed an idle connection)
//! is re-dialled transparently and the request retried, at most
//! [`ClientConfig::reconnect_attempts`] times — but **only for read
//! requests** ([`Request::is_read`]). A write (`Event`, `ImportBookmarks`)
//! whose connection dies mid-exchange may already have been applied by the
//! server, so re-sending could double-apply it; those surface as
//! [`NetError::WriteInterrupted`] and the caller decides (the requests are
//! not idempotent, so the client never guesses). Timeouts are *not*
//! retried for anything: the request may have dispatched.
//!
//! **Trace propagation:** a client speaking wire v3+ (the default is v4)
//! stamps every request frame with a fresh 64-bit trace id from a
//! seedable SplitMix64 sequence ([`ClientConfig::trace_seed`]); the
//! server adopts it as the root span's trace id and echoes it on the
//! response, so a slow answer can be correlated with its server-side span
//! tree ([`MemexClient::last_trace_id`]). Every *attempt* gets its own
//! id — a retried read re-sent on a fresh connection must not alias the
//! dead attempt's span tree — and v4 frames carry the previous attempt's
//! id (`retry_of`), which the server records as a root-span annotation so
//! the attempts of one logical request can be stitched together. Setting
//! [`ClientConfig::wire_version`] to 2 reproduces a pre-trace client
//! byte-for-byte — the compatibility mode the loopback suite exercises.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use memex_core::servlet::{Request, Response};
use memex_obs::trace::TraceIdGen;

use crate::wire::{self, FrameKind, TraceContext, WireError};

/// Client-side timeouts and retry policy.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Bound on establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Bound on each of the write and read halves of one exchange.
    pub request_timeout: Duration,
    /// How many times a request may be re-sent on a fresh connection after
    /// the old one proves broken.
    pub reconnect_attempts: u32,
    /// Wire version to speak: [`wire::WIRE_VERSION`] (default) stamps a
    /// trace context on every request; [`wire::MIN_WIRE_VERSION`] (2)
    /// emits pre-trace frames for compatibility testing.
    pub wire_version: u8,
    /// Seed for the client's trace-id sequence (deterministic tests pick
    /// a fixed seed and know every id in advance).
    pub trace_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            reconnect_attempts: 1,
            wire_version: wire::WIRE_VERSION,
            trace_seed: 0x4d58_434c_4945_4e54, // "MXCLIENT"
        }
    }
}

/// Client-visible failures.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, timeout, reset…).
    Io(std::io::Error),
    /// The bytes on the wire were not a valid frame/payload.
    Wire(WireError),
    /// The peer violated the protocol (e.g. sent a request frame back).
    Protocol(&'static str),
    /// The connection died during a mutating request (`Event`,
    /// `ImportBookmarks`). The server may or may not have applied it; the
    /// client will not re-send because that could double-apply the
    /// mutation. The caller must decide how to reconcile.
    WriteInterrupted(std::io::Error),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::Protocol(what) => write!(f, "protocol: {what}"),
            NetError::WriteInterrupted(e) => write!(
                f,
                "connection died during a mutating request (may or may not \
                 have been applied; not re-sent): {e}"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Protocol(_) => None,
            NetError::WriteInterrupted(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        // Flatten so callers match one `Io` arm for all transport trouble.
        match e {
            WireError::Io(io) => NetError::Io(io),
            other => NetError::Wire(other),
        }
    }
}

impl NetError {
    /// Would a fresh connection plausibly fix this? True for the
    /// connection-is-dead family, false for timeouts (the request may have
    /// been dispatched) and for decode/protocol errors.
    fn reconnectable(&self) -> bool {
        match self {
            NetError::Io(e) => matches!(
                e.kind(),
                ErrorKind::BrokenPipe
                    | ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::UnexpectedEof
                    | ErrorKind::NotConnected
            ),
            NetError::Wire(_) | NetError::Protocol(_) | NetError::WriteInterrupted(_) => false,
        }
    }
}

/// A blocking Memex client over one auto-healing TCP connection.
pub struct MemexClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    trace_ids: TraceIdGen,
    last_trace_id: Option<u64>,
}

impl MemexClient {
    /// Resolve `addr` and dial the server (eagerly, so a dead server is
    /// reported here rather than on the first request).
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<MemexClient, NetError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(ErrorKind::NotFound, "address resolved to nothing")
        })?;
        if !(wire::MIN_WIRE_VERSION..=wire::WIRE_VERSION).contains(&config.wire_version) {
            return Err(NetError::Protocol("unsupported wire version configured"));
        }
        let mut client = MemexClient {
            addr,
            config,
            stream: None,
            trace_ids: TraceIdGen::seeded(config.trace_seed),
            last_trace_id: None,
        };
        client.stream = Some(client.dial()?);
        Ok(client)
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.request_timeout))?;
        stream.set_write_timeout(Some(self.config.request_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Send one request and block for its response.
    ///
    /// Read requests are transparently retried on a fresh connection when
    /// the old one proves dead. Writes are never re-sent: a dead
    /// connection mid-write yields [`NetError::WriteInterrupted`].
    pub fn request(&mut self, request: &Request) -> Result<Response, NetError> {
        let payload = wire::encode_request(request);
        let mut attempts_left = self.config.reconnect_attempts;
        // Each *attempt* gets a fresh trace id, so two attempts of one
        // logical request never alias span trees in the flight recorder;
        // v4 frames link an attempt to its predecessor via `retry_of`
        // (the server annotates the root span with it).
        let mut prev_attempt: Option<u64> = None;
        loop {
            let trace_ctx = (self.config.wire_version >= 3).then(|| TraceContext {
                trace_id: self.trace_ids.next(),
                retry_of: if self.config.wire_version >= 4 {
                    prev_attempt
                } else {
                    None
                },
            });
            // Reflect the attempt actually on the wire, so after a retry
            // this is the id of the attempt that answered (or failed last).
            self.last_trace_id = trace_ctx.map(|t| t.trace_id);
            if self.stream.is_none() {
                self.stream = Some(self.dial()?);
            }
            let stream = match self.stream.as_mut() {
                Some(s) => s,
                // Unreachable after the dial above; degrade to a typed
                // error rather than a panic on the request path.
                None => return Err(NetError::Protocol("connection slot empty after dial")),
            };
            match Self::exchange(stream, self.config.wire_version, trace_ctx, &payload) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Whatever happened, this connection is suspect.
                    self.stream = None;
                    if e.reconnectable() {
                        if !request.is_read() {
                            // The server may have applied the mutation
                            // before the connection died; re-sending could
                            // double-apply it.
                            if let NetError::Io(io) = e {
                                return Err(NetError::WriteInterrupted(io));
                            }
                            return Err(e);
                        }
                        if attempts_left > 0 {
                            attempts_left -= 1;
                            prev_attempt = trace_ctx.map(|t| t.trace_id);
                            continue;
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    /// The trace id stamped on the most recent request, if the configured
    /// wire version carries one. Pass it to an operator (or correlate it
    /// against `Request::Traces` output) to find the server-side tree.
    pub fn last_trace_id(&self) -> Option<u64> {
        self.last_trace_id
    }

    fn exchange(
        stream: &mut TcpStream,
        version: u8,
        trace_ctx: Option<TraceContext>,
        request_payload: &[u8],
    ) -> Result<Response, NetError> {
        wire::write_frame_versioned(
            stream,
            version,
            FrameKind::Request,
            request_payload,
            trace_ctx,
        )?;
        let meta = wire::read_frame_meta(stream)?;
        if meta.kind != FrameKind::Response {
            return Err(NetError::Protocol("request frame received from server"));
        }
        Ok(wire::decode_response(&meta.payload)?)
    }
}
