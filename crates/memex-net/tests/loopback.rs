//! Loopback system tests: a live `NetServer` on an ephemeral port, driven
//! by real `MemexClient`s from multiple threads.
//!
//! The core property: every mining servlet answers *identically* over the
//! wire and in-process, and shutdown joins every worker with an exact
//! request accounting — nothing dropped silently.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use memex_core::memex::{Memex, MemexOptions};
use memex_core::servlet::{dispatch, Request, Response};
use memex_net::{ClientConfig, MemexClient, NetServer, NetServerConfig};
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};

const USERS: [u32; 4] = [1, 2, 3, 4];

/// A small community surf: four users, three topics, referrer chains and
/// bookmarks, demons drained.
fn community_world() -> Memex {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 3,
        pages_per_topic: 25,
        ..CorpusConfig::default()
    }));
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).expect("build memex");
    for &user in &USERS {
        memex
            .register_user(user, &format!("user{user}"))
            .expect("register");
    }
    let mut time = 1u64;
    for &user in &USERS {
        let topic = (user as usize - 1) % 3;
        let pages = corpus.pages_of_topic(topic);
        let mut prev: Option<u32> = None;
        for &page in pages.iter().take(8) {
            memex.submit(ClientEvent::Visit(VisitEvent {
                user,
                session: user,
                page,
                url: corpus.pages[page as usize].url.clone(),
                time,
                referrer: prev,
            }));
            prev = Some(page);
            time += 1;
        }
        // Two explicit bookmarks anchor a folder for classification.
        for &page in pages.iter().take(2) {
            memex.submit(ClientEvent::Bookmark {
                user,
                page,
                url: corpus.pages[page as usize].url.clone(),
                folder: format!("/topic{topic}"),
                time,
            });
            time += 1;
        }
    }
    memex.run_demons().expect("demons");
    memex
}

/// The per-user read-only query mix (deterministic, so the wire answers
/// can be compared with in-process answers).
fn user_requests(user: u32) -> Vec<Request> {
    vec![
        Request::Recall {
            user,
            query: "page".into(),
            since: 0,
            until: u64::MAX,
            k: 5,
        },
        Request::TrailReplay {
            user,
            folder: 1,
            since: 0,
            max_pages: 10,
        },
        Request::WhatsNew {
            user,
            folder: 1,
            since: 0,
            k: 5,
        },
        Request::Bill {
            user,
            since: 0,
            until: u64::MAX,
        },
        Request::SimilarSurfers { user, k: 3 },
        Request::Recommend { user, k: 3 },
        Request::ExportBookmarks { user },
    ]
}

#[test]
fn loopback_matches_in_process_and_shuts_down_cleanly() {
    let mut memex = community_world();
    // In-process ground truth first; the same Memex then goes on the wire.
    let mut expected: Vec<(u32, Vec<Response>)> = Vec::new();
    for &user in &USERS {
        let answers: Vec<Response> = user_requests(user)
            .into_iter()
            .map(|req| dispatch(&mut memex, req))
            .collect();
        expected.push((user, answers));
    }

    let server = NetServer::start(memex, "127.0.0.1:0", NetServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    let handles: Vec<_> = USERS
        .iter()
        .map(|&user| {
            std::thread::spawn(move || {
                let mut client =
                    MemexClient::connect(addr, ClientConfig::default()).expect("connect");
                user_requests(user)
                    .into_iter()
                    .map(|req| client.request(&req).expect("request over wire"))
                    .collect::<Vec<Response>>()
            })
        })
        .collect();
    let over_wire: Vec<Vec<Response>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    let mut total_sent = 0usize;
    for ((user, in_process), wire_answers) in expected.iter().zip(&over_wire) {
        assert_eq!(in_process.len(), wire_answers.len());
        for (i, (a, b)) in in_process.iter().zip(wire_answers).enumerate() {
            assert_eq!(a, b, "user {user} request #{i} diverged over the wire");
            total_sent += 1;
        }
    }

    // Stats — itself served over the wire — must surface the net.* metrics.
    let mut stats_client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");
    let Response::Stats(snap) = stats_client.request(&Request::Stats).expect("stats") else {
        panic!("Stats request answered with a non-Stats response");
    };
    total_sent += 1;
    assert!(snap.counter("net.req.ok") >= total_sent as u64 - 1);
    assert!(snap.counter("net.conn.accepted") >= USERS.len() as u64);
    assert_eq!(snap.counter("net.decode.errors"), 0);
    let lat = snap
        .histogram("net.req.latency")
        .expect("latency histogram on the wire");
    assert!(lat.count >= total_sent as u64 - 1);

    // Graceful shutdown joins every thread and hands the Memex back; the
    // final accounting shows every request answered, none shed, none lost.
    let memex = server.shutdown();
    let final_snap = memex.registry().snapshot();
    assert_eq!(final_snap.counter("net.req.ok"), total_sent as u64);
    assert_eq!(final_snap.counter("net.shed"), 0);
    assert_eq!(final_snap.counter("net.decode.errors"), 0);
    assert_eq!(
        final_snap.gauge("net.conn.active"),
        0,
        "connections leaked past shutdown"
    );
}

#[test]
fn zero_capacity_sheds_every_request_explicitly() {
    let memex = community_world();
    let config = NetServerConfig {
        max_in_flight: 0,
        trace: memex_obs::TraceConfig {
            enabled: true,
            ..memex_obs::TraceConfig::default()
        },
        ..NetServerConfig::default()
    };
    let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");
    let mut shed_ids = Vec::new();
    for _ in 0..5 {
        match client.request(&Request::Stats).expect("request") {
            Response::Overloaded { limit, .. } => assert_eq!(limit, 0),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        shed_ids.push(client.last_trace_id().expect("v4 client stamps ids"));
    }
    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    assert_eq!(snap.counter("net.shed"), 5);
    assert_eq!(snap.counter("net.req.ok"), 0);
    // A shed reply is still a served request: it must appear in the
    // `net.req.*` accounting (the blind spot this PR closes) …
    assert_eq!(snap.counter("net.req.shed"), 5);
    let lat = snap
        .histogram("net.req.latency")
        .expect("shed requests must record their latency");
    assert_eq!(lat.count, 5, "every shed reply records a latency sample");
    // … and leave a (short) complete trace, flagged as shed.
    let traces = memex.tracer().collect(false, 100);
    for id in shed_ids {
        let t = traces
            .iter()
            .find(|t| t.trace_id == id)
            .unwrap_or_else(|| panic!("shed request {id:#x} left no trace"));
        assert!(t.is_complete(), "shed trace incomplete: {t:?}");
        assert_eq!(
            t.root().expect("root").annotation("shed"),
            Some("true"),
            "shed verdict not annotated: {t:?}"
        );
    }
}

#[test]
fn garbage_frames_get_an_error_frame_then_close() {
    let memex = community_world();
    let server = NetServer::start(memex, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"not a memex frame at all......................")
        .expect("write garbage");
    // The server answers with a typed Error response frame, then closes.
    let (kind, payload) = memex_net::wire::read_frame(&mut raw).expect("error frame back");
    assert_eq!(kind, memex_net::FrameKind::Response);
    match memex_net::wire::decode_response(&payload).expect("decode error frame") {
        Response::Error(msg) => assert!(msg.contains("decode"), "unexpected message: {msg}"),
        other => panic!("expected Error response, got {other:?}"),
    }
    // The connection closes after the breach — clean FIN, or RST if the
    // server still had unread garbage buffered. Either way: no more frames.
    let mut rest = Vec::new();
    match raw.read_to_end(&mut rest) {
        Ok(_) => assert!(
            rest.is_empty(),
            "server sent more frames after protocol breach"
        ),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
            ),
            "unexpected error after breach: {e}"
        ),
    }

    let memex = server.shutdown();
    assert!(memex.registry().snapshot().counter("net.decode.errors") >= 1);
}

#[test]
fn client_reconnects_after_server_closes_idle_connection() {
    let memex = community_world();
    let config = NetServerConfig {
        read_timeout: Duration::from_millis(100),
        ..NetServerConfig::default()
    };
    let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");
    assert!(matches!(
        client.request(&Request::Stats).expect("first"),
        Response::Stats(_)
    ));
    // Outlive the server's idle timeout: the server closes our connection,
    // and the next request must transparently re-dial.
    std::thread::sleep(Duration::from_millis(400));
    assert!(matches!(
        client.request(&Request::Stats).expect("after idle"),
        Response::Stats(_)
    ));

    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    assert_eq!(snap.counter("net.req.ok"), 2);
    assert!(
        snap.counter("net.conn.accepted") >= 2,
        "reconnect did not open a new connection"
    );
}

#[test]
fn poisoned_memex_mutex_answers_typed_error_not_hung_connection() {
    let memex = community_world();
    let server = NetServer::start(memex, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");
    assert!(matches!(
        client.request(&Request::Stats).expect("pre-poison"),
        Response::Stats(_)
    ));

    // Panic a throwaway thread while it holds the memex lock: every later
    // request finds the mutex poisoned.
    server.poison_memex_for_test();

    // The worker must answer with a typed error — not panic, not hang the
    // connection until the client's request timeout.
    for _ in 0..3 {
        match client.request(&Request::Stats).expect("poisoned exchange") {
            Response::Error(msg) => assert!(
                msg.contains("poisoned"),
                "error should name the poison, got {msg:?}"
            ),
            other => panic!("expected Response::Error from poisoned server, got {other:?}"),
        }
    }

    // Shutdown still joins every thread and recovers the Memex from the
    // poisoned lock; the poison surfaces in the counters.
    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    assert_eq!(snap.counter("net.req.poisoned"), 3);
    assert_eq!(snap.counter("net.req.ok"), 1);
}

#[test]
fn lsm_engine_memex_serves_identically_and_reports_lsm_metrics() {
    // The whole stack — Memex, servlets, wire — on the LSM engine. The
    // engine choice flows through the options chain (MemexOptions →
    // ServerOptions → IndexOptions), queries must answer exactly as they
    // do in-process, and the wire Stats snapshot must surface the
    // `store.lsm.*` family the engine registers.
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 2,
        pages_per_topic: 15,
        ..CorpusConfig::default()
    }));
    let mut opts = MemexOptions::default();
    opts.server.index.engine = memex_store::EngineKind::Lsm;
    let mut memex = Memex::new(corpus.clone(), opts).expect("build LSM memex");
    memex.register_user(1, "user1").expect("register");
    for (time, &page) in (1u64..).zip(corpus.pages_of_topic(0).iter().take(8)) {
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: 1,
            session: 1,
            page,
            url: corpus.pages[page as usize].url.clone(),
            time,
            referrer: None,
        }));
    }
    memex.run_demons().expect("demons");

    let recall = Request::Recall {
        user: 1,
        query: "page".into(),
        since: 0,
        until: u64::MAX,
        k: 5,
    };
    let expected = dispatch(&mut memex, recall.clone());

    let server = NetServer::start(memex, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");
    assert_eq!(
        client.request(&recall).expect("recall over wire"),
        expected,
        "LSM-backed recall diverged over the wire"
    );
    let Response::Stats(snap) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats request answered with a non-Stats response");
    };
    assert!(
        snap.counter("store.lsm.puts") > 0,
        "LSM engine served the index but registered no store.lsm.puts"
    );
    assert!(
        snap.gauge("store.lsm.memtable.bytes") > 0,
        "indexed postings should be buffered in the LSM memtable"
    );
    server.shutdown();
}
