//! End-to-end tracing over a live loopback server: every request — cache
//! hits included — must leave exactly one complete span tree in the
//! flight recorder, slow requests must land in the slow log with their
//! lock-wait accounting and per-layer children, and wire-v2 peers must
//! keep working against the v3 server (and vice versa).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use memex_core::memex::{Memex, MemexOptions};
use memex_core::servlet::{Request, Response};
use memex_net::wire::{self, FrameKind, TraceContext};
use memex_net::{ClientConfig, MemexClient, NetServer, NetServerConfig};
use memex_obs::{TraceConfig, TraceData};
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};

/// A small archived world: one user with a short referrer chain, demons
/// drained, so recall/bill queries have something to chew on.
fn small_world() -> (Arc<Corpus>, Memex) {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 2,
        pages_per_topic: 15,
        ..CorpusConfig::default()
    }));
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).expect("build memex");
    memex.register_user(1, "user1").expect("register");
    let pages = corpus.pages_of_topic(0);
    let mut prev = None;
    for (i, &page) in pages.iter().take(6).enumerate() {
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: 1,
            session: 1,
            page,
            url: corpus.pages[page as usize].url.clone(),
            time: 1 + i as u64,
            referrer: prev,
        }));
        prev = Some(page);
    }
    memex.run_demons().expect("demons");
    (corpus, memex)
}

fn traced_server_config() -> NetServerConfig {
    NetServerConfig {
        trace: TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        },
        ..NetServerConfig::default()
    }
}

fn find_trace(traces: &[TraceData], id: u64) -> &TraceData {
    traces
        .iter()
        .find(|t| t.trace_id == id)
        .unwrap_or_else(|| panic!("no trace with id {id:#x} in the flight recorder"))
}

/// Does the tree contain a span with this name anywhere under the root?
fn has_span(trace: &TraceData, name: &str) -> bool {
    trace.span(name).is_some()
}

#[test]
fn every_request_records_exactly_one_complete_trace() {
    let (corpus, memex) = small_world();
    let server =
        NetServer::start(memex, "127.0.0.1:0", traced_server_config()).expect("bind ephemeral");
    let addr = server.local_addr();
    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");

    let recall = Request::Recall {
        user: 1,
        query: "page".into(),
        since: 0,
        until: u64::MAX,
        k: 5,
    };
    // 1. recall (cache miss), 2. identical recall (cache hit), 3. bill,
    // 4. stats (uncacheable), 5. bookmark event (write).
    let page = corpus.pages_of_topic(0)[0];
    let write = Request::Event(ClientEvent::Bookmark {
        user: 1,
        page,
        url: corpus.pages[page as usize].url.clone(),
        folder: "/traced".into(),
        time: 99,
    });
    let sequence = [
        recall.clone(),
        recall,
        Request::Bill {
            user: 1,
            since: 0,
            until: u64::MAX,
        },
        Request::Stats,
        write,
    ];
    let mut ids = Vec::new();
    for req in &sequence {
        client.request(req).expect("request over wire");
        ids.push(
            client
                .last_trace_id()
                .expect("v3 client stamps every request"),
        );
    }

    let Response::Traces(traces) = client
        .request(&Request::Traces {
            slow_only: false,
            limit: 100,
        })
        .expect("traces over wire")
    else {
        panic!("Traces request answered with a non-Traces response");
    };

    // Exactly one trace per completed request, each a complete tree rooted
    // at net.req, keyed by the id the client stamped into the frame.
    assert_eq!(traces.len(), sequence.len(), "one trace per request");
    let unique: HashSet<u64> = traces.iter().map(|t| t.trace_id).collect();
    assert_eq!(unique.len(), traces.len(), "trace ids must be unique");
    for t in &traces {
        assert!(t.trace_id != 0, "trace ids are never zero");
        assert!(t.is_complete(), "incomplete span tree: {t:?}");
        assert_eq!(t.root().expect("root").name, "net.req");
        assert!(has_span(t, "net.decode"), "decode span missing: {t:?}");
        assert!(has_span(t, "net.encode"), "encode span missing: {t:?}");
    }
    for &id in &ids {
        find_trace(&traces, id);
    }

    // The cache miss dispatched for real: servlet child plus the index
    // descendant under it.
    let miss = find_trace(&traces, ids[0]);
    assert!(has_span(miss, "recall"), "servlet child missing: {miss:?}");
    assert!(
        has_span(miss, "index.bm25"),
        "index child missing: {miss:?}"
    );
    assert!(miss.root().unwrap().annotation("cache_hit").is_none());
    assert_eq!(
        miss.root().unwrap().annotation("lock_kind"),
        Some("read"),
        "read lock annotation missing: {miss:?}"
    );
    assert!(miss.root().unwrap().annotation("lock_wait_ns").is_some());

    // The identical repeat was served from the read cache — no dispatch,
    // no servlet child, but still a complete trace flagged as a hit.
    let hit = find_trace(&traces, ids[1]);
    assert_eq!(
        hit.root().unwrap().annotation("cache_hit"),
        Some("true"),
        "cache hit not annotated: {hit:?}"
    );
    assert!(!has_span(hit, "recall"), "cache hit must not dispatch");

    // The write carried its servlet child and reached the store layer.
    let write_trace = find_trace(&traces, ids[4]);
    assert_eq!(
        write_trace.root().unwrap().annotation("lock_kind"),
        Some("write")
    );
    assert!(
        has_span(write_trace, "event"),
        "write servlet child: {write_trace:?}"
    );
    assert!(
        has_span(write_trace, "store.kv.put"),
        "store child missing from write trace: {write_trace:?}"
    );

    // The tracer the server hands back agrees with what the wire reported
    // (plus the Traces request itself, which completed after collecting).
    let memex = server.shutdown();
    assert_eq!(memex.tracer().recorded(), sequence.len() + 1);
    let snap = memex.registry().snapshot();
    assert_eq!(snap.counter("trace.started"), sequence.len() as u64 + 1);
    assert_eq!(snap.counter("trace.completed"), sequence.len() as u64 + 1);
    // The cache hit recorded the servlet latency histogram (the metrics
    // blind spot this PR closes): two recalls, two observations.
    let lat = snap
        .histogram("servlet.recall.latency")
        .expect("recall latency histogram");
    assert_eq!(lat.count, 2, "cache hit skipped the latency histogram");
    assert!(snap.histogram("net.lock.wait").is_some());
}

#[test]
fn slow_requests_land_in_the_slow_log_with_lock_wait_and_layer_children() {
    let (corpus, memex) = small_world();
    let config = NetServerConfig {
        trace: TraceConfig {
            enabled: true,
            // Every request is "slow": the slow log sees them all.
            slow_threshold_ns: 0,
            ..TraceConfig::default()
        },
        ..NetServerConfig::default()
    };
    let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind");
    let mut client =
        MemexClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");

    let page = corpus.pages_of_topic(1)[0];
    client
        .request(&Request::Event(ClientEvent::Bookmark {
            user: 1,
            page,
            url: corpus.pages[page as usize].url.clone(),
            folder: "/slow".into(),
            time: 50,
        }))
        .expect("write over wire");
    let write_id = client.last_trace_id().expect("stamped");

    let Response::Traces(slow) = client
        .request(&Request::Traces {
            slow_only: true,
            limit: 10,
        })
        .expect("slow log over wire")
    else {
        panic!("Traces request answered with a non-Traces response");
    };

    let t = find_trace(&slow, write_id);
    assert!(t.is_complete());
    let root = t.root().expect("root");
    assert_eq!(root.name, "net.req");
    let wait: u64 = root
        .annotation("lock_wait_ns")
        .expect("slow trace must account its lock wait")
        .parse()
        .expect("lock_wait_ns is a number");
    assert!(wait < 60_000_000_000, "implausible lock wait: {wait}ns");
    assert_eq!(root.annotation("lock_kind"), Some("write"));
    // Per-layer children: framing, servlet, storage.
    for name in ["net.decode", "net.encode", "event", "store.kv.put"] {
        assert!(has_span(t, name), "slow trace lacks `{name}` child: {t:?}");
    }

    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    assert!(snap.counter("slowlog.retained") >= 2);
}

#[test]
fn wire_v2_peers_are_served_and_v3_echoes_the_trace_context() {
    let (_corpus, memex) = small_world();
    let server = NetServer::start(memex, "127.0.0.1:0", traced_server_config()).expect("bind");
    let addr = server.local_addr();

    // A v2-configured client: no trace stamping, answers still arrive.
    let mut v2 = MemexClient::connect(
        addr,
        ClientConfig {
            wire_version: 2,
            ..ClientConfig::default()
        },
    )
    .expect("connect v2");
    assert!(matches!(
        v2.request(&Request::Stats).expect("v2 stats"),
        Response::Stats(_)
    ));
    assert_eq!(v2.last_trace_id(), None, "v2 clients never stamp ids");

    // Raw v2 exchange: the response frame mirrors version 2 and carries no
    // trace extension — byte-compatible with the pre-tracing protocol.
    let payload = wire::encode_request(&Request::Stats);
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    wire::write_frame_versioned(
        &mut raw,
        wire::MIN_WIRE_VERSION,
        FrameKind::Request,
        &payload,
        None,
    )
    .expect("write v2 frame");
    let meta = wire::read_frame_meta(&mut raw).expect("v2 response");
    assert_eq!(meta.version, wire::MIN_WIRE_VERSION);
    assert_eq!(meta.trace, None, "v2 response must not grow an extension");
    assert!(matches!(
        wire::decode_response(&meta.payload).expect("decode"),
        Response::Stats(_)
    ));

    // Raw v3 exchange: the server echoes the client's trace id back in the
    // response envelope and records the trace under that id.
    let ctx = TraceContext {
        trace_id: 0xDEAD_BEEF_CAFE_F00D,
        retry_of: None,
    };
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    wire::write_frame_versioned(
        &mut raw,
        wire::WIRE_VERSION,
        FrameKind::Request,
        &payload,
        Some(ctx),
    )
    .expect("write v3 frame");
    let meta = wire::read_frame_meta(&mut raw).expect("v3 response");
    assert_eq!(meta.version, wire::WIRE_VERSION);
    assert_eq!(meta.trace, Some(ctx), "v3 response must echo the trace id");

    let memex = server.shutdown();
    let traces = memex.tracer().collect(false, 100);
    assert!(
        traces.iter().any(|t| t.trace_id == ctx.trace_id),
        "propagated id absent from the flight recorder"
    );
    // The v2 requests were traced too — under server-generated ids.
    assert!(traces.len() >= 3, "v2 requests must still be traced");
    assert!(traces.iter().all(|t| t.is_complete()));
}

/// A retried read must be a *new* trace, linked to the dead attempt — not
/// an alias of it. The client mints a fresh id per attempt and stamps the
/// dead attempt's id as `retry_of` (wire v4); the server annotates the
/// answering root span with it.
#[test]
fn retried_read_gets_fresh_trace_id_linked_to_dead_attempt() {
    let (_corpus, memex) = small_world();
    let config = NetServerConfig {
        // Close idle connections quickly so the test can kill the client's
        // connection under it by just sleeping.
        read_timeout: Duration::from_millis(100),
        ..traced_server_config()
    };
    let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind");
    let seed = 0x5EED_5EED_5EED_5EED;
    let mut client = MemexClient::connect(
        server.local_addr(),
        ClientConfig {
            trace_seed: seed,
            ..ClientConfig::default()
        },
    )
    .expect("connect");

    // The client's id sequence is deterministic: request 1 burns id_first;
    // request 2's dead attempt burns id_dead; its retry answers as
    // id_retry with retry_of = id_dead.
    let expected_ids = memex_obs::trace::TraceIdGen::seeded(seed);
    let id_first = expected_ids.next();
    let id_dead = expected_ids.next();
    let id_retry = expected_ids.next();

    let bill = Request::Bill {
        user: 1,
        since: 0,
        until: u64::MAX,
    };
    client.request(&bill).expect("first request");
    assert_eq!(client.last_trace_id(), Some(id_first));

    // Outlive the server's idle timeout: the connection dies underneath
    // the client, so the next read request is transparently retried on a
    // fresh connection.
    std::thread::sleep(Duration::from_millis(400));
    client.request(&bill).expect("retried request");
    assert_eq!(
        client.last_trace_id(),
        Some(id_retry),
        "the answering attempt must carry a fresh id, not re-use {id_dead:#x}"
    );

    let memex = server.shutdown();
    let traces = memex.tracer().collect(false, 100);
    // No span tree aliases the dead attempt's id, and the answering
    // attempt's tree links back to it.
    assert!(
        !traces.iter().any(|t| t.trace_id == id_dead),
        "dead attempt's id must not own a recorded tree"
    );
    let retry = find_trace(&traces, id_retry);
    assert!(retry.is_complete());
    assert_eq!(
        retry.root().expect("root").annotation("retry_of"),
        Some(id_dead.to_string().as_str()),
        "retry not linked to its dead attempt: {retry:?}"
    );
    // The first request was an ordinary, unlinked trace.
    let first = find_trace(&traces, id_first);
    assert_eq!(first.root().expect("root").annotation("retry_of"), None);
}

/// Tracing disabled must stay cheap. A hard <5% bound is too flaky for
/// shared CI hardware, so this asserts a lenient envelope — the precise
/// off/on ratio is measured and reported by the N1 bench (`BENCH_PR6.json`).
#[test]
fn disabled_tracing_keeps_request_throughput() {
    fn best_elapsed(enabled: bool) -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let (_corpus, memex) = small_world();
            let config = NetServerConfig {
                trace: TraceConfig {
                    enabled,
                    ..TraceConfig::default()
                },
                ..NetServerConfig::default()
            };
            let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind");
            let mut client = MemexClient::connect(server.local_addr(), ClientConfig::default())
                .expect("connect");
            let req = Request::Bill {
                user: 1,
                since: 0,
                until: u64::MAX,
            };
            let started = Instant::now();
            for _ in 0..200 {
                client.request(&req).expect("request");
            }
            best = best.min(started.elapsed());
            server.shutdown();
        }
        best
    }

    let off = best_elapsed(false);
    let on = best_elapsed(true);
    // Lenient both ways: neither mode may be drastically slower than the
    // other (catches a disabled path that still does real work, and an
    // enabled path with pathological contention).
    assert!(
        off <= on.saturating_mul(3),
        "tracing-off ({off:?}) drastically slower than tracing-on ({on:?})"
    );
    assert!(
        on <= off.saturating_mul(5),
        "tracing-on ({on:?}) pathologically slower than tracing-off ({off:?})"
    );
}
