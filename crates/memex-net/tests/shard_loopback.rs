//! Sharded-server loopback tests: a live 4-shard `NetServer` on an
//! ephemeral port, driven by real clients.
//!
//! Two properties:
//!
//! 1. **Answer equivalence over the wire** — a sharded server answers the
//!    mining servlets identically to one in-process `Memex`, including
//!    reads that observe another shard's write (replication) and the
//!    aggregated community tier (`Stats`).
//! 2. **Unknown users are harmless** — a wire-level property test: every
//!    user-scoped request variant carrying an id no shard knows comes back
//!    as a typed empty/err response. No shard panics, no lock is poisoned,
//!    and the server keeps answering afterwards — on every shard.

use std::net::SocketAddr;
use std::sync::Arc;

use proptest::test_runner::TestRng;

use memex_core::memex::{Memex, MemexOptions};
use memex_core::servlet::{dispatch, Request, Response};
use memex_net::{ClientConfig, MemexClient, NetServer, NetServerConfig};
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};

const SHARDS: usize = 4;
const KNOWN_USERS: [u32; 4] = [1, 2, 3, 4];

fn shared_corpus() -> Arc<Corpus> {
    Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 3,
        pages_per_topic: 25,
        ..CorpusConfig::default()
    }))
}

/// The deterministic community surf every replica replays, so N replicas
/// built from the same corpus are identical.
fn surf_events(corpus: &Corpus) -> Vec<ClientEvent> {
    let mut events = Vec::new();
    let mut time = 1u64;
    for &user in &KNOWN_USERS {
        let topic = (user as usize - 1) % 3;
        let pages = corpus.pages_of_topic(topic);
        let mut prev: Option<u32> = None;
        for &page in pages.iter().take(8) {
            events.push(ClientEvent::Visit(VisitEvent {
                user,
                session: user,
                page,
                url: corpus.pages[page as usize].url.clone(),
                time,
                referrer: prev,
            }));
            prev = Some(page);
            time += 1;
        }
        for &page in pages.iter().take(2) {
            events.push(ClientEvent::Bookmark {
                user,
                page,
                url: corpus.pages[page as usize].url.clone(),
                folder: format!("/topic{topic}"),
                time,
            });
            time += 1;
        }
    }
    events
}

fn replica(corpus: &Arc<Corpus>, events: &[ClientEvent]) -> Memex {
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).expect("build memex");
    for &user in &KNOWN_USERS {
        memex
            .register_user(user, &format!("user{user}"))
            .expect("register");
    }
    for e in events {
        memex.submit(e.clone());
    }
    memex.run_demons().expect("demons");
    memex
}

fn sharded_config() -> NetServerConfig {
    NetServerConfig {
        shards: SHARDS,
        ..NetServerConfig::default()
    }
}

/// The full read-only mining mix for one user (mirrors `loopback.rs`).
fn user_reads(user: u32) -> Vec<Request> {
    vec![
        Request::Recall {
            user,
            query: "page".into(),
            since: 0,
            until: u64::MAX,
            k: 5,
        },
        Request::TrailReplay {
            user,
            folder: 1,
            since: 0,
            max_pages: 10,
        },
        Request::WhatsNew {
            user,
            folder: 1,
            since: 0,
            k: 5,
        },
        Request::Bill {
            user,
            since: 0,
            until: u64::MAX,
        },
        Request::SimilarSurfers { user, k: 3 },
        Request::Recommend { user, k: 3 },
        Request::ExportBookmarks { user },
        Request::ProposeFolders { user, k: 3 },
    ]
}

/// Every user-scoped request variant, reads and writes, for one user.
fn user_surface(user: u32) -> Vec<Request> {
    let mut all = user_reads(user);
    all.push(Request::Event(ClientEvent::Bookmark {
        user,
        page: 0,
        url: "https://nowhere.invalid/".into(),
        folder: "/fuzz".into(),
        time: 1_000_000,
    }));
    all.push(Request::ImportBookmarks {
        user,
        html: "<DL><DT><A HREF=\"https://nowhere.invalid/\">x</A></DL>".into(),
        time: 1_000_000,
    });
    all
}

#[test]
fn sharded_server_matches_in_process_across_shards() {
    let corpus = shared_corpus();
    let events = surf_events(&corpus);
    // One in-process ground truth plus four identical replicas to serve.
    let mut truth = replica(&corpus, &events);
    let shards: Vec<Memex> = (0..SHARDS).map(|_| replica(&corpus, &events)).collect();
    let server =
        NetServer::start_sharded(shards, "127.0.0.1:0", sharded_config()).expect("bind sharded");
    let addr = server.local_addr();
    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");

    // Users 1..=4 land on shards 1,2,3,0 — every shard serves.
    for &user in &KNOWN_USERS {
        for req in user_reads(user) {
            let expected = dispatch(&mut truth, req.clone());
            let got = client.request(&req).expect("read over wire");
            assert_eq!(expected, got, "user {user} {req:?} diverged over the wire");
        }
    }

    // A write through one shard must become visible to reads routed to
    // every other shard (replication), exactly as on a single Memex.
    let page = corpus.pages_of_topic(0)[10];
    let write = Request::Event(ClientEvent::Visit(VisitEvent {
        user: 1,
        session: 1,
        page,
        url: corpus.pages[page as usize].url.clone(),
        time: 500,
        referrer: None,
    }));
    assert_eq!(
        dispatch(&mut truth, write.clone()),
        client.request(&write).expect("write over wire")
    );
    for &user in &KNOWN_USERS {
        let probe = Request::Bill {
            user,
            since: 0,
            until: u64::MAX,
        };
        assert_eq!(
            dispatch(&mut truth, probe.clone()),
            client.request(&probe).expect("post-write read"),
            "user {user} bill diverged after a cross-shard write"
        );
    }

    // The community tier aggregates every shard: the merged snapshot must
    // carry both serving-layer counters and servlet samples from replicas.
    let Response::Stats(snap) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats answered with a non-Stats response");
    };
    assert!(snap.counter("net.req.ok") > 0);
    assert_eq!(snap.counter("net.req.panics"), 0);
    assert_eq!(snap.counter("net.req.poisoned"), 0);
    // Per-shard serving counters exist for every shard index.
    let per_shard: u64 = (0..SHARDS)
        .map(|i| {
            snap.counter(&format!("net.shard.{i}.read.ok"))
                + snap.counter(&format!("net.shard.{i}.write.ok"))
        })
        .sum();
    assert!(per_shard > 0, "per-shard serving counters missing");

    // Shutdown hands every replica back.
    let replicas = server.shutdown_all();
    assert_eq!(replicas.len(), SHARDS);
}

#[test]
fn unknown_users_get_typed_answers_never_a_poisoned_shard() {
    let corpus = shared_corpus();
    let events = surf_events(&corpus);
    let shards: Vec<Memex> = (0..SHARDS).map(|_| replica(&corpus, &events)).collect();
    let server =
        NetServer::start_sharded(shards, "127.0.0.1:0", sharded_config()).expect("bind sharded");
    let addr: SocketAddr = server.local_addr();

    // Property: any unknown user id, on any shard, through every
    // user-scoped request variant → a typed response. "Unknown" is
    // anything outside KNOWN_USERS; offsets 0..SHARDS sweep the sampled
    // base id across all shard residues. Driven by the deterministic
    // per-test RNG (the vendored proptest runner cannot share one live
    // server across generated cases).
    let mut rng = TestRng::for_test("unknown_users_get_typed_answers_never_a_poisoned_shard");
    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");
    for _case in 0..6 {
        let base = 5 + rng.below(u64::from(u32::MAX - 16)) as u32;
        for offset in 0..SHARDS as u32 {
            let user = base + offset;
            for req in user_surface(user) {
                let resp = client
                    .request(&req)
                    .unwrap_or_else(|e| panic!("user {user} {req:?} transport error: {e}"));
                if let Response::Error(msg) = &resp {
                    assert!(
                        !msg.contains("panicked") && !msg.contains("poisoned"),
                        "user {user} {req:?} hit a crashed shard: {msg}"
                    );
                }
            }
        }
    }

    // No shard panicked or got poisoned anywhere in the sweep, and the
    // server still answers known users on every shard.
    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");
    let Response::Stats(snap) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats answered with a non-Stats response");
    };
    assert_eq!(snap.counter("net.req.panics"), 0, "a shard panicked");
    assert_eq!(snap.counter("net.req.poisoned"), 0, "a shard was poisoned");
    for &user in &KNOWN_USERS {
        assert!(
            !matches!(
                client
                    .request(&Request::Bill {
                        user,
                        since: 0,
                        until: u64::MAX,
                    })
                    .expect("post-fuzz bill"),
                Response::Error(_)
            ),
            "shard serving user {user} stopped answering after the fuzz"
        );
    }
    drop(server.shutdown_all());
}
