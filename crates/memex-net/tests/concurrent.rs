//! Concurrent serving tests: N reader clients race one writer stream over
//! a live `NetServer` and the answers must always reflect a consistent
//! write epoch — a reader may see an *older* archive than the latest write,
//! never a torn one, and the read cache must never serve a result from
//! before a write after that write was acknowledged.
//!
//! These run under the nightly TSan job in CI (`san-matrix`), which makes
//! the RwLock + epoch-cache protocol race-checked, not just stress-tested.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use memex_core::memex::{Memex, MemexOptions};
use memex_core::servlet::{Request, Response};
use memex_net::{ClientConfig, MemexClient, NetServer, NetServerConfig};
use memex_server::events::{ClientEvent, VisitEvent};
use memex_web::corpus::{Corpus, CorpusConfig};

/// The user whose visits the writer streams in while readers watch.
const WATCHED_USER: u32 = 9;
const READERS: usize = 4;
const WRITES: usize = 20;

fn world() -> (Arc<Corpus>, Memex) {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 2,
        pages_per_topic: 30,
        ..CorpusConfig::default()
    }));
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default()).expect("build memex");
    // A background user gives the world some bookmarks/folders.
    memex.register_user(1, "background").expect("register");
    let mut time = 1u64;
    for &page in corpus.pages_of_topic(0).iter().take(6) {
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: 1,
            session: 1,
            page,
            url: corpus.pages[page as usize].url.clone(),
            time,
            referrer: None,
        }));
        time += 1;
    }
    memex
        .submit(ClientEvent::Bookmark {
            user: 1,
            page: corpus.pages_of_topic(0)[0],
            url: corpus.pages[corpus.pages_of_topic(0)[0] as usize]
                .url
                .clone(),
            folder: "/topic0".into(),
            time,
        })
        .then_some(())
        .expect("bookmark archived");
    // The watched user starts with an empty trail; the writer adds to it.
    memex
        .register_user(WATCHED_USER, "watched")
        .expect("register");
    memex.run_demons().expect("demons");
    (corpus, memex)
}

fn bill_request() -> Request {
    Request::Bill {
        user: WATCHED_USER,
        since: 0,
        until: u64::MAX,
    }
}

/// Total visits across every line of a Bill response — grows by exactly one
/// per acknowledged visit event, which makes it a write-epoch watermark.
fn bill_total(resp: &Response) -> u32 {
    match resp {
        Response::Bill(lines) => lines.iter().map(|l| l.visits).sum(),
        other => panic!("expected Bill, got {other:?}"),
    }
}

/// N concurrent readers poll the watched user's bill while one writer
/// streams visit events. Each reader's watermark must be non-decreasing
/// (a stale cached answer after a newer one was observed would decrease
/// it), and after the writer finishes every reader — and the cache — must
/// converge on the exact final count.
#[test]
fn concurrent_readers_see_monotonic_epochs_while_writer_streams() {
    let (corpus, memex) = world();
    let config = NetServerConfig {
        workers: READERS + 1,
        max_in_flight: 64,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(memex, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let done = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..READERS)
        .map(|_| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client =
                    MemexClient::connect(addr, ClientConfig::default()).expect("connect");
                let mut watermark = 0u32;
                let mut observations = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let resp = client.request(&bill_request()).expect("read");
                    let total = bill_total(&resp);
                    assert!(
                        total >= watermark,
                        "bill went backwards: {total} after {watermark} — a stale \
                         cached answer was served after a newer write was observed"
                    );
                    watermark = total;
                    observations += 1;
                }
                // Convergence: the writer is done, so the very next answer
                // (cached or dispatched) must be the final archive.
                let final_total = bill_total(&client.request(&bill_request()).expect("final"));
                assert_eq!(final_total, WRITES as u32, "reader did not converge");
                observations
            })
        })
        .collect();

    // One writer streams visits; every Ack means the event (and its demon
    // pass) is durable under the write lock before the next one goes out.
    let pages = corpus.pages_of_topic(1);
    let mut writer = MemexClient::connect(addr, ClientConfig::default()).expect("connect writer");
    for i in 0..WRITES {
        let page = pages[i % pages.len()];
        let resp = writer
            .request(&Request::Event(ClientEvent::Visit(VisitEvent {
                user: WATCHED_USER,
                session: 1,
                page,
                url: corpus.pages[page as usize].url.clone(),
                time: 1_000 + i as u64,
                referrer: None,
            })))
            .expect("write");
        assert_eq!(resp, Response::Ack { archived: true });
    }
    done.store(true, Ordering::SeqCst);

    let mut total_reads = 0u64;
    for h in reader_handles {
        total_reads += h.join().expect("reader thread");
    }
    total_reads += READERS as u64; // the per-reader convergence read

    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    // Nothing shed, nothing panicked, nothing poisoned.
    assert_eq!(snap.counter("net.shed"), 0);
    assert_eq!(snap.counter("net.req.panics"), 0);
    assert_eq!(snap.counter("net.req.poisoned"), 0);
    // Every read answered, and every cacheable probe is accounted for as
    // exactly one hit or one miss.
    assert_eq!(snap.counter("net.read.ok"), total_reads);
    assert_eq!(
        snap.counter("net.read.cache.hit") + snap.counter("net.read.cache.miss"),
        total_reads
    );
    // Ground truth: the archive the server hands back agrees with what the
    // readers converged on.
    let final_bill: u32 = memex
        .bill(WATCHED_USER, 0, u64::MAX)
        .iter()
        .map(|l| l.visits)
        .sum();
    assert_eq!(final_bill, WRITES as u32);
}

/// Deterministic cache-coherence check on a single connection: a repeated
/// read must hit the cache, an interleaved write must invalidate it, and
/// the post-write read must see the new archive — never the cached one.
#[test]
fn write_invalidates_cached_read_results() {
    let (corpus, memex) = world();
    let server = NetServer::start(memex, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut client = MemexClient::connect(addr, ClientConfig::default()).expect("connect");

    let before = bill_total(&client.request(&bill_request()).expect("miss"));
    assert_eq!(before, 0, "watched user starts with an empty trail");
    // Identical request, no intervening write: answered from the cache.
    let again = bill_total(&client.request(&bill_request()).expect("hit"));
    assert_eq!(again, before);

    let page = corpus.pages_of_topic(1)[0];
    let resp = client
        .request(&Request::Event(ClientEvent::Visit(VisitEvent {
            user: WATCHED_USER,
            session: 1,
            page,
            url: corpus.pages[page as usize].url.clone(),
            time: 5_000,
            referrer: None,
        })))
        .expect("write");
    assert_eq!(resp, Response::Ack { archived: true });

    // The write bumped the epoch: the cached entry is dead, and the fresh
    // dispatch must see the new visit.
    let after = bill_total(&client.request(&bill_request()).expect("post-write"));
    assert_eq!(after, 1, "post-write read served a stale cached result");

    let memex = server.shutdown();
    let snap = memex.registry().snapshot();
    assert!(
        snap.counter("net.read.cache.hit") >= 1,
        "second identical read should have hit the cache"
    );
    // Probe accounting: 3 bill reads = 1 hit + 2 misses.
    assert_eq!(snap.counter("net.read.cache.hit"), 1);
    assert_eq!(snap.counter("net.read.cache.miss"), 2);
}
