//! Decoder corruption sweep, in the spirit of `memex-store`'s
//! `tests/fault.rs`: take valid frames, then truncate at every byte offset
//! and flip every single bit, and assert the decoder returns a typed error
//! every time — it never panics, and never reads past the declared frame
//! cap. Random junk payloads are also thrown at the payload decoders.

use proptest::prelude::*;

use memex_core::servlet::{Request, Response};
use memex_net::wire::{self, FrameKind, WireError, HEADER_LEN, MAX_PAYLOAD};
use memex_obs::Snapshot;
use memex_server::events::{ArchiveMode, ClientEvent, VisitEvent};

/// Representative fixtures covering scalar, string, vector, nested, and
/// empty payload shapes.
fn fixtures() -> Vec<(FrameKind, Vec<u8>)> {
    let mut snap = Snapshot::default();
    snap.counters.push(("net.req.ok".into(), 17));
    snap.gauges.push(("net.conn.active".into(), -2));
    snap.events.push((
        "server".into(),
        vec![memex_obs::Event {
            seq: 9,
            message: "overload: shed 3".into(),
        }],
    ));
    vec![
        (
            FrameKind::Request,
            wire::encode_request(&Request::Event(ClientEvent::Visit(VisitEvent {
                user: 1,
                session: 2,
                page: 3,
                url: "http://page3".into(),
                time: 44,
                referrer: Some(2),
            }))),
        ),
        (
            FrameKind::Request,
            wire::encode_request(&Request::Event(ClientEvent::SetMode {
                user: 7,
                mode: ArchiveMode::Private,
                time: 1,
            })),
        ),
        (
            FrameKind::Request,
            wire::encode_request(&Request::Recall {
                user: 9,
                query: "surf trails".into(),
                since: 0,
                until: u64::MAX,
                k: 10,
            }),
        ),
        (FrameKind::Request, wire::encode_request(&Request::Stats)),
        (
            FrameKind::Response,
            wire::encode_response(&Response::Recall(vec![memex_core::memex::RecallHit {
                page: 5,
                url: "http://page5".into(),
                score: 0.75,
                last_visit: 99,
                snippet: "…about six months back…".into(),
            }])),
        ),
        (
            FrameKind::Response,
            wire::encode_response(&Response::Stats(snap)),
        ),
        (
            FrameKind::Response,
            wire::encode_response(&Response::Overloaded {
                in_flight: 8,
                limit: 4,
            }),
        ),
    ]
}

#[test]
fn truncation_at_every_offset_errors() {
    for (kind, payload) in fixtures() {
        let frame = wire::frame_bytes(kind, &payload);
        for cut in 0..frame.len() {
            let result = wire::decode_frame(&frame[..cut]);
            assert!(
                result.is_err(),
                "truncation to {cut}/{} bytes decoded successfully",
                frame.len()
            );
        }
    }
}

#[test]
fn bit_flip_at_every_offset_errors() {
    // The checksum covers version ‖ kind ‖ payload, the magic check covers
    // the first two bytes, and a flipped length can no longer match the
    // buffer size — so *every* single-bit corruption must surface as Err.
    for (kind, payload) in fixtures() {
        let frame = wire::frame_bytes(kind, &payload);
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                let result = wire::decode_frame(&bad);
                assert!(
                    result.is_err(),
                    "flip of bit {bit} at byte {i}/{} decoded successfully",
                    frame.len()
                );
            }
        }
    }
}

#[test]
fn truncated_stream_reads_error_and_stop_at_cap() {
    for (kind, payload) in fixtures() {
        let frame = wire::frame_bytes(kind, &payload);
        for cut in 0..frame.len() {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(wire::read_frame(&mut cursor).is_err());
            // The reader must never have consumed more than the frame cap.
            assert!(cursor.position() as usize <= HEADER_LEN + MAX_PAYLOAD + 4);
        }
    }
}

#[test]
fn oversized_declared_length_never_allocates_or_reads() {
    // A header claiming a payload over the cap must be rejected from the
    // header alone — even if "enough" bytes follow on the stream.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"MX");
    bytes.push(wire::WIRE_VERSION);
    bytes.push(0); // request
    bytes.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]);
    let mut cursor = std::io::Cursor::new(bytes.clone());
    assert!(matches!(
        wire::read_frame(&mut cursor),
        Err(WireError::Oversized { .. })
    ));
    // Only the header was consumed.
    assert_eq!(cursor.position() as usize, HEADER_LEN);
    assert!(matches!(
        wire::decode_frame(&bytes),
        Err(WireError::Oversized { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_junk_never_panics_payload_decoders(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Ok or Err are both acceptable; panicking or over-reading is not.
        let _ = wire::decode_request(&junk);
        let _ = wire::decode_response(&junk);
        let _ = wire::decode_frame(&junk);
    }

    #[test]
    fn random_prefix_swap_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Junk wearing a valid magic + version: exercises the deeper paths.
        let mut bytes = vec![b'M', b'X', wire::WIRE_VERSION];
        bytes.extend_from_slice(&junk);
        let _ = wire::decode_frame(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = wire::read_frame(&mut cursor);
    }
}
