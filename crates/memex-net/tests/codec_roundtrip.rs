//! Codec round-trip property: an arbitrary `Request`/`Response` of *every*
//! variant encodes and decodes back to an equal value, standalone and
//! through a full checksummed frame.
//!
//! Variant coverage is guarded twice: the wildcard-free `match`es in
//! `wire::encode_request`/`encode_response` (and in
//! `request_variant_index`/`response_variant_index` below) make a newly
//! added variant a *compile* error until the codec and these strategies
//! learn it, and `strategies_cover_every_variant` fails at runtime if a
//! strategy arm is missing.

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use memex_core::memex::{BillLine, FolderProposal, RecallHit};
use memex_core::servlet::{Request, Response};
use memex_graph::trail::{ContextNode, TrailContext};
use memex_net::wire;
use memex_obs::{Event, HistogramSnapshot, Snapshot, SpanData, TraceData, NUM_BUCKETS};
use memex_server::events::{ArchiveMode, ClientEvent, VisitEvent};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_string() -> impl Strategy<Value = String> {
    // Printable ASCII plus occasional multi-byte codepoints: exercises the
    // UTF-8 path of the string codec.
    ".{0,24}"
}

fn arb_mode() -> impl Strategy<Value = ArchiveMode> {
    prop_oneof![
        Just(ArchiveMode::Off),
        Just(ArchiveMode::Private),
        Just(ArchiveMode::Community),
    ]
}

fn arb_event() -> BoxedStrategy<ClientEvent> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            arb_string(),
            any::<u64>(),
            prop_oneof![Just(None), any::<u32>().prop_map(Some)],
        )
            .prop_map(|(user, session, page, url, time, referrer)| {
                ClientEvent::Visit(VisitEvent {
                    user,
                    session,
                    page,
                    url,
                    time,
                    referrer,
                })
            }),
        (
            any::<u32>(),
            any::<u32>(),
            arb_string(),
            arb_string(),
            any::<u64>()
        )
            .prop_map(|(user, page, url, folder, time)| ClientEvent::Bookmark {
                user,
                page,
                url,
                folder,
                time
            }),
        (any::<u32>(), arb_mode(), any::<u64>())
            .prop_map(|(user, mode, time)| ClientEvent::SetMode { user, mode, time }),
    ]
    .boxed()
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        arb_event().prop_map(Request::Event),
        (
            any::<u32>(),
            arb_string(),
            any::<u64>(),
            any::<u64>(),
            any::<usize>()
        )
            .prop_map(|(user, query, since, until, k)| Request::Recall {
                user,
                query,
                since,
                until,
                k
            }),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<usize>()).prop_map(
            |(user, folder, since, max_pages)| Request::TrailReplay {
                user,
                folder,
                since,
                max_pages
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<usize>()).prop_map(
            |(user, folder, since, k)| Request::WhatsNew {
                user,
                folder,
                since,
                k
            }
        ),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(user, since, until)| Request::Bill {
            user,
            since,
            until
        }),
        (any::<u32>(), any::<usize>()).prop_map(|(user, k)| Request::SimilarSurfers { user, k }),
        (any::<u32>(), any::<usize>()).prop_map(|(user, k)| Request::Recommend { user, k }),
        (any::<u32>(), arb_string(), any::<u64>())
            .prop_map(|(user, html, time)| Request::ImportBookmarks { user, html, time }),
        any::<u32>().prop_map(|user| Request::ExportBookmarks { user }),
        (any::<u32>(), any::<usize>()).prop_map(|(user, k)| Request::ProposeFolders { user, k }),
        Just(Request::Stats),
        (any::<bool>(), any::<usize>())
            .prop_map(|(slow_only, limit)| Request::Traces { slow_only, limit }),
    ]
    .boxed()
}

fn arb_trace() -> impl Strategy<Value = TraceData> {
    (
        any::<u64>(),
        proptest::collection::vec(
            (
                any::<u32>(),
                prop_oneof![Just(None), any::<u32>().prop_map(Some)],
                arb_string(),
                any::<u64>(),
                any::<u64>(),
                proptest::collection::vec((arb_string(), arb_string()), 0..3),
            )
                .prop_map(|(id, parent, name, start_ns, end_ns, annotations)| {
                    SpanData {
                        id,
                        parent,
                        name,
                        start_ns,
                        end_ns,
                        annotations,
                    }
                }),
            0..5,
        ),
    )
        .prop_map(|(trace_id, spans)| TraceData { trace_id, spans })
}

fn arb_scored() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((any::<u32>(), -1.0e12f64..1.0e12), 0..6)
}

fn arb_trail() -> impl Strategy<Value = TrailContext> {
    (
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 0..6),
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..8),
    )
        .prop_map(|(nodes, edges)| TrailContext {
            nodes: nodes
                .into_iter()
                .map(|(page, visit_count, last_time)| ContextNode {
                    page,
                    visit_count,
                    last_time,
                })
                .collect(),
            edges,
        })
}

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(any::<u64>(), NUM_BUCKETS),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(bucket_vec, count, sum)| {
            let mut buckets = [0u64; NUM_BUCKETS];
            buckets.copy_from_slice(&bucket_vec);
            HistogramSnapshot {
                buckets,
                count,
                sum,
            }
        })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec((arb_string(), any::<u64>()), 0..4),
        proptest::collection::vec((arb_string(), any::<i64>()), 0..4),
        proptest::collection::vec((arb_string(), arb_histogram()), 0..3),
        proptest::collection::vec(
            (
                arb_string(),
                proptest::collection::vec(
                    (any::<u64>(), arb_string()).prop_map(|(seq, message)| Event { seq, message }),
                    0..3,
                ),
            ),
            0..3,
        ),
    )
        .prop_map(|(counters, gauges, histograms, events)| Snapshot {
            counters,
            gauges,
            histograms,
            events,
        })
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        any::<bool>().prop_map(|archived| Response::Ack { archived }),
        proptest::collection::vec(
            (
                any::<u32>(),
                arb_string(),
                -1.0e6f32..1.0e6f32,
                any::<u64>(),
                arb_string()
            )
                .prop_map(|(page, url, score, last_visit, snippet)| RecallHit {
                    page,
                    url,
                    score,
                    last_visit,
                    snippet
                }),
            0..5
        )
        .prop_map(Response::Recall),
        arb_trail().prop_map(Response::TrailReplay),
        arb_scored().prop_map(Response::WhatsNew),
        proptest::collection::vec(
            (arb_string(), any::<u64>(), any::<u32>(), -1.0f64..2.0f64).prop_map(
                |(folder, bytes, visits, fraction)| BillLine {
                    folder,
                    bytes,
                    visits,
                    fraction
                }
            ),
            0..5
        )
        .prop_map(Response::Bill),
        arb_scored().prop_map(Response::SimilarSurfers),
        arb_scored().prop_map(Response::Recommend),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(
            |(archived, rejected, unresolved)| Response::Imported {
                archived,
                rejected,
                unresolved
            }
        ),
        arb_string().prop_map(Response::Exported),
        proptest::collection::vec(
            (arb_string(), proptest::collection::vec(any::<u32>(), 0..6))
                .prop_map(|(name, pages)| FolderProposal { name, pages }),
            0..4
        )
        .prop_map(Response::Proposals),
        arb_snapshot().prop_map(Response::Stats),
        proptest::collection::vec(arb_trace(), 0..3).prop_map(Response::Traces),
        arb_string().prop_map(Response::Error),
        (any::<u32>(), any::<u32>())
            .prop_map(|(in_flight, limit)| Response::Overloaded { in_flight, limit }),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Variant-coverage guard (wildcard-free on purpose)
// ---------------------------------------------------------------------------

const REQUEST_VARIANTS: usize = 12;
const RESPONSE_VARIANTS: usize = 14;

fn request_variant_index(r: &Request) -> usize {
    match r {
        Request::Event(_) => 0,
        Request::Recall { .. } => 1,
        Request::TrailReplay { .. } => 2,
        Request::WhatsNew { .. } => 3,
        Request::Bill { .. } => 4,
        Request::SimilarSurfers { .. } => 5,
        Request::Recommend { .. } => 6,
        Request::ImportBookmarks { .. } => 7,
        Request::ExportBookmarks { .. } => 8,
        Request::ProposeFolders { .. } => 9,
        Request::Stats => 10,
        Request::Traces { .. } => 11,
    }
}

fn response_variant_index(r: &Response) -> usize {
    match r {
        Response::Ack { .. } => 0,
        Response::Recall(_) => 1,
        Response::TrailReplay(_) => 2,
        Response::WhatsNew(_) => 3,
        Response::Bill(_) => 4,
        Response::SimilarSurfers(_) => 5,
        Response::Recommend(_) => 6,
        Response::Imported { .. } => 7,
        Response::Exported(_) => 8,
        Response::Proposals(_) => 9,
        Response::Stats(_) => 10,
        Response::Traces(_) => 11,
        Response::Error(_) => 12,
        Response::Overloaded { .. } => 13,
    }
}

#[test]
fn strategies_cover_every_variant() {
    let mut rng = TestRng::from_seed(0x4D58);
    let req = arb_request();
    let resp = arb_response();
    let mut seen_req = [false; REQUEST_VARIANTS];
    let mut seen_resp = [false; RESPONSE_VARIANTS];
    for _ in 0..4000 {
        seen_req[request_variant_index(&req.generate(&mut rng))] = true;
        seen_resp[response_variant_index(&resp.generate(&mut rng))] = true;
    }
    assert!(
        seen_req.iter().all(|&s| s),
        "request strategy misses variants: {seen_req:?}"
    );
    assert!(
        seen_resp.iter().all(|&s| s),
        "response strategy misses variants: {seen_resp:?}"
    );
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrips(req in arb_request()) {
        let payload = wire::encode_request(&req);
        let back = wire::decode_request(&payload).expect("decode own encoding");
        prop_assert_eq!(&req, &back);
        // And through the full checksummed frame.
        let frame = wire::frame_bytes(wire::FrameKind::Request, &payload);
        let (kind, framed) = wire::decode_frame(&frame).expect("decode own frame");
        prop_assert_eq!(kind, wire::FrameKind::Request);
        prop_assert_eq!(framed, &payload[..]);
    }

    #[test]
    fn response_roundtrips(resp in arb_response()) {
        let payload = wire::encode_response(&resp);
        let back = wire::decode_response(&payload).expect("decode own encoding");
        prop_assert_eq!(&resp, &back);
        let frame = wire::frame_bytes(wire::FrameKind::Response, &payload);
        let (kind, framed) = wire::decode_frame(&frame).expect("decode own frame");
        prop_assert_eq!(kind, wire::FrameKind::Response);
        prop_assert_eq!(framed, &payload[..]);
    }

    #[test]
    fn traced_frame_roundtrips(req in arb_request(), trace_id in any::<u64>(), retry_of in prop_oneof![Just(None), any::<u64>().prop_map(Some)]) {
        // A current-version frame carrying a trace context (optionally a
        // retry-of id) decodes back to the same payload and the same
        // context; a v2 frame of the same payload decodes with no trace
        // attached.
        let payload = wire::encode_request(&req);
        let ctx = wire::TraceContext { trace_id, retry_of };
        let v3 = wire::frame_bytes_versioned(
            wire::WIRE_VERSION,
            wire::FrameKind::Request,
            &payload,
            Some(ctx),
        );
        let meta = wire::decode_frame_meta(&v3).expect("decode v3 frame");
        prop_assert_eq!(meta.version, wire::WIRE_VERSION);
        prop_assert_eq!(meta.trace, Some(ctx));
        prop_assert_eq!(&meta.payload, &payload);
        let v2 = wire::frame_bytes_versioned(
            wire::MIN_WIRE_VERSION,
            wire::FrameKind::Request,
            &payload,
            None,
        );
        let meta = wire::decode_frame_meta(&v2).expect("decode v2 frame");
        prop_assert_eq!(meta.version, wire::MIN_WIRE_VERSION);
        prop_assert_eq!(meta.trace, None);
        prop_assert_eq!(&meta.payload, &payload);
    }

    #[test]
    fn stream_roundtrip_back_to_back(reqs in proptest::collection::vec(arb_request(), 1..5)) {
        // Several frames written to one buffer read back in order — the
        // framing keeps its own boundaries on a contiguous stream.
        let mut buf = Vec::new();
        for req in &reqs {
            wire::write_request(&mut buf, req).expect("write to vec");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for req in &reqs {
            let (kind, payload) = wire::read_frame(&mut cursor).expect("read frame");
            prop_assert_eq!(kind, wire::FrameKind::Request);
            prop_assert_eq!(req, &wire::decode_request(&payload).expect("decode"));
        }
    }
}
