//! Property tests for the simulation substrate: generated corpora are
//! structurally sound for any configuration, simulation output respects
//! its own ground truth, and crawls never escape the web.

use proptest::prelude::*;

use memex_web::corpus::{Corpus, CorpusConfig};
use memex_web::crawler::unfocused_crawl;
use memex_web::surfer::{Community, SurferConfig};
use memex_web::zipf::Zipf;

fn config_strategy() -> impl Strategy<Value = CorpusConfig> {
    (
        2usize..6,    // topics
        4usize..20,   // pages per topic
        0.0f64..0.9,  // front fraction
        0.0f64..1.0,  // link locality
        any::<u64>(), // seed
    )
        .prop_map(|(topics, pages, front, locality, seed)| CorpusConfig {
            num_topics: topics,
            pages_per_topic: pages,
            front_fraction: front,
            link_locality: locality,
            interior_tokens: (5, 20),
            front_tokens: (2, 6),
            seed,
            ..CorpusConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any configuration yields a structurally sound corpus.
    #[test]
    fn corpus_structurally_sound(config in config_strategy()) {
        let c = Corpus::generate(config.clone());
        prop_assert_eq!(c.num_pages(), config.num_topics * config.pages_per_topic);
        prop_assert_eq!(c.topic_names.len(), config.num_topics);
        prop_assert_eq!(c.topic_nodes.len(), config.num_topics);
        // Page ids are dense and topics in range; URLs unique.
        let mut urls = std::collections::HashSet::new();
        for (i, p) in c.pages.iter().enumerate() {
            prop_assert_eq!(p.id as usize, i);
            prop_assert!(p.topic < config.num_topics);
            prop_assert!(urls.insert(p.url.clone()), "duplicate url {}", p.url);
            prop_assert!(p.bytes > 0);
        }
        // Graph edges stay inside the corpus.
        for p in 0..c.num_pages() as u32 {
            for &t in c.graph.out_links(p) {
                prop_assert!((t as usize) < c.num_pages());
                prop_assert_ne!(t, p, "no self-links");
            }
        }
        // Determinism.
        let again = Corpus::generate(config);
        prop_assert_eq!(again.pages.len(), c.pages.len());
        prop_assert_eq!(&again.pages[0].text, &c.pages[0].text);
        prop_assert_eq!(again.graph.num_edges(), c.graph.num_edges());
    }

    /// Simulated communities reference only valid pages/users, sessions
    /// are time-ordered, and referrer edges exist in the web graph.
    #[test]
    fn community_consistent(seed in any::<u64>(), users in 2usize..6) {
        let corpus = Corpus::generate(CorpusConfig {
            num_topics: 3,
            pages_per_topic: 15,
            interior_tokens: (5, 15),
            seed,
            ..CorpusConfig::default()
        });
        let community = Community::simulate(
            &corpus,
            &SurferConfig {
                num_users: users,
                sessions_per_user: 3,
                session_length: (2, 6),
                seed,
                ..SurferConfig::default()
            },
        );
        prop_assert_eq!(community.users.len(), users);
        prop_assert!(community.visits.windows(2).all(|w| w[0].time <= w[1].time));
        for v in &community.visits {
            prop_assert!((v.user as usize) < users);
            prop_assert!((v.page as usize) < corpus.num_pages());
            if let Some(r) = v.referrer {
                prop_assert!(corpus.graph.has_edge(r, v.page), "phantom trail edge");
            }
        }
        for b in &community.bookmarks {
            prop_assert!((b.page as usize) < corpus.num_pages());
            prop_assert!(corpus.topic_names.contains(&b.folder));
        }
        // Per-user session times are non-decreasing within a session.
        for truth in &community.users {
            prop_assert!(!truth.interests.is_empty());
            prop_assert!(truth.interests.iter().all(|&t| t < 3));
        }
    }

    /// Crawls visit only valid pages, never revisit, and respect budgets.
    #[test]
    fn crawl_stays_in_bounds(seed in any::<u64>(), budget in 1usize..40) {
        let corpus = Corpus::generate(CorpusConfig {
            num_topics: 3,
            pages_per_topic: 12,
            interior_tokens: (5, 10),
            seed,
            ..CorpusConfig::default()
        });
        let trace = unfocused_crawl(&corpus, &[0, 5], 1, budget);
        prop_assert!(trace.order.len() <= budget);
        let mut seen = std::collections::HashSet::new();
        for &p in &trace.order {
            prop_assert!((p as usize) < corpus.num_pages());
            prop_assert!(seen.insert(p), "refetched {p}");
        }
        let hr = trace.harvest_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
    }

    /// Zipf samples always fall in support and rank-0 dominates for
    /// non-trivial supports.
    #[test]
    fn zipf_in_support(n in 1usize..200, alpha in 0.2f64..2.0, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
