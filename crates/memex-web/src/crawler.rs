//! Focused crawling (paper ref \[5\], Chakrabarti–van den Berg–Dom): a
//! crawler that stays on topic by prioritising the frontier with a
//! classifier's relevance estimate of the *linking* page, against an
//! unfocused BFS baseline. Experiment T4 reproduces the signature result:
//! the focused crawler's harvest rate stays high while the unfocused one
//! decays towards the topic's base rate.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use memex_learn::nb::NaiveBayes;
use memex_obs::global;
use memex_text::vocab::TermId;

use crate::corpus::Corpus;

/// Record of one crawl: pages in fetch order plus their ground-truth
/// on-topic flags.
#[derive(Debug, Clone)]
pub struct CrawlTrace {
    pub order: Vec<u32>,
    pub on_topic: Vec<bool>,
}

impl CrawlTrace {
    /// Overall harvest rate: on-topic fraction of all fetched pages.
    pub fn harvest_rate(&self) -> f64 {
        if self.order.is_empty() {
            return 0.0;
        }
        self.on_topic.iter().filter(|&&b| b).count() as f64 / self.order.len() as f64
    }

    /// Harvest-rate curve: for each prefix multiple of `step`, the
    /// cumulative on-topic fraction — the series the T4 figure plots.
    pub fn harvest_curve(&self, step: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut on = 0usize;
        for (i, &b) in self.on_topic.iter().enumerate() {
            if b {
                on += 1;
            }
            let n = i + 1;
            if n % step == 0 || n == self.on_topic.len() {
                out.push((n, on as f64 / n as f64));
            }
        }
        out
    }
}

/// Unfocused baseline: plain BFS from the seeds up to `budget` fetches.
pub fn unfocused_crawl(
    corpus: &Corpus,
    seeds: &[u32],
    target_topic: usize,
    budget: usize,
) -> CrawlTrace {
    let mut visited = vec![false; corpus.num_pages()];
    let mut queue = std::collections::VecDeque::new();
    let mut trace = CrawlTrace {
        order: Vec::new(),
        on_topic: Vec::new(),
    };
    for &s in seeds {
        if !visited[s as usize] {
            visited[s as usize] = true;
            queue.push_back(s);
        }
    }
    let fetches = global().counter("web.crawl.fetches");
    let on_topic_hits = global().counter("web.crawl.on_topic");
    let frontier = global().gauge("web.crawl.frontier");
    while let Some(p) = queue.pop_front() {
        if trace.order.len() >= budget {
            break;
        }
        fetches.inc();
        trace.order.push(p);
        let hit = corpus.topic_of(p) == target_topic;
        if hit {
            on_topic_hits.inc();
        }
        trace.on_topic.push(hit);
        for &n in corpus.graph.out_links(p) {
            if !visited[n as usize] {
                visited[n as usize] = true;
                queue.push_back(n);
            }
        }
        frontier.set(queue.len() as i64);
    }
    trace
}

/// Frontier entry ordered by priority (max-heap), FIFO on ties.
struct Entry {
    priority: f64,
    seq: u64,
    page: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Focused crawl: the frontier is prioritised by the relevance (classifier
/// posterior for `target_topic`) of the best *linking* page seen so far —
/// the paper's "soft focus" rule. `tf` supplies the term vectors the
/// classifier scores (the fetch step "downloads" the page text).
pub fn focused_crawl(
    corpus: &Corpus,
    tf: &[Vec<(TermId, u32)>],
    classifier: &NaiveBayes,
    target_topic: usize,
    seeds: &[u32],
    budget: usize,
) -> CrawlTrace {
    let n = corpus.num_pages();
    let mut best_priority = vec![f64::NEG_INFINITY; n];
    let mut fetched = vec![false; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    for &s in seeds {
        best_priority[s as usize] = 1.0;
        heap.push(Entry {
            priority: 1.0,
            seq,
            page: s,
        });
        seq += 1;
    }
    let mut trace = CrawlTrace {
        order: Vec::new(),
        on_topic: Vec::new(),
    };
    let fetches = global().counter("web.crawl.fetches");
    let on_topic_hits = global().counter("web.crawl.on_topic");
    let frontier = global().gauge("web.crawl.frontier");
    while let Some(Entry { page, .. }) = heap.pop() {
        if fetched[page as usize] {
            continue;
        }
        if trace.order.len() >= budget {
            break;
        }
        fetched[page as usize] = true;
        fetches.inc();
        trace.order.push(page);
        let hit = corpus.topic_of(page) == target_topic;
        if hit {
            on_topic_hits.inc();
        }
        trace.on_topic.push(hit);
        // Fetch -> classify -> propagate relevance to out-links.
        let relevance = classifier.posteriors(&tf[page as usize])[target_topic];
        for &link in corpus.graph.out_links(page) {
            let li = link as usize;
            if !fetched[li] && relevance > best_priority[li] {
                best_priority[li] = relevance;
                heap.push(Entry {
                    priority: relevance,
                    seq,
                    page: link,
                });
                seq += 1;
            }
        }
        frontier.set(heap.len() as i64);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use memex_learn::nb::NbOptions;

    fn setup() -> (Corpus, Vec<Vec<(TermId, u32)>>, NaiveBayes) {
        // The regime where focus matters: a web much larger than the crawl
        // budget, a topic that is plentiful but not exhaustible within the
        // budget, and enough cross-topic edges for BFS to drift. Many topics
        // matter more than locality here: once BFS drifts off-topic, the
        // chance a link leads *back* is (1-locality)/(topics-1), so a wide
        // topic space keeps the unfocused tail near the base rate.
        let corpus = Corpus::generate(CorpusConfig {
            num_topics: 10,
            pages_per_topic: 600,
            link_locality: 0.7,
            seed: 5,
            ..CorpusConfig::default()
        });
        let analyzed = corpus.analyze();
        // Train a topic classifier on a third of the pages.
        let mut nb = NaiveBayes::new(10, NbOptions::default());
        for p in corpus.pages.iter().filter(|p| p.id % 3 == 0) {
            nb.add_document(p.topic, &analyzed.tf[p.id as usize]);
        }
        (corpus, analyzed.tf, nb)
    }

    #[test]
    fn focused_beats_unfocused_harvest() {
        let (corpus, tf, nb) = setup();
        let target = 2usize;
        // One seed: BFS then spends its budget going deep, where per-hop
        // topic mixing compounds; more seeds keep it shallow and on-topic.
        let seeds: Vec<u32> = corpus
            .front_pages_of_topic(target)
            .into_iter()
            .take(1)
            .collect();
        let budget = 500;
        let focused = focused_crawl(&corpus, &tf, &nb, target, &seeds, budget);
        let unfocused = unfocused_crawl(&corpus, &seeds, target, budget);
        assert_eq!(focused.order.len(), budget);
        assert!(
            focused.harvest_rate() > unfocused.harvest_rate() + 0.15,
            "focused {} vs unfocused {}",
            focused.harvest_rate(),
            unfocused.harvest_rate()
        );
        assert!(focused.harvest_rate() > 0.6);
        // The paper-shape claim: the focused crawler *sustains* its harvest
        // while the unfocused one decays towards the base rate.
        let tail = |t: &CrawlTrace| {
            let n = t.on_topic.len();
            let w = n / 3;
            t.on_topic[n - w..].iter().filter(|&&b| b).count() as f64 / w as f64
        };
        assert!(tail(&focused) > 0.5, "focused tail {}", tail(&focused));
        assert!(
            tail(&unfocused) < 0.3,
            "unfocused tail {}",
            tail(&unfocused)
        );
    }

    #[test]
    fn traces_never_refetch() {
        let (corpus, tf, nb) = setup();
        let seeds = vec![0u32, 1];
        let t = focused_crawl(&corpus, &tf, &nb, 0, &seeds, 120);
        let mut sorted = t.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), t.order.len(), "no duplicates in fetch order");
        let u = unfocused_crawl(&corpus, &seeds, 0, 120);
        let mut us = u.order.clone();
        us.sort_unstable();
        us.dedup();
        assert_eq!(us.len(), u.order.len());
    }

    #[test]
    fn harvest_curve_is_cumulative() {
        let trace = CrawlTrace {
            order: vec![1, 2, 3, 4],
            on_topic: vec![true, false, true, true],
        };
        let curve = trace.harvest_curve(2);
        assert_eq!(curve, vec![(2, 0.5), (4, 0.75)]);
        assert_eq!(trace.harvest_rate(), 0.75);
    }

    #[test]
    fn empty_seeds_give_empty_trace() {
        let (corpus, tf, nb) = setup();
        let t = focused_crawl(&corpus, &tf, &nb, 0, &[], 50);
        assert!(t.order.is_empty());
        assert_eq!(t.harvest_rate(), 0.0);
    }

    #[test]
    fn budget_limits_fetches() {
        let (corpus, _, _) = setup();
        let seeds: Vec<u32> = (0..5).collect();
        let t = unfocused_crawl(&corpus, &seeds, 0, 10);
        assert_eq!(t.order.len(), 10);
    }
}
