//! A seeded Zipf(α) sampler over `0..n` via precomputed CDF and binary
//! search — word frequencies in the synthetic corpus follow the same skew
//! real text does, which matters for IDF, feature selection and index
//! compression behaviour.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `alpha`
/// (P(rank k) ∝ 1/(k+1)^alpha).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    pub fn support(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_matches_alpha() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[50]);
        // Rank 0 vs rank 1 should be roughly 2:1 under alpha=1.
        let ratio = f64::from(counts[0]) / f64::from(counts[1].max(1));
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_samples_in_support() {
        let z = Zipf::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
