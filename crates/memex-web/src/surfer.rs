//! Simulated surfers: users with a few focused interests who browse the
//! synthetic web in sessions, occasionally bookmarking pages into topic
//! folders — producing exactly the event stream the Memex client would
//! have tapped from Netscape (visits with referrers, timestamps, privacy
//! flags; deliberate bookmarks with folder names).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use memex_graph::trail::Visit;

use crate::corpus::Corpus;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SurferConfig {
    pub num_users: usize,
    /// Interests (topics) per user.
    pub interests_per_user: usize,
    pub sessions_per_user: usize,
    /// Page visits per session.
    pub session_length: (usize, usize),
    /// Probability of bookmarking a visited page (into the folder named
    /// after the session's intended topic).
    pub bookmark_prob: f64,
    /// Probability a session starts from one of the user's bookmarks.
    pub resume_from_bookmark_prob: f64,
    /// Probability of a random off-trail jump at each step.
    pub jump_prob: f64,
    /// Probability each visit is archived publicly (vs private mode).
    pub public_prob: f64,
    /// Session starts (and on-topic jumps) land on a *random on-topic
    /// page* instead of a front page — models search-engine entry, where
    /// two like-minded surfers rarely hit the same URL. Default false
    /// (front pages are the classic entry points).
    pub start_anywhere_on_topic: bool,
    /// Virtual-clock start (ms).
    pub start_time: u64,
    /// Virtual span covered by all sessions (ms). Six months ≈ 1.55e10 ms.
    pub time_span: u64,
    pub seed: u64,
}

impl Default for SurferConfig {
    fn default() -> Self {
        SurferConfig {
            num_users: 12,
            interests_per_user: 3,
            sessions_per_user: 20,
            session_length: (6, 20),
            bookmark_prob: 0.12,
            resume_from_bookmark_prob: 0.3,
            jump_prob: 0.08,
            public_prob: 0.9,
            start_anywhere_on_topic: false,
            start_time: 1_000,
            time_span: 15_552_000_000, // ~6 months in ms
            seed: 0xCAFE,
        }
    }
}

/// A deliberate bookmark event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bookmark {
    pub user: u32,
    pub page: u32,
    pub time: u64,
    /// Folder path the user filed it under (their own naming).
    pub folder: String,
}

/// Ground truth about one simulated user.
#[derive(Debug, Clone)]
pub struct UserTruth {
    pub user: u32,
    /// Interest topics, strongest first.
    pub interests: Vec<usize>,
}

/// The simulated community: truth + the full event stream.
#[derive(Debug, Clone)]
pub struct Community {
    pub users: Vec<UserTruth>,
    /// Visits in chronological order.
    pub visits: Vec<Visit>,
    pub bookmarks: Vec<Bookmark>,
}

impl Community {
    /// Simulate a community over `corpus`.
    pub fn simulate(corpus: &Corpus, config: &SurferConfig) -> Community {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let num_topics = corpus.config.num_topics;
        assert!(config.interests_per_user <= num_topics);
        // Assign interests: overlapping by construction — user u's primary
        // interest is topic u % num_topics, plus random extras, so several
        // users share each topic (the community structure T5 needs).
        let users: Vec<UserTruth> = (0..config.num_users)
            .map(|u| {
                let mut interests = vec![u % num_topics];
                let mut pool: Vec<usize> =
                    (0..num_topics).filter(|&t| t != u % num_topics).collect();
                pool.shuffle(&mut rng);
                interests.extend(pool.into_iter().take(config.interests_per_user - 1));
                UserTruth {
                    user: u as u32,
                    interests,
                }
            })
            .collect();

        let mut visits = Vec::new();
        let mut bookmarks: Vec<Bookmark> = Vec::new();
        let total_sessions = (config.num_users * config.sessions_per_user).max(1);
        let slot = config.time_span / total_sessions as u64;
        let mut session_counter = 0u32;
        // Interleave sessions across users over the time span.
        for s in 0..config.sessions_per_user {
            for truth in &users {
                let session = session_counter;
                session_counter += 1;
                let mut time =
                    config.start_time + slot * u64::from(session) + rng.gen_range(0..slot.max(1));
                // Intended topic: primary interest is twice as likely.
                let topic = if rng.gen_bool(0.5) {
                    truth.interests[0]
                } else {
                    truth.interests[rng.gen_range(0..truth.interests.len())]
                };
                // Session start: own bookmark on that topic, else a front page.
                let my_marks: Vec<u32> = bookmarks
                    .iter()
                    .filter(|b| b.user == truth.user && corpus.topic_of(b.page) == topic)
                    .map(|b| b.page)
                    .collect();
                let fronts = if config.start_anywhere_on_topic {
                    corpus.pages_of_topic(topic)
                } else {
                    corpus.front_pages_of_topic(topic)
                };
                let mut current: u32 =
                    if !my_marks.is_empty() && rng.gen_bool(config.resume_from_bookmark_prob) {
                        my_marks[rng.gen_range(0..my_marks.len())]
                    } else if !fronts.is_empty() {
                        fronts[rng.gen_range(0..fronts.len())]
                    } else {
                        rng.gen_range(0..corpus.num_pages()) as u32
                    };
                let len = rng.gen_range(config.session_length.0..=config.session_length.1);
                let mut referrer: Option<u32> = None;
                for _ in 0..len {
                    let public = rng.gen_bool(config.public_prob);
                    visits.push(Visit {
                        user: truth.user,
                        session,
                        page: current,
                        time,
                        referrer,
                        public,
                    });
                    if rng.gen_bool(config.bookmark_prob) {
                        bookmarks.push(Bookmark {
                            user: truth.user,
                            page: current,
                            time,
                            folder: corpus.topic_names[topic].clone(),
                        });
                    }
                    // Next step.
                    time += rng.gen_range(5_000u64..120_000); // dwell 5s..2min
                    let outs = corpus.graph.out_links(current);
                    let jump = rng.gen_bool(config.jump_prob) || outs.is_empty();
                    if jump {
                        // Jump back on topic (front page) — models typing a
                        // URL / using a search engine.
                        current = if fronts.is_empty() {
                            rng.gen_range(0..corpus.num_pages()) as u32
                        } else {
                            fronts[rng.gen_range(0..fronts.len())]
                        };
                        referrer = None;
                    } else {
                        // Prefer on-topic out-links (the surfer is focused).
                        let on_topic: Vec<u32> = outs
                            .iter()
                            .copied()
                            .filter(|&t| corpus.topic_of(t) == topic)
                            .collect();
                        let next = if !on_topic.is_empty() && rng.gen_bool(0.8) {
                            on_topic[rng.gen_range(0..on_topic.len())]
                        } else {
                            outs[rng.gen_range(0..outs.len())]
                        };
                        referrer = Some(current);
                        current = next;
                    }
                }
            }
            let _ = s;
        }
        visits.sort_by_key(|v| v.time);
        bookmarks.sort_by_key(|b| b.time);
        Community {
            users,
            visits,
            bookmarks,
        }
    }

    /// Bytes transferred per user per ground-truth topic — the ISP-bill
    /// ground truth for T6.
    pub fn bytes_by_topic(&self, corpus: &Corpus, user: u32) -> Vec<u64> {
        let mut out = vec![0u64; corpus.config.num_topics];
        for v in self.visits.iter().filter(|v| v.user == user) {
            let p = &corpus.pages[v.page as usize];
            out[p.topic] += u64::from(p.bytes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn world() -> (Corpus, Community) {
        let corpus = Corpus::generate(CorpusConfig {
            num_topics: 4,
            pages_per_topic: 40,
            ..CorpusConfig::default()
        });
        let community = Community::simulate(
            &corpus,
            &SurferConfig {
                num_users: 6,
                sessions_per_user: 8,
                ..SurferConfig::default()
            },
        );
        (corpus, community)
    }

    #[test]
    fn stream_is_chronological_and_deterministic() {
        let (_, c1) = world();
        let (_, c2) = world();
        assert!(!c1.visits.is_empty());
        assert!(c1.visits.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(c1.visits.len(), c2.visits.len());
        assert_eq!(c1.visits[10], c2.visits[10]);
        assert_eq!(c1.bookmarks, c2.bookmarks);
    }

    #[test]
    fn sessions_stay_mostly_on_interest() {
        let (corpus, community) = world();
        for truth in &community.users {
            let visits: Vec<_> = community
                .visits
                .iter()
                .filter(|v| v.user == truth.user)
                .collect();
            let on_interest = visits
                .iter()
                .filter(|v| truth.interests.contains(&corpus.topic_of(v.page)))
                .count();
            let frac = on_interest as f64 / visits.len() as f64;
            assert!(frac > 0.6, "user {} only {frac} on-interest", truth.user);
        }
    }

    #[test]
    fn bookmarks_are_folderised_by_topic_name() {
        let (corpus, community) = world();
        assert!(!community.bookmarks.is_empty());
        for b in &community.bookmarks {
            assert!(corpus.topic_names.contains(&b.folder));
        }
    }

    #[test]
    fn referrers_form_trails() {
        let (corpus, community) = world();
        let with_ref = community
            .visits
            .iter()
            .filter(|v| v.referrer.is_some())
            .count();
        assert!(
            with_ref * 2 > community.visits.len(),
            "most visits follow links"
        );
        // Every referrer edge exists in the web graph.
        for v in community
            .visits
            .iter()
            .filter(|v| v.referrer.is_some())
            .take(200)
        {
            let r = v.referrer.unwrap();
            assert!(
                corpus.graph.has_edge(r, v.page),
                "trail edge {}->{} missing",
                r,
                v.page
            );
        }
    }

    #[test]
    fn privacy_flag_mixes() {
        let (_, community) = world();
        let public = community.visits.iter().filter(|v| v.public).count();
        assert!(public > community.visits.len() / 2);
        assert!(
            public < community.visits.len(),
            "some private visits expected"
        );
    }

    #[test]
    fn bytes_by_topic_concentrates_on_interests() {
        let (corpus, community) = world();
        let truth = &community.users[0];
        let bill = community.bytes_by_topic(&corpus, 0);
        let total: u64 = bill.iter().sum();
        let on_interests: u64 = truth.interests.iter().map(|&t| bill[t]).sum();
        assert!(total > 0);
        assert!(on_interests as f64 / total as f64 > 0.5);
    }

    #[test]
    fn time_span_is_covered() {
        let (_, community) = world();
        let first = community.visits.first().unwrap().time;
        let last = community.visits.last().unwrap().time;
        assert!(last - first > SurferConfig::default().time_span / 2);
    }
}
