//! # memex-web — the simulated Web and its surfers
//!
//! The original Memex was demonstrated on the live 2000 Web with volunteer
//! surfers at IIT Bombay. Neither is available, so this crate provides the
//! statistical stand-ins (DESIGN.md §2 documents the substitution):
//!
//! * [`corpus`] — a synthetic topical web: topic-conditional Zipfian
//!   language models, preferential within-topic linking, and link-rich,
//!   text-poor **front pages** (the paper: "people tend to bookmark many
//!   'front pages' with less text and more graphics compared to typical
//!   Web documents");
//! * [`surfer`] — simulated users with focused interests producing
//!   timestamped visit/bookmark event streams over months of virtual time;
//! * [`crawler`] — the focused crawler of paper ref \[5\] and its unfocused
//!   BFS baseline, compared by harvest rate in experiment T4;
//! * [`zipf`] — the seeded Zipf sampler both generators share.

pub mod corpus;
pub mod crawler;
pub mod surfer;
pub mod zipf;

pub use corpus::{AnalyzedCorpus, Corpus, CorpusConfig, Page};
pub use crawler::{focused_crawl, unfocused_crawl, CrawlTrace};
pub use surfer::{Bookmark, Community, SurferConfig};
