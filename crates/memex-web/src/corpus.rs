//! The synthetic topical web.
//!
//! Pages come in two kinds mirroring the paper's observation about
//! bookmarks: **interior** pages with substantial topical text, and
//! **front** pages with little text (mostly generic words) but many links.
//! Hyperlinks are topic-local with probability `link_locality`, which is
//! the property the enhanced classifier (T1) and the focused crawler (T4)
//! exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use memex_graph::graph::WebGraph;
use memex_learn::taxonomy::{Taxonomy, TopicId};
use memex_text::analyze::Analyzer;
use memex_text::vector::SparseVec;
use memex_text::vocab::{TermId, Vocabulary};

use crate::zipf::Zipf;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of leaf topics.
    pub num_topics: usize,
    /// Pages generated per topic.
    pub pages_per_topic: usize,
    /// Fraction of each topic's pages that are front pages.
    pub front_fraction: f64,
    /// Distinct-token count range for interior pages.
    pub interior_tokens: (usize, usize),
    /// Distinct-token count range for front pages (short!).
    pub front_tokens: (usize, usize),
    /// Topic-specific vocabulary size per topic.
    pub vocab_per_topic: usize,
    /// Shared (topic-neutral) vocabulary size.
    pub shared_vocab: usize,
    /// Probability an interior token comes from the topic vocabulary.
    pub interior_topic_bias: f64,
    /// Probability a front-page token comes from the topic vocabulary
    /// (low: front pages are navigational chrome).
    pub front_topic_bias: f64,
    /// Out-link count range for interior pages.
    pub interior_links: (usize, usize),
    /// Out-link count range for front pages (high: they are hubs).
    pub front_links: (usize, usize),
    /// Probability a link stays within the page's topic.
    pub link_locality: f64,
    /// Zipf exponent of the word distributions.
    pub zipf_alpha: f64,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_topics: 8,
            pages_per_topic: 60,
            front_fraction: 0.3,
            interior_tokens: (60, 160),
            front_tokens: (4, 12),
            vocab_per_topic: 150,
            shared_vocab: 400,
            interior_topic_bias: 0.6,
            front_topic_bias: 0.15,
            interior_links: (2, 6),
            front_links: (8, 18),
            link_locality: 0.85,
            zipf_alpha: 1.05,
            seed: 0x1999,
        }
    }
}

/// A generated page.
#[derive(Debug, Clone)]
pub struct Page {
    pub id: u32,
    pub url: String,
    /// Ground-truth topic (leaf index, 0-based).
    pub topic: usize,
    pub is_front: bool,
    pub title: String,
    /// Generated body text (plain words; run through the real analyzer).
    pub text: String,
    /// Simulated transfer size in bytes (front pages carry graphics).
    pub bytes: u32,
}

/// Human-ish topic names cycled for readability in demos and tests.
const TOPIC_NAMES: &[&str] = &[
    "classical music",
    "recreational cycling",
    "compiler research",
    "travel asia",
    "stock markets",
    "gardening orchids",
    "cricket news",
    "linux kernels",
    "astronomy imaging",
    "vegetarian cooking",
    "chess openings",
    "folk dance",
];

/// The generated web.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub config: CorpusConfig,
    pub pages: Vec<Page>,
    pub graph: WebGraph,
    /// Leaf topic names (index = ground-truth topic).
    pub topic_names: Vec<String>,
    /// A reference taxonomy: root -> one node per topic.
    pub taxonomy: Taxonomy,
    /// Taxonomy node per topic index.
    pub topic_nodes: Vec<TopicId>,
}

impl Corpus {
    /// Generate a corpus from `config` (fully deterministic per seed).
    pub fn generate(config: CorpusConfig) -> Corpus {
        assert!(config.num_topics >= 2, "need at least two topics");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let topic_names: Vec<String> = (0..config.num_topics)
            .map(|t| {
                let base = TOPIC_NAMES[t % TOPIC_NAMES.len()];
                if t < TOPIC_NAMES.len() {
                    base.to_string()
                } else {
                    format!("{base} {}", t / TOPIC_NAMES.len() + 1)
                }
            })
            .collect();
        let mut taxonomy = Taxonomy::new();
        let topic_nodes: Vec<TopicId> = topic_names
            .iter()
            .map(|n| taxonomy.add_child(Taxonomy::ROOT, n))
            .collect();

        // Vocabulary pools. Topic pools open with the topic's name words so
        // examples read naturally; the rest are synthetic stems.
        let topic_pools: Vec<Vec<String>> = (0..config.num_topics)
            .map(|t| {
                let mut pool: Vec<String> = topic_names[t]
                    .split_whitespace()
                    .map(str::to_string)
                    .collect();
                for i in pool.len()..config.vocab_per_topic {
                    pool.push(format!("{}term{}", topic_slug(&topic_names[t]), i));
                }
                pool
            })
            .collect();
        let shared_pool: Vec<String> = (0..config.shared_vocab)
            .map(|i| format!("common{i}"))
            .collect();
        let topic_zipf = Zipf::new(config.vocab_per_topic, config.zipf_alpha);
        let shared_zipf = Zipf::new(config.shared_vocab, config.zipf_alpha);

        // Pages.
        let total = config.num_topics * config.pages_per_topic;
        let mut pages = Vec::with_capacity(total);
        for topic in 0..config.num_topics {
            let fronts = ((config.pages_per_topic as f64) * config.front_fraction).round() as usize;
            for j in 0..config.pages_per_topic {
                let id = pages.len() as u32;
                let is_front = j < fronts;
                let (lo, hi) = if is_front {
                    config.front_tokens
                } else {
                    config.interior_tokens
                };
                let ntok = rng.gen_range(lo..=hi.max(lo));
                let bias = if is_front {
                    config.front_topic_bias
                } else {
                    config.interior_topic_bias
                };
                let mut words = Vec::with_capacity(ntok);
                for _ in 0..ntok {
                    if rng.gen_bool(bias) {
                        words.push(topic_pools[topic][topic_zipf.sample(&mut rng)].clone());
                    } else {
                        words.push(shared_pool[shared_zipf.sample(&mut rng)].clone());
                    }
                }
                let title = if is_front {
                    // Front pages are navigational chrome: their title names
                    // nothing topical (matching the paper's observation that
                    // bookmarked front pages carry little text signal).
                    "welcome portal links".to_string()
                } else {
                    words.iter().take(3).cloned().collect::<Vec<_>>().join(" ")
                };
                let text = words.join(" ");
                let bytes = (text.len() as u32)
                    + if is_front {
                        rng.gen_range(20_000u32..80_000)
                    } else {
                        rng.gen_range(1_000u32..8_000)
                    };
                pages.push(Page {
                    id,
                    url: format!(
                        "http://{}{}.example/{}{}",
                        topic_slug(&topic_names[topic]),
                        topic,
                        if is_front { "index" } else { "page" },
                        j
                    ),
                    topic,
                    is_front,
                    title,
                    text,
                    bytes,
                });
            }
        }

        // Links.
        let mut graph = WebGraph::with_nodes(total);
        let per = config.pages_per_topic;
        for (p, page) in pages.iter().enumerate() {
            let (lo, hi) = if page.is_front {
                config.front_links
            } else {
                config.interior_links
            };
            let nlinks = rng.gen_range(lo..=hi.max(lo));
            for _ in 0..nlinks {
                let target = if rng.gen_bool(config.link_locality) {
                    // Same-topic target; interior pages prefer their front
                    // pages (hubs) half the time.
                    let fronts = ((per as f64) * config.front_fraction).round() as usize;
                    let base = page.topic * per;
                    if !page.is_front && fronts > 0 && rng.gen_bool(0.5) {
                        base + rng.gen_range(0..fronts)
                    } else {
                        base + rng.gen_range(0..per)
                    }
                } else {
                    rng.gen_range(0..total)
                };
                if target != p {
                    graph.add_edge(p as u32, target as u32);
                }
            }
        }

        Corpus {
            config,
            pages,
            graph,
            topic_names,
            taxonomy,
            topic_nodes,
        }
    }

    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Ground-truth topic of a page id.
    pub fn topic_of(&self, page: u32) -> usize {
        self.pages[page as usize].topic
    }

    /// Page ids of one topic.
    pub fn pages_of_topic(&self, topic: usize) -> Vec<u32> {
        self.pages
            .iter()
            .filter(|p| p.topic == topic)
            .map(|p| p.id)
            .collect()
    }

    /// Front-page ids of one topic (session seeds, bookmark magnets).
    pub fn front_pages_of_topic(&self, topic: usize) -> Vec<u32> {
        self.pages
            .iter()
            .filter(|p| p.topic == topic && p.is_front)
            .map(|p| p.id)
            .collect()
    }

    /// Run every page through the real text pipeline.
    pub fn analyze(&self) -> AnalyzedCorpus {
        let analyzer = Analyzer::default();
        let mut vocab = Vocabulary::new();
        let tf: Vec<Vec<(TermId, u32)>> = self
            .pages
            .iter()
            .map(|p| {
                let full = format!("{} {}", p.title, p.text);
                analyzer.index_document(&mut vocab, &full)
            })
            .collect();
        let tfidf: Vec<SparseVec> = tf
            .iter()
            .map(|pairs| analyzer.tfidf(&vocab, pairs))
            .collect();
        AnalyzedCorpus { vocab, tf, tfidf }
    }
}

/// Per-page term statistics from the real analyzer pipeline.
#[derive(Debug, Clone)]
pub struct AnalyzedCorpus {
    pub vocab: Vocabulary,
    /// Raw term-frequency pairs per page.
    pub tf: Vec<Vec<(TermId, u32)>>,
    /// Unit TF-IDF vector per page.
    pub tfidf: Vec<SparseVec>,
}

fn topic_slug(name: &str) -> String {
    name.split_whitespace()
        .next()
        .unwrap_or("topic")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            num_topics: 4,
            pages_per_topic: 30,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.pages.len(), b.pages.len());
        assert_eq!(a.pages[17].text, b.pages[17].text);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let mut cfg = CorpusConfig {
            num_topics: 4,
            pages_per_topic: 30,
            ..CorpusConfig::default()
        };
        cfg.seed = 7;
        let c = Corpus::generate(cfg);
        assert_ne!(a.pages[17].text, c.pages[17].text);
    }

    #[test]
    fn front_pages_are_short_and_linky() {
        let c = small();
        let mut front_tokens = 0usize;
        let mut front_links = 0usize;
        let mut front_count = 0usize;
        let mut interior_tokens = 0usize;
        let mut interior_links = 0usize;
        let mut interior_count = 0usize;
        for p in &c.pages {
            let ntok = p.text.split_whitespace().count();
            let nlink = c.graph.out_degree(p.id);
            if p.is_front {
                front_tokens += ntok;
                front_links += nlink;
                front_count += 1;
            } else {
                interior_tokens += ntok;
                interior_links += nlink;
                interior_count += 1;
            }
        }
        assert!(front_count > 0 && interior_count > 0);
        assert!(
            front_tokens / front_count < interior_tokens / interior_count / 4,
            "front pages must be much shorter"
        );
        assert!(front_links / front_count > interior_links / interior_count);
    }

    #[test]
    fn links_are_topic_local() {
        let c = small();
        let mut local = 0u64;
        let mut total = 0u64;
        for p in &c.pages {
            for &t in c.graph.out_links(p.id) {
                total += 1;
                if c.topic_of(t) == p.topic {
                    local += 1;
                }
            }
        }
        let frac = local as f64 / total as f64;
        assert!(frac > 0.7, "locality {frac} too low");
    }

    #[test]
    fn analyzer_vectors_separate_topics() {
        let c = small();
        let a = c.analyze();
        // Mean within-topic interior-page cosine should beat cross-topic.
        let interior: Vec<&Page> = c.pages.iter().filter(|p| !p.is_front).collect();
        let mut within = (0.0f64, 0u32);
        let mut across = (0.0f64, 0u32);
        for (i, p) in interior.iter().enumerate().step_by(3) {
            for q in interior.iter().skip(i + 1).step_by(7) {
                let cos = f64::from(a.tfidf[p.id as usize].cosine(&a.tfidf[q.id as usize]));
                if p.topic == q.topic {
                    within.0 += cos;
                    within.1 += 1;
                } else {
                    across.0 += cos;
                    across.1 += 1;
                }
            }
        }
        let within_mean = within.0 / f64::from(within.1.max(1));
        let across_mean = across.0 / f64::from(across.1.max(1));
        assert!(
            within_mean > across_mean + 0.1,
            "within {within_mean} vs across {across_mean}"
        );
    }

    #[test]
    fn taxonomy_mirrors_topics() {
        let c = small();
        assert_eq!(c.topic_nodes.len(), 4);
        for (t, &node) in c.topic_nodes.iter().enumerate() {
            assert_eq!(c.taxonomy.name(node), c.topic_names[t]);
        }
        assert_eq!(c.taxonomy.leaves().len(), 4);
    }

    #[test]
    fn helper_queries() {
        let c = small();
        let t0 = c.pages_of_topic(0);
        assert_eq!(t0.len(), 30);
        let fronts = c.front_pages_of_topic(0);
        assert!(!fronts.is_empty() && fronts.len() < 30);
        assert!(fronts.iter().all(|&p| c.pages[p as usize].is_front));
    }
}
