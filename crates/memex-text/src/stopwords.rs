//! English stopword list — the classic van Rijsbergen-style function-word
//! set trimmed to terms that actually occur in web text. Stopword removal
//! happens *before* stemming in the [`Analyzer`](crate::analyze::Analyzer)
//! pipeline.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The raw list (lower-case, unstemmed).
pub const STOPWORDS: &[&str] = &[
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
    // Web chrome that behaves like a stopword in browsing corpora.
    "http",
    "https",
    "www",
    "com",
    "html",
    "htm",
    "home",
    "page",
    "click",
    "link",
    "site",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Is `word` (already lower-cased) a stopword?
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_words_are_stopwords() {
        for w in ["the", "and", "was", "with", "http", "www"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["music", "compiler", "cycling", "bach", "crawler"] {
            assert!(!is_stopword(w), "{w} must survive");
        }
    }

    #[test]
    fn list_is_all_lowercase_and_unique() {
        let mut seen = HashSet::new();
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
            assert!(seen.insert(*w), "duplicate stopword {w}");
        }
    }
}
