//! Sparse term vectors (sorted id/weight pairs) and the algebra the
//! clustering and classification layers need: dot products, cosine
//! similarity, accumulation, normalisation, centroids.

use crate::vocab::TermId;

/// A sparse vector over term ids, kept sorted by id with no duplicates and
/// no explicit zeros.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(TermId, f32)>,
}

impl SparseVec {
    pub fn new() -> SparseVec {
        SparseVec::default()
    }

    /// Build from possibly-unsorted, possibly-duplicated pairs: duplicates
    /// are summed, zeros dropped.
    pub fn from_pairs(mut pairs: Vec<(TermId, f32)>) -> SparseVec {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(TermId, f32)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => entries.push((id, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        SparseVec { entries }
    }

    /// Sorted `(id, weight)` view.
    pub fn entries(&self) -> &[(TermId, f32)] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of `id` (0.0 when absent).
    pub fn get(&self, id: TermId) -> f32 {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Dot product (linear in the shorter operand via merge).
    pub fn dot(&self, other: &SparseVec) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.entries.len() && j < other.entries.len() {
            let (a, wa) = self.entries[i];
            let (b, wb) = other.entries[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt()
    }

    /// Cosine similarity in `[-1, 1]`; 0 when either vector is empty.
    pub fn cosine(&self, other: &SparseVec) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Scale in place.
    pub fn scale(&mut self, s: f32) {
        for (_, w) in &mut self.entries {
            *w *= s;
        }
        if s == 0.0 {
            self.entries.clear();
        }
    }

    /// Normalise to unit length (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// `self += other` (merge).
    pub fn add_assign(&mut self, other: &SparseVec) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(a, wa)), Some(&(b, wb))) => match a.cmp(&b) {
                    std::cmp::Ordering::Less => {
                        merged.push((a, wa));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((b, wb));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        let w = wa + wb;
                        if w != 0.0 {
                            merged.push((a, w));
                        }
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(a, wa)), None) => {
                    merged.push((a, wa));
                    i += 1;
                }
                (None, Some(&(b, wb))) => {
                    merged.push((b, wb));
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.entries = merged;
    }

    /// Mean of `vectors` (empty input gives the zero vector).
    pub fn centroid<'a>(vectors: impl IntoIterator<Item = &'a SparseVec>) -> SparseVec {
        let mut acc = SparseVec::new();
        let mut n = 0usize;
        for v in vectors {
            acc.add_assign(v);
            n += 1;
        }
        if n > 0 {
            acc.scale(1.0 / n as f32);
        }
        acc
    }

    /// Keep only the `k` highest-magnitude entries (centroid truncation,
    /// standard in Scatter/Gather for constant-time behaviour).
    pub fn truncate_top(&mut self, k: usize) {
        if self.entries.len() <= k {
            return;
        }
        self.entries.sort_unstable_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .expect("weights are finite")
        });
        self.entries.truncate(k);
        self.entries.sort_unstable_by_key(|&(id, _)| id);
    }
}

impl FromIterator<(TermId, f32)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (TermId, f32)>>(iter: T) -> Self {
        SparseVec::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_dedups_and_drops_zeros() {
        let s = v(&[(5, 1.0), (2, 2.0), (5, 3.0), (7, 0.0)]);
        assert_eq!(s.entries(), &[(2, 2.0), (5, 4.0)]);
    }

    #[test]
    fn dot_and_cosine() {
        let a = v(&[(1, 1.0), (2, 2.0), (4, 3.0)]);
        let b = v(&[(2, 1.0), (3, 5.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 + 3.0);
        let unit_self = v(&[(9, 2.0)]);
        assert!((unit_self.cosine(&unit_self) - 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&SparseVec::new()), 0.0);
        let orth = v(&[(100, 1.0)]);
        assert_eq!(a.cosine(&orth), 0.0);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut a = v(&[(1, 3.0), (2, 4.0)]);
        a.normalize();
        assert!((a.norm() - 1.0).abs() < 1e-6);
        let mut zero = SparseVec::new();
        zero.normalize();
        assert!(zero.is_empty());
    }

    #[test]
    fn add_assign_merges() {
        let mut a = v(&[(1, 1.0), (3, 1.0)]);
        a.add_assign(&v(&[(2, 2.0), (3, -1.0)]));
        assert_eq!(a.entries(), &[(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn centroid_of_unit_vectors() {
        let a = v(&[(1, 1.0)]);
        let b = v(&[(2, 1.0)]);
        let c = SparseVec::centroid([&a, &b]);
        assert_eq!(c.entries(), &[(1, 0.5), (2, 0.5)]);
        assert!(SparseVec::centroid(std::iter::empty()).is_empty());
    }

    #[test]
    fn truncate_keeps_heaviest() {
        let mut a = v(&[(1, 0.1), (2, 5.0), (3, -4.0), (4, 0.2)]);
        a.truncate_top(2);
        assert_eq!(a.entries(), &[(2, 5.0), (3, -4.0)]);
    }

    #[test]
    fn get_binary_search() {
        let a = v(&[(10, 1.5), (20, 2.5)]);
        assert_eq!(a.get(10), 1.5);
        assert_eq!(a.get(15), 0.0);
    }
}
