//! Vocabulary interning: string terms become dense `u32` ids, and the
//! vocabulary tracks document frequencies so TF-IDF weights and feature
//! selection can be computed without re-touching text.

use std::collections::HashMap;

/// Dense term identifier.
pub type TermId = u32;

/// Interning vocabulary with document-frequency accounting.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    term_to_id: HashMap<String, TermId>,
    id_to_term: Vec<String>,
    /// Documents containing the term at least once.
    doc_freq: Vec<u32>,
    /// Total documents observed through [`Vocabulary::observe_doc`].
    num_docs: u64,
}

impl Vocabulary {
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let id = self.id_to_term.len() as TermId;
        self.term_to_id.insert(term.to_string(), id);
        self.id_to_term.push(term.to_string());
        self.doc_freq.push(0);
        id
    }

    /// Id of `term` if already interned.
    pub fn id(&self, term: &str) -> Option<TermId> {
        self.term_to_id.get(term).copied()
    }

    /// Term string for `id`.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.id_to_term.get(id as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.id_to_term.len()
    }

    pub fn is_empty(&self) -> bool {
        self.id_to_term.is_empty()
    }

    /// Record one document's distinct term set for df statistics.
    pub fn observe_doc(&mut self, distinct_terms: impl IntoIterator<Item = TermId>) {
        self.num_docs += 1;
        for id in distinct_terms {
            if let Some(df) = self.doc_freq.get_mut(id as usize) {
                *df += 1;
            }
        }
    }

    /// Document frequency of a term.
    pub fn df(&self, id: TermId) -> u32 {
        self.doc_freq.get(id as usize).copied().unwrap_or(0)
    }

    /// Documents observed so far.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Smoothed inverse document frequency `ln((N + 1) / (df + 1)) + 1`.
    /// Always positive, defined even for unseen terms.
    pub fn idf(&self, id: TermId) -> f32 {
        let n = self.num_docs as f32;
        let df = self.df(id) as f32;
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("music");
        let b = v.intern("music");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        let c = v.intern("cycling");
        assert_ne!(a, c);
        assert_eq!(v.term(a), Some("music"));
        assert_eq!(v.id("cycling"), Some(c));
        assert_eq!(v.id("absent"), None);
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let mut v = Vocabulary::new();
        let m = v.intern("music");
        let c = v.intern("cycling");
        v.observe_doc([m]);
        v.observe_doc([m, c]);
        assert_eq!(v.df(m), 2);
        assert_eq!(v.df(c), 1);
        assert_eq!(v.num_docs(), 2);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let mut v = Vocabulary::new();
        let common = v.intern("web");
        let rare = v.intern("theremin");
        for i in 0..100 {
            if i == 0 {
                v.observe_doc([common, rare]);
            } else {
                v.observe_doc([common]);
            }
        }
        assert!(v.idf(rare) > v.idf(common));
        assert!(v.idf(common) > 0.0);
    }
}
