//! The analysis pipeline: raw page text → tokens → (stop, stem) → term
//! counts → interned TF-IDF vectors.

use std::collections::HashMap;

use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;
use crate::vector::SparseVec;
use crate::vocab::{TermId, Vocabulary};

/// Bag-of-words counts for one document, pre-interning.
pub type TermCounts = HashMap<String, u32>;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AnalyzerOptions {
    /// Apply the Porter stemmer.
    pub stem: bool,
    /// Drop stopwords (before stemming).
    pub remove_stopwords: bool,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions {
            stem: true,
            remove_stopwords: true,
        }
    }
}

/// Stateless text→counts analyzer plus helpers to intern counts into a
/// shared [`Vocabulary`].
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    opts: AnalyzerOptions,
}

impl Analyzer {
    pub fn new(opts: AnalyzerOptions) -> Analyzer {
        Analyzer { opts }
    }

    /// HTML/text → term counts.
    pub fn counts(&self, text: &str) -> TermCounts {
        let mut counts = TermCounts::new();
        for token in tokenize(text) {
            if self.opts.remove_stopwords && is_stopword(&token) {
                continue;
            }
            let term = if self.opts.stem { stem(&token) } else { token };
            *counts.entry(term).or_insert(0) += 1;
        }
        counts
    }

    /// The *ordered* analysed token stream of a document (stopwords
    /// removed, stems applied) — the positional index consumes this so
    /// phrase queries line up with bag-of-words statistics.
    pub fn term_sequence(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .filter(|t| !self.opts.remove_stopwords || !is_stopword(t))
            .map(|t| if self.opts.stem { stem(&t) } else { t })
            .collect()
    }

    /// Intern an ordered token stream into `vocab`, returning term ids in
    /// document order (df statistics are NOT recorded — combine with
    /// [`Analyzer::index_document`] when both are needed).
    pub fn intern_sequence(&self, vocab: &mut Vocabulary, text: &str) -> Vec<TermId> {
        self.term_sequence(text)
            .iter()
            .map(|t| vocab.intern(t))
            .collect()
    }

    /// Intern counts into `vocab` (creating ids as needed) and record the
    /// document for df statistics. Returns raw term-frequency pairs.
    pub fn intern_counts(&self, vocab: &mut Vocabulary, counts: &TermCounts) -> Vec<(TermId, u32)> {
        // Intern in lexicographic term order, not `HashMap` iteration
        // order: id assignment must be a pure function of the documents
        // fed in, so two archives ingesting the same stream (e.g. shard
        // replicas) number their vocabularies identically and stay
        // float-for-float comparable.
        let mut items: Vec<(&str, u32)> = counts.iter().map(|(t, &c)| (t.as_str(), c)).collect();
        items.sort_unstable_by_key(|&(t, _)| t);
        let mut pairs: Vec<(TermId, u32)> = items
            .into_iter()
            .map(|(t, c)| (vocab.intern(t), c))
            .collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        vocab.observe_doc(pairs.iter().map(|&(id, _)| id));
        pairs
    }

    /// One-shot: text → interned tf pairs (df recorded).
    pub fn index_document(&self, vocab: &mut Vocabulary, text: &str) -> Vec<(TermId, u32)> {
        let counts = self.counts(text);
        self.intern_counts(vocab, &counts)
    }

    /// Convert tf pairs into a TF-IDF vector using `vocab`'s current df
    /// statistics: `(1 + ln tf) * idf(t)`, L2-normalised.
    pub fn tfidf(&self, vocab: &Vocabulary, tf_pairs: &[(TermId, u32)]) -> SparseVec {
        let mut v: SparseVec = tf_pairs
            .iter()
            .map(|&(id, tf)| (id, (1.0 + (tf as f32).ln()) * vocab.idf(id)))
            .collect();
        v.normalize();
        v
    }

    /// Full path: text → TF-IDF vector, reusing ids only for terms already
    /// in `vocab` (read-only; unseen terms are dropped). Use for *queries*
    /// against a frozen corpus vocabulary.
    pub fn tfidf_query(&self, vocab: &Vocabulary, text: &str) -> SparseVec {
        let counts = self.counts(text);
        let mut v: SparseVec = counts
            .iter()
            .filter_map(|(t, &c)| {
                vocab
                    .id(t)
                    .map(|id| (id, (1.0 + (c as f32).ln()) * vocab.idf(id)))
            })
            .collect();
        v.normalize();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_stems_and_stops() {
        let a = Analyzer::default();
        let counts = a.counts("The compilers were optimizing the optimization of compilers");
        // "the", "were", "of" are stopwords; compilers/compiler -> compil.
        assert!(counts.keys().all(|k| !is_stopword(k)));
        assert_eq!(counts.get("compil"), Some(&2));
        assert_eq!(counts.get("optim"), Some(&2));
    }

    #[test]
    fn options_can_disable_stages() {
        let a = Analyzer::new(AnalyzerOptions {
            stem: false,
            remove_stopwords: false,
        });
        let counts = a.counts("the compilers");
        assert_eq!(counts.get("the"), Some(&1));
        assert_eq!(counts.get("compilers"), Some(&1));
    }

    #[test]
    fn term_sequence_preserves_order_and_agrees_with_counts() {
        let a = Analyzer::default();
        let seq = a.term_sequence("The compilers were optimizing the loops");
        assert_eq!(seq, vec!["compil", "optim", "loop"]);
        // Sequence histogram equals counts().
        let counts = a.counts("The compilers were optimizing the loops");
        let mut hist = TermCounts::new();
        for t in &seq {
            *hist.entry(t.clone()).or_insert(0) += 1;
        }
        assert_eq!(hist, counts);
        // Interning keeps order.
        let mut vocab = Vocabulary::new();
        let ids = a.intern_sequence(&mut vocab, "bach organ bach");
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn tfidf_vectors_are_unit_and_idf_weighted() {
        let a = Analyzer::default();
        let mut vocab = Vocabulary::new();
        // "web" appears everywhere, "theremin" once.
        let mut pairs_last = Vec::new();
        for i in 0..20 {
            let text = if i == 0 {
                "web theremin"
            } else {
                "web browser"
            };
            pairs_last = a.index_document(&mut vocab, text);
        }
        let rare_doc = a.index_document(&mut vocab, "web theremin");
        let v = a.tfidf(&vocab, &rare_doc);
        assert!((v.norm() - 1.0).abs() < 1e-5);
        let web = vocab.id("web").unwrap();
        let rare = vocab.id("theremin").unwrap();
        assert!(v.get(rare) > v.get(web), "rare term should dominate");
        let _ = pairs_last;
    }

    #[test]
    fn query_vectors_ignore_unknown_terms() {
        let a = Analyzer::default();
        let mut vocab = Vocabulary::new();
        a.index_document(&mut vocab, "classical music bach");
        let q = a.tfidf_query(&vocab, "music zeppelin");
        assert_eq!(q.len(), 1, "only `music` is known");
        let q2 = a.tfidf_query(&vocab, "zeppelin");
        assert!(q2.is_empty());
    }

    #[test]
    fn similar_documents_have_high_cosine() {
        let a = Analyzer::default();
        let mut vocab = Vocabulary::new();
        let d1 = a.index_document(&mut vocab, "bach fugue organ baroque music");
        let d2 = a.index_document(&mut vocab, "baroque organ music by bach");
        let d3 = a.index_document(&mut vocab, "mountain bike trail riding gear");
        let v1 = a.tfidf(&vocab, &d1);
        let v2 = a.tfidf(&vocab, &d2);
        let v3 = a.tfidf(&vocab, &d3);
        assert!(v1.cosine(&v2) > 0.8);
        assert!(v1.cosine(&v3) < 0.1);
    }
}
