//! The Porter stemming algorithm (Porter, 1980) — the standard suffix
//! stripper of 1990s IR systems and the one a 2000-era Memex server would
//! have used for its keyword index and classifiers.
//!
//! This is a faithful implementation of the five-step algorithm operating
//! on ASCII lowercase; non-ASCII tokens are returned unchanged (stemming
//! rules are English-specific).

/// Stem one lower-cased token.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    // The transformations are ASCII-only so the bytes stay valid UTF-8;
    // degrade lossily rather than panic on the serving path if that
    // invariant is ever broken.
    String::from_utf8(w).unwrap_or_else(|e| String::from_utf8_lossy(&e.into_bytes()).into_owned())
}

/// Is `w[i]` a consonant (in the Porter sense)?
fn is_cons(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_cons(w, i - 1),
        _ => true,
    }
}

/// The *measure* m of the stem `w[..len]`: the number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_cons(w, i) {
        i += 1;
    }
    loop {
        // Vowel run.
        while i < len && !is_cons(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Consonant run -> one VC.
        while i < len && is_cons(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// Does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_cons(w, i))
}

/// Does `w[..len]` end with a double consonant?
fn ends_double_cons(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_cons(w, len - 1)
}

/// cvc test at the end of `w[..len]` where the final c is not w, x or y.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_cons(w, len - 3)
        && !is_cons(w, len - 2)
        && is_cons(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends with `suffix` and the remaining stem has measure > `m`,
/// replace the suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, replacement: &str, m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement.as_bytes());
        true
    } else {
        false
    }
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_cons(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" requires the stem to end in s or t.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suffix in SUFFIXES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, "", 1);
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_cons(w, w.len()) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vectors from Porter's original paper and the canonical test set.
    #[test]
    fn canonical_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            // Note: Porter's paper shows "electriciti -> electric" as a
            // *step-3* example; the full algorithm's step 4 then strips the
            // "-ic", so end-to-end output is "electr" (matches the official
            // reference implementation's output vocabulary).
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn topical_words_conflate() {
        // Words that must map to one stem for topic statistics to pool.
        assert_eq!(stem("compiler"), stem("compilers"));
        assert_eq!(stem("optimization"), stem("optimizations"));
        assert_eq!(stem("browsing"), stem("browsed"));
        assert_eq!(stem("classical"), stem("classic"));
    }

    #[test]
    fn short_and_non_ascii_untouched() {
        assert_eq!(stem("go"), "go");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("über"), "über");
        assert_eq!(stem("naïve"), "naïve");
    }

    #[test]
    fn measure_examples() {
        // From the paper: tr=0, ee=0, tree=0, y=0, by=0; trouble=1, oats=1,
        // trees=1, ivy=1; troubles=2, private=2, oaten=2.
        let m = |s: &str| measure(s.as_bytes(), s.len());
        assert_eq!(m("tr"), 0);
        assert_eq!(m("tree"), 0);
        assert_eq!(m("by"), 0);
        assert_eq!(m("trouble"), 1);
        assert_eq!(m("oats"), 1);
        assert_eq!(m("ivy"), 1);
        assert_eq!(m("troubles"), 2);
        assert_eq!(m("private"), 2);
        assert_eq!(m("oaten"), 2);
    }
}
