//! Feature selection for hierarchical text classification, after
//! Chakrabarti et al.'s TAPER system (paper ref \[3\]): terms are scored by
//! how well they *discriminate between sibling classes* and only the top
//! fraction is retained. Three classic scores are provided — the Fisher
//! discriminant used by TAPER, χ², and mutual information — all on binary
//! term presence.

use std::collections::HashMap;

use crate::vocab::TermId;

/// Per-class binary term-presence statistics.
#[derive(Debug, Default, Clone)]
pub struct ClassTermStats {
    /// Documents per class.
    class_docs: Vec<u32>,
    /// term -> per-class document frequency.
    term_class_df: HashMap<TermId, Vec<u32>>,
}

/// Which discriminative score to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureScore {
    /// Between-class vs within-class scatter of presence rates (TAPER).
    Fisher,
    /// Pearson χ² over the term×class contingency table.
    ChiSquare,
    /// Mutual information I(term; class) in nats.
    MutualInfo,
}

impl ClassTermStats {
    pub fn new(num_classes: usize) -> ClassTermStats {
        ClassTermStats {
            class_docs: vec![0; num_classes],
            term_class_df: HashMap::new(),
        }
    }

    pub fn num_classes(&self) -> usize {
        self.class_docs.len()
    }

    /// Record one document of class `class` with the given distinct terms.
    pub fn add_doc(&mut self, class: usize, distinct_terms: impl IntoIterator<Item = TermId>) {
        assert!(class < self.class_docs.len(), "class out of range");
        self.class_docs[class] += 1;
        let k = self.class_docs.len();
        for t in distinct_terms {
            self.term_class_df.entry(t).or_insert_with(|| vec![0; k])[class] += 1;
        }
    }

    /// Total documents.
    pub fn total_docs(&self) -> u32 {
        self.class_docs.iter().sum()
    }

    /// Score a single term.
    pub fn score(&self, term: TermId, how: FeatureScore) -> f64 {
        let Some(dfs) = self.term_class_df.get(&term) else {
            return 0.0;
        };
        match how {
            FeatureScore::Fisher => self.fisher(dfs),
            FeatureScore::ChiSquare => self.chi_square(dfs),
            FeatureScore::MutualInfo => self.mutual_info(dfs),
        }
    }

    /// The `k` best-scoring terms, descending (ties broken by term id for
    /// determinism).
    pub fn select_top_k(&self, how: FeatureScore, k: usize) -> Vec<TermId> {
        let mut scored: Vec<(TermId, f64)> = self
            .term_class_df
            .keys()
            .map(|&t| (t, self.score(t, how)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored.into_iter().map(|(t, _)| t).collect()
    }

    fn fisher(&self, dfs: &[u32]) -> f64 {
        // Presence rate per class.
        let rates: Vec<f64> = dfs
            .iter()
            .zip(&self.class_docs)
            .map(|(&df, &n)| {
                if n == 0 {
                    0.0
                } else {
                    f64::from(df) / f64::from(n)
                }
            })
            .collect();
        let k = rates.len() as f64;
        if k < 2.0 {
            return 0.0;
        }
        let mean = rates.iter().sum::<f64>() / k;
        let between: f64 = rates.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / k;
        // Within-class variance of a Bernoulli(p) presence indicator.
        let within: f64 = rates.iter().map(|p| p * (1.0 - p)).sum::<f64>() / k;
        between / (within + 1e-9)
    }

    fn chi_square(&self, dfs: &[u32]) -> f64 {
        let n = f64::from(self.total_docs());
        if n == 0.0 {
            return 0.0;
        }
        let term_total: f64 = dfs.iter().map(|&d| f64::from(d)).sum();
        let mut chi = 0.0;
        for (c, (&df, &nc)) in dfs.iter().zip(&self.class_docs).enumerate() {
            let _ = c;
            let nc = f64::from(nc);
            // Cells: (present, class c) and (absent, class c).
            for (observed, term_mass) in [
                (f64::from(df), term_total),
                (nc - f64::from(df), n - term_total),
            ] {
                let expected = nc * term_mass / n;
                if expected > 0.0 {
                    chi += (observed - expected).powi(2) / expected;
                }
            }
        }
        chi
    }

    fn mutual_info(&self, dfs: &[u32]) -> f64 {
        let n = f64::from(self.total_docs());
        if n == 0.0 {
            return 0.0;
        }
        let p_term = dfs.iter().map(|&d| f64::from(d)).sum::<f64>() / n;
        let mut mi = 0.0;
        for (&df, &nc) in dfs.iter().zip(&self.class_docs) {
            let p_c = f64::from(nc) / n;
            for (joint, p_t) in [
                (f64::from(df) / n, p_term),
                ((f64::from(nc) - f64::from(df)) / n, 1.0 - p_term),
            ] {
                if joint > 0.0 && p_c > 0.0 && p_t > 0.0 {
                    mi += joint * (joint / (p_c * p_t)).ln();
                }
            }
        }
        mi.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes; term 1 is a perfect discriminator, term 2 is uniform
    /// noise, term 3 is a partial signal.
    fn fixture() -> ClassTermStats {
        let mut s = ClassTermStats::new(2);
        for i in 0..20 {
            if i < 10 {
                // Class 0 docs: always term 1 and 2, never 3.
                s.add_doc(0, [1u32, 2]);
            } else if i < 15 {
                s.add_doc(1, [2u32, 3]);
            } else {
                s.add_doc(1, [2u32]);
            }
        }
        s
    }

    #[test]
    fn all_scores_rank_discriminator_above_noise() {
        let s = fixture();
        for how in [
            FeatureScore::Fisher,
            FeatureScore::ChiSquare,
            FeatureScore::MutualInfo,
        ] {
            let perfect = s.score(1, how);
            let noise = s.score(2, how);
            let partial = s.score(3, how);
            assert!(
                perfect > partial,
                "{how:?}: perfect {perfect} <= partial {partial}"
            );
            assert!(
                partial > noise,
                "{how:?}: partial {partial} <= noise {noise}"
            );
        }
    }

    #[test]
    fn top_k_selection_is_ordered_and_bounded() {
        let s = fixture();
        let top = s.select_top_k(FeatureScore::Fisher, 2);
        assert_eq!(top[0], 1);
        assert_eq!(top.len(), 2);
        let all = s.select_top_k(FeatureScore::Fisher, 100);
        assert_eq!(all.len(), 3, "only as many terms as exist");
    }

    #[test]
    fn unknown_term_scores_zero() {
        let s = fixture();
        assert_eq!(s.score(999, FeatureScore::Fisher), 0.0);
    }

    #[test]
    fn uniform_term_has_near_zero_mi() {
        let s = fixture();
        assert!(s.score(2, FeatureScore::MutualInfo) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn class_bounds_checked() {
        let mut s = ClassTermStats::new(1);
        s.add_doc(1, [0u32]);
    }
}
