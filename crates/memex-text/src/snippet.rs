//! Query-biased snippets: pick the window of a page's text that covers the
//! most (distinct, then total) query terms — what the search tab shows
//! under each hit.

use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// Extract a snippet of at most `window` words from `text` biased toward
/// `query`. Matching is stem-level, so "optimizing" matches a query for
/// "optimization". Returns the original-case words joined by spaces, with
/// an ellipsis on clipped ends. Empty text gives an empty string.
pub fn snippet(text: &str, query: &str, window: usize) -> String {
    let window = window.max(1);
    // Original words (for display) and their match flags (for scoring).
    let display: Vec<&str> = text.split_whitespace().collect();
    if display.is_empty() {
        return String::new();
    }
    let query_stems: std::collections::HashSet<String> = tokenize(query)
        .into_iter()
        .filter(|w| !is_stopword(w))
        .map(|w| stem(&w))
        .collect();
    let stems: Vec<Option<String>> = display
        .iter()
        .map(|w| {
            let toks = tokenize(w);
            toks.first().map(|t| stem(t))
        })
        .collect();
    let is_hit: Vec<bool> = stems
        .iter()
        .map(|s| s.as_ref().is_some_and(|s| query_stems.contains(s)))
        .collect();
    // Slide the window; score = (distinct stems covered, total hits).
    let mut best_start = 0usize;
    let mut best_score = (0usize, 0usize);
    let n = display.len();
    let w = window.min(n);
    for start in 0..=(n - w) {
        let mut distinct = std::collections::HashSet::new();
        let mut total = 0usize;
        for i in start..start + w {
            if is_hit[i] {
                total += 1;
                if let Some(s) = &stems[i] {
                    distinct.insert(s.clone());
                }
            }
        }
        let score = (distinct.len(), total);
        if score > best_score {
            best_score = score;
            best_start = start;
        }
    }
    let mut out = String::new();
    if best_start > 0 {
        out.push_str("… ");
    }
    out.push_str(&display[best_start..best_start + w].join(" "));
    if best_start + w < n {
        out.push_str(" …");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "the quick brown fox jumps over the lazy dog while a \
                        compiler optimizes the inner loops of the interpreter \
                        and the band plays baroque music in the garden";

    #[test]
    fn finds_the_relevant_window() {
        let s = snippet(TEXT, "compiler optimization", 8);
        assert!(s.contains("compiler"), "{s}");
        assert!(s.contains("optimizes"), "stem-level match: {s}");
        assert!(!s.contains("baroque"), "window stays tight: {s}");
    }

    #[test]
    fn ellipses_mark_clipping() {
        let s = snippet(TEXT, "baroque music", 6);
        assert!(s.starts_with("… "), "{s}");
        assert!(s.contains("baroque music"));
        let s2 = snippet(TEXT, "quick brown", 6);
        assert!(!s2.starts_with('…'));
        assert!(s2.ends_with(" …"));
    }

    #[test]
    fn no_match_returns_leading_window() {
        let s = snippet(TEXT, "zeppelin", 5);
        assert!(s.starts_with("the quick brown fox jumps"));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(snippet("", "anything", 10), "");
        assert_eq!(snippet("word", "", 10), "word");
        let s = snippet("one two", "two", 100);
        assert_eq!(s, "one two", "window larger than text");
    }

    #[test]
    fn prefers_windows_covering_more_distinct_terms() {
        let text = "music music music music nothing nothing compiler music interlude";
        let s = snippet(text, "compiler music", 3);
        assert!(s.contains("compiler"), "{s}");
    }
}
