//! HTML-aware tokenisation.
//!
//! Visited pages arrive as HTML-ish text; bookmark imports arrive as
//! Netscape bookmark files (also HTML). The tokenizer therefore strips
//! markup and entities before word-breaking, lower-cases, and keeps
//! alphanumeric word characters only. It never panics on arbitrary input —
//! a property test in `tests/prop.rs` enforces that.

/// Maximum token length kept; longer blobs are almost always noise
/// (base64, session ids) and would bloat term statistics.
pub const MAX_TOKEN_LEN: usize = 24;
/// Minimum token length kept.
pub const MIN_TOKEN_LEN: usize = 2;

/// Strip HTML tags, comments and script/style bodies; decode the handful of
/// entities that matter for term statistics. Unknown entities become spaces.
pub fn strip_html(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let lower = input.to_ascii_lowercase();
    while i < input.len() {
        if bytes[i] == b'<' {
            // Comments.
            if lower[i..].starts_with("<!--") {
                match lower[i..].find("-->") {
                    Some(end) => {
                        i += end + 3;
                        out.push(' ');
                        continue;
                    }
                    None => break,
                }
            }
            // Script/style elements: skip their bodies entirely.
            let mut skipped_element = false;
            for elem in ["script", "style"] {
                if lower[i + 1..].starts_with(elem) {
                    let close = format!("</{elem}");
                    if let Some(end) = lower[i..].find(&close) {
                        let after = i + end;
                        if let Some(gt) = lower[after..].find('>') {
                            i = after + gt + 1;
                        } else {
                            i = input.len();
                        }
                    } else {
                        i = input.len();
                    }
                    out.push(' ');
                    skipped_element = true;
                    break;
                }
            }
            if skipped_element || i >= input.len() {
                continue;
            }
            // Ordinary tag: skip to `>`.
            match input[i..].find('>') {
                Some(end) => {
                    i += end + 1;
                    out.push(' ');
                }
                None => break,
            }
        } else if bytes[i] == b'&' {
            // Entity.
            let rest = &input[i..];
            let decoded = [
                ("&amp;", "&"),
                ("&lt;", "<"),
                ("&gt;", ">"),
                ("&quot;", "\""),
                ("&apos;", "'"),
                ("&nbsp;", " "),
            ]
            .iter()
            .find(|(e, _)| rest.starts_with(e));
            match decoded {
                Some((e, r)) => {
                    out.push_str(r);
                    i += e.len();
                }
                None => {
                    // Unknown entity: consume up to `;` within 8 chars.
                    let semi = rest.char_indices().take(8).find(|&(_, c)| c == ';');
                    match semi {
                        Some((j, _)) => i += j + 1,
                        None => i += 1,
                    }
                    out.push(' ');
                }
            }
        } else {
            // Copy one full character. `i` is always on a char boundary,
            // so `None` means the end of input.
            let Some(ch) = input[i..].chars().next() else {
                break;
            };
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

/// Split plain text into lower-cased word tokens. Tokens are maximal runs
/// of alphanumeric characters; length-filtered; pure digit runs longer than
/// four characters are dropped (ports, timestamps, ids).
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for c in ch.to_lowercase() {
                current.push(c);
            }
        } else if !current.is_empty() {
            push_token(&mut out, std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        push_token(&mut out, current);
    }
    out
}

fn push_token(out: &mut Vec<String>, token: String) {
    let len = token.chars().count();
    if !(MIN_TOKEN_LEN..=MAX_TOKEN_LEN).contains(&len) {
        return;
    }
    if len > 4 && token.chars().all(|c| c.is_ascii_digit()) {
        return;
    }
    out.push(token);
}

/// Full pipeline: strip markup, then word-break.
pub fn tokenize(html_or_text: &str) -> Vec<String> {
    words(&strip_html(html_or_text))
}

/// Extract the `href` targets of anchor tags — bookmark-import and crawl
/// code uses this to recover the link structure of archived HTML.
pub fn extract_hrefs(html: &str) -> Vec<String> {
    let lower = html.to_ascii_lowercase();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = lower[i..].find("href") {
        let mut j = i + pos + 4;
        let bytes = lower.as_bytes();
        while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'=') {
            j += 1;
        }
        if j >= bytes.len() {
            break;
        }
        let quote = bytes[j];
        if quote == b'"' || quote == b'\'' {
            j += 1;
            if let Some(end) = lower[j..].find(quote as char) {
                out.push(html[j..j + end].to_string());
                i = j + end;
                continue;
            }
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_words() {
        assert_eq!(words("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(words("web-based IR"), vec!["web", "based", "ir"]);
    }

    #[test]
    fn length_filters() {
        assert!(words("a I x").is_empty(), "single chars dropped");
        let long = "x".repeat(MAX_TOKEN_LEN + 1);
        assert!(words(&long).is_empty(), "overlong tokens dropped");
        assert_eq!(
            words("12345 1999"),
            vec!["1999"],
            "long digit runs dropped, years kept"
        );
    }

    #[test]
    fn strips_tags_and_entities() {
        let html = "<html><body><h1>Classical&nbsp;Music</h1><p>Bach &amp; Handel</p></body>";
        let toks = tokenize(html);
        assert_eq!(toks, vec!["classical", "music", "bach", "handel"]);
    }

    #[test]
    fn strips_script_and_style_bodies() {
        let html = "<script>var secretterm = 1;</script><style>.x{color:red}</style>visible";
        let toks = tokenize(html);
        assert_eq!(toks, vec!["visible"]);
    }

    #[test]
    fn strips_comments() {
        assert_eq!(tokenize("<!-- hiddenterm -->shown"), vec!["shown"]);
    }

    #[test]
    fn survives_malformed_html() {
        // Unterminated constructs must not panic or loop.
        for bad in [
            "<unclosed",
            "&unterminated",
            "<!-- no end",
            "<script>never closed",
            "a<b",
            "&",
        ] {
            let _ = tokenize(bad);
        }
        assert_eq!(tokenize("trailing <"), vec!["trailing"]);
    }

    #[test]
    fn unicode_is_lowercased_not_mangled() {
        assert_eq!(words("Über Straße"), vec!["über", "straße"]);
    }

    #[test]
    fn href_extraction() {
        let html = r#"<a href="http://a.example/x">A</a> <A HREF='http://b.example'>B</A>"#;
        assert_eq!(
            extract_hrefs(html),
            vec!["http://a.example/x", "http://b.example"]
        );
        assert!(extract_hrefs("no links here").is_empty());
        assert!(extract_hrefs("<a href=").is_empty());
    }
}
