//! # memex-text — text analysis substrate
//!
//! Everything between raw page bytes and term statistics: an HTML-aware
//! [`tokenize`](tokenize::tokenize) pass, the classic Porter stemmer
//! ([`stem`]), a stopword list, an interning [`Vocabulary`](vocab::Vocabulary)
//! with document frequencies, sparse TF-IDF [`SparseVec`](vector::SparseVec)
//! algebra, and the feature-selection statistics (Fisher discriminant, χ²,
//! mutual information) that the paper's TAPER-style classifier (ref \[3\])
//! uses to prune vocabulary before training.

pub mod analyze;
pub mod features;
pub mod snippet;
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod vector;
pub mod vocab;

pub use analyze::{Analyzer, AnalyzerOptions, TermCounts};
pub use vector::SparseVec;
pub use vocab::{TermId, Vocabulary};
