//! Property tests for the text substrate: the tokenizer must never panic on
//! arbitrary input, stemming must be idempotent-ish and shortening, and the
//! sparse-vector algebra must obey the usual laws.

use proptest::prelude::*;

use memex_text::stem::stem;
use memex_text::tokenize::{extract_hrefs, strip_html, tokenize, MAX_TOKEN_LEN, MIN_TOKEN_LEN};
use memex_text::vector::SparseVec;

fn sparse_strategy() -> impl Strategy<Value = SparseVec> {
    proptest::collection::vec((0u32..64, -10.0f32..10.0), 0..24).prop_map(SparseVec::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary (possibly malformed, possibly non-UTF8-ish) text never
    /// panics the HTML stripper or the tokenizer, and all produced tokens
    /// respect the length bounds.
    #[test]
    fn tokenizer_total_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = strip_html(&s);
        let _ = extract_hrefs(&s);
        for tok in tokenize(&s) {
            let n = tok.chars().count();
            prop_assert!((MIN_TOKEN_LEN..=MAX_TOKEN_LEN).contains(&n));
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    /// Adversarial tag soup specifically.
    #[test]
    fn tokenizer_total_on_tag_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("<".to_string()), Just(">".to_string()), Just("&".to_string()),
            Just("<script>".to_string()), Just("</script".to_string()),
            Just("<!--".to_string()), Just("-->".to_string()),
            Just("<style>".to_string()), Just("&amp;".to_string()),
            "[a-z ]{0,8}",
        ], 0..30)) {
        let soup: String = parts.concat();
        let _ = tokenize(&soup);
    }

    /// Stemming never lengthens an ASCII word and is idempotent on its own
    /// output for plural stripping (`stem(stem(w))` may differ for Porter in
    /// general, but must never panic and never grow).
    #[test]
    fn stem_shrinks_and_is_total(w in "[a-z]{1,20}") {
        let s1 = stem(&w);
        prop_assert!(s1.len() <= w.len());
        let s2 = stem(&s1);
        prop_assert!(s2.len() <= s1.len());
    }

    /// Plural forms conflate with their singular for regular nouns.
    #[test]
    fn regular_plurals_conflate(w in "[a-z]{3,10}") {
        prop_assume!(!w.ends_with('s') && !w.ends_with('e') && !w.ends_with('y'));
        let plural = format!("{w}s");
        prop_assert_eq!(stem(&plural), stem(&w));
    }

    /// Cosine is symmetric and bounded.
    #[test]
    fn cosine_symmetric_bounded(a in sparse_strategy(), b in sparse_strategy()) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0..=1.0).contains(&ab));
        if !a.is_empty() {
            prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-4);
        }
    }

    /// Addition is commutative and `get` agrees with it pointwise.
    #[test]
    fn addition_commutes(a in sparse_strategy(), b in sparse_strategy()) {
        let mut ab = a.clone();
        ab.add_assign(&b);
        let mut ba = b.clone();
        ba.add_assign(&a);
        for id in 0u32..64 {
            prop_assert!((ab.get(id) - ba.get(id)).abs() < 1e-4);
            prop_assert!((ab.get(id) - (a.get(id) + b.get(id))).abs() < 1e-4);
        }
        // Entries stay sorted and deduplicated.
        let ids: Vec<u32> = ab.entries().iter().map(|&(i, _)| i).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    /// dot(a, b) respects the Cauchy–Schwarz bound.
    #[test]
    fn cauchy_schwarz(a in sparse_strategy(), b in sparse_strategy()) {
        prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-3);
    }

    /// Snippets never panic, never exceed the window (plus ellipses), and
    /// always consist of words from the source text.
    #[test]
    fn snippet_total_and_bounded(text in "[a-zA-Z ]{0,200}", query in "[a-zA-Z ]{0,40}", window in 1usize..20) {
        let s = memex_text::snippet::snippet(&text, &query, window);
        let content = s.trim_start_matches("… ").trim_end_matches(" …");
        let words: Vec<&str> = content.split_whitespace().collect();
        prop_assert!(words.len() <= window);
        let source: std::collections::HashSet<&str> = text.split_whitespace().collect();
        for w in words {
            prop_assert!(source.contains(w), "snippet word {w:?} not in source");
        }
    }
}
