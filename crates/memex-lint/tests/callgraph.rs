//! Call-graph construction unit suite: method resolution through receiver
//! aliases, qualified and free calls, the unique-name trait-method
//! fallback (and its std-homonym refusal), and `#[cfg(test)]` exclusion.

use memex_lint::callgraph::{CallGraph, FileUnit};
use memex_lint::{lexer, parse};

fn unit(path: &str, crate_name: &str, src: &str) -> FileUnit {
    FileUnit {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        model: parse::model(lexer::lex(src)),
    }
}

/// Qualified names of everything `caller` calls, in token order.
fn callees_of(graph: &CallGraph, caller: &str) -> Vec<String> {
    let ids = graph.resolve_name(caller);
    assert_eq!(ids.len(), 1, "caller {caller} must be unique");
    graph.calls[ids[0]]
        .iter()
        .map(|c| graph.nodes[c.callee].qname())
        .collect()
}

#[test]
fn let_binding_alias_resolves_method_to_impl() {
    let src = r#"
        struct Store { root: u64 }
        impl Store {
            fn new() -> Store { Store { root: 0 } }
            fn seal(&self) {}
        }
        fn run() {
            let s = Store::new();
            s.seal();
        }
    "#;
    let graph = CallGraph::build(&[unit("crates/a/src/lib.rs", "a", src)]);
    assert_eq!(
        callees_of(&graph, "run"),
        vec!["Store::new", "Store::seal"],
        "`let s = Store::new()` must type `s` for the later method call"
    );
}

#[test]
fn typed_param_and_field_aliases_resolve() {
    let src = r#"
        struct Wal { fd: u64 }
        impl Wal {
            fn sync_now(&self) {}
        }
        struct Store { wal: Wal }
        impl Store {
            fn seal(&self) {
                self.wal.sync_now();
            }
        }
        fn flush(w: &Wal) {
            w.sync_now();
        }
    "#;
    let graph = CallGraph::build(&[unit("crates/a/src/lib.rs", "a", src)]);
    assert_eq!(
        callees_of(&graph, "flush"),
        vec!["Wal::sync_now"],
        "typed parameters type the receiver"
    );
    assert_eq!(
        callees_of(&graph, "seal"),
        vec!["Wal::sync_now"],
        "`self.field` resolves through the workspace struct map"
    );
}

#[test]
fn qualified_and_cross_crate_free_calls_resolve() {
    let a = r#"
        pub fn lookup() -> u32 { 1 }
    "#;
    let b = r#"
        struct S;
        impl S {
            fn helper(&self) {}
            fn run(&self) {
                Self::helper(self);
                lookup();
            }
        }
    "#;
    let graph = CallGraph::build(&[
        unit("crates/a/src/lib.rs", "a", a),
        unit("crates/b/src/lib.rs", "b", b),
    ]);
    assert_eq!(
        callees_of(&graph, "run"),
        vec!["S::helper", "lookup"],
        "`Self::` resolves to the impl type; unique free fns resolve across crates"
    );
}

#[test]
fn unique_method_name_falls_back_without_receiver_type() {
    // `conn` is never typed, but exactly one non-test `absorb_frame`
    // exists in the workspace: the trait-method fallback wires it up.
    let src = r#"
        struct Conn;
        impl Conn {
            fn absorb_frame(&self) {}
        }
        fn serve() {
            let conn = make_conn();
            conn.absorb_frame();
        }
    "#;
    let graph = CallGraph::build(&[unit("crates/a/src/lib.rs", "a", src)]);
    assert_eq!(callees_of(&graph, "serve"), vec!["Conn::absorb_frame"]);
}

#[test]
fn std_homonyms_are_refused_by_the_fallback() {
    // A workspace type happens to define `push`; an untyped receiver's
    // `.push()` must NOT be wired to it — that is almost always Vec.
    let src = r#"
        struct Stack;
        impl Stack {
            fn push(&mut self) {}
        }
        fn collect_all(items: u32) {
            let mut v = Vec::new();
            v.push(items);
        }
    "#;
    let graph = CallGraph::build(&[unit("crates/a/src/lib.rs", "a", src)]);
    assert!(
        callees_of(&graph, "collect_all").is_empty(),
        "`push` is a std homonym; the unique-name fallback must refuse it"
    );
}

#[test]
fn cfg_test_functions_are_marked_and_not_fallback_targets() {
    let src = r#"
        fn serve(x: &T) {
            x.special_only_in_tests();
        }

        #[cfg(test)]
        mod tests {
            struct Fake;
            impl Fake {
                fn special_only_in_tests(&self) {}
            }
            #[test]
            fn t() {
                Fake.special_only_in_tests();
            }
        }
    "#;
    let graph = CallGraph::build(&[unit("crates/a/src/lib.rs", "a", src)]);
    assert!(
        callees_of(&graph, "serve").is_empty(),
        "test-only definitions must not capture production call sites"
    );
    for node in &graph.nodes {
        if node.name == "special_only_in_tests" || node.name == "t" {
            assert!(node.in_test, "{} must be marked in_test", node.qname());
        }
    }
}

#[test]
fn resolve_name_skips_test_twins() {
    let src = r#"
        fn target() {}

        #[cfg(test)]
        mod tests {
            fn target() {}
        }
    "#;
    let graph = CallGraph::build(&[unit("crates/a/src/lib.rs", "a", src)]);
    let ids = graph.resolve_name("target");
    assert_eq!(ids.len(), 1);
    assert!(!graph.nodes[ids[0]].in_test);
}
