//! Fixture-driven integration tests: each rule family against inline
//! source snippets, plus an end-to-end scan of a miniature on-disk
//! workspace exercising the walker, the baseline ratchet, and the
//! `--fix-baseline` splice round-trip.

use memex_lint::config::{splice_baseline, Config, Rule};
use memex_lint::rules::locks::{cycle_findings, LockAnalysis};
use memex_lint::rules::{codec, locks, metrics, panic_rule};
use memex_lint::{apply_baseline, counts, lexer, parse, scan};

fn model(src: &str) -> parse::FileModel {
    parse::model(lexer::lex(src))
}

const BASE_CONFIG: &str = r#"
[lint]
panic_crates = ["serving"]
codec_files = ["crates/serving/src/wire.rs"]
codec_functions = ["decode_thing"]
metrics_catalog = "docs/METRICS.md"

[locks]
order = ["lock.outer", "lock.inner"]

[locks.aliases]
"outer" = "lock.outer"
"inner" = "lock.inner"
"a" = "lock.a"
"b" = "lock.b"
"#;

// ---------------------------------------------------------------------------
// Family 1: panic-freedom
// ---------------------------------------------------------------------------

#[test]
fn panic_family_full_fixture() {
    let src = r#"
        /// Doc comment with .unwrap() and panic!("decoy").
        pub fn serve(input: Option<&[u8]>, n: usize) -> u8 {
            let buf = input.unwrap();            // finding 1
            let first = buf[0];                  // finding 2
            if n > buf.len() {
                panic!("out of range");          // finding 3
            }
            let s = "string with .expect() inside";
            let _ = s;
            first
        }

        #[cfg(test)]
        mod tests {
            #[test]
            fn exempt() {
                super::serve(Some(&[1]), 0);
                Option::<u8>::None.unwrap_or(0);
                let v: Vec<u8> = vec![];
                v.first().copied().unwrap();
            }
        }
    "#;
    let found = panic_rule::check(&model(src), "crates/serving/src/main.rs");
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().all(|f| f.function == "serve"));
}

// ---------------------------------------------------------------------------
// Family 2: lock discipline
// ---------------------------------------------------------------------------

#[test]
fn lock_order_violation_fixture() {
    let cfg = Config::parse(BASE_CONFIG).unwrap();
    let src = r#"
        fn backwards(outer: M, inner: M) {
            let gi = inner.lock();
            let go = outer.lock();
        }
    "#;
    let mut analysis = LockAnalysis::default();
    locks::check(&model(src), "crates/serving/src/x.rs", &cfg, &mut analysis);
    assert_eq!(analysis.findings.len(), 1, "{:?}", analysis.findings);
    assert!(analysis.findings[0]
        .message
        .contains("lock order violation"));
}

#[test]
fn lock_cycle_across_files_fixture() {
    // `a` and `b` are aliased but deliberately not ranked; two files nest
    // them in opposite directions — a workspace-wide cycle.
    let cfg = Config::parse(BASE_CONFIG).unwrap();
    let file1 = r#"
        fn forward(a: M, b: M) {
            let ga = a.lock();
            let gb = b.lock();
        }
    "#;
    let file2 = r#"
        fn backward(a: M, b: M) {
            let gb = b.lock();
            let ga = a.lock();
        }
    "#;
    let mut analysis = LockAnalysis::default();
    locks::check(
        &model(file1),
        "crates/serving/src/one.rs",
        &cfg,
        &mut analysis,
    );
    locks::check(
        &model(file2),
        "crates/serving/src/two.rs",
        &cfg,
        &mut analysis,
    );
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.edges.len(), 2);

    let cycles = cycle_findings(&analysis.edges);
    assert_eq!(cycles.len(), 2, "every edge of the cycle is reported");
    assert!(cycles.iter().any(|f| f.file == "crates/serving/src/one.rs"));
    assert!(cycles.iter().any(|f| f.file == "crates/serving/src/two.rs"));

    // Removing one direction dissolves the cycle.
    let one_way = cycle_findings(&analysis.edges[..1]);
    assert!(one_way.is_empty());
}

// ---------------------------------------------------------------------------
// Family 3: metric catalog
// ---------------------------------------------------------------------------

#[test]
fn metric_catalog_fixture() {
    let catalog = r#"
# Catalog

| name | kind | meaning |
|------|------|---------|
| `app.requests` | counter | requests |
| `app.*.latency` | histogram | per-handler latency |
| `app.orphan` | gauge | documented, never emitted |
"#;
    let src = r#"
        fn handle(reg: &Registry, name: &str) {
            reg.counter("app.requests").inc();
            reg.histogram("app.search.latency").observe(3);
            reg.histogram(&format!("app.{name}.latency")).observe(4);
            reg.counter("app.undocumented").inc();
        }
    "#;
    let uses = metrics::collect_uses(&model(src), "crates/serving/src/h.rs");
    assert_eq!(
        uses.len(),
        3,
        "format! names are not literal uses: {uses:?}"
    );
    let entries = metrics::parse_catalog(catalog);
    let findings = metrics::check("docs/METRICS.md", &entries, &uses);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings[0].message.contains("app.undocumented"));
    assert!(findings[0].file.ends_with("h.rs"));
    assert!(findings[1].message.contains("app.orphan"));
    assert_eq!(findings[1].file, "docs/METRICS.md");
}

// ---------------------------------------------------------------------------
// Family 4: codec coverage
// ---------------------------------------------------------------------------

#[test]
fn codec_wildcard_fixture() {
    let cfg = Config::parse(BASE_CONFIG).unwrap();
    let bad = r#"
        fn decode_thing(tag: u8) -> Result<Thing, Error> {
            match tag {
                0 => Ok(Thing::A),
                1 => Ok(Thing::B),
                _ => Err(Error::Unknown),
            }
        }
    "#;
    let found = codec::check(&model(bad), "crates/serving/src/wire.rs", &cfg);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].function, "decode_thing");

    let good = r#"
        fn decode_thing(tag: u8) -> Result<Thing, Error> {
            match tag {
                0 => Ok(Thing::A),
                1 => Ok(Thing::B),
                tag => Err(Error::UnknownTag(tag)),
            }
        }
    "#;
    assert!(codec::check(&model(good), "crates/serving/src/wire.rs", &cfg).is_empty());
}

// ---------------------------------------------------------------------------
// Families 5-8 (interprocedural): each gets an on-disk mini-workspace with
// one seeded violation (exactly one finding) and a clean twin (zero).
// ---------------------------------------------------------------------------

/// Shared base for the interprocedural fixtures: ranked locks + aliases,
/// no other families enabled unless a test's config adds their section.
const INTERPROC_BASE: &str = r#"
[lint]
panic_crates = ["srv"]

[locks]
order = ["lock.outer", "lock.inner"]

[locks.aliases]
"outer" = "lock.outer"
"inner" = "lock.inner"
"#;

fn scan_tree(tree: &TempTree, config: &str) -> Vec<memex_lint::rules::Finding> {
    let cfg = Config::parse(config).unwrap();
    scan(&tree.0, &cfg).unwrap().findings
}

fn only_rule(findings: &[memex_lint::rules::Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn blocking_family_on_disk_fixture() {
    let config = format!("{INTERPROC_BASE}\n[blocking]\nmethods = [\"flush\"]\n");

    let seeded = TempTree::new("blocking-bad");
    seeded.write(
        "crates/srv/src/main.rs",
        r#"
            fn hold_and_flush(outer: M, sink: F) {
                let g = outer.lock();
                sink.flush();
                drop(g);
            }
        "#,
    );
    let findings = scan_tree(&seeded, &config);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(only_rule(&findings, Rule::Blocking), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("flush"),
        "{}",
        findings[0].message
    );

    let clean = TempTree::new("blocking-good");
    clean.write(
        "crates/srv/src/main.rs",
        r#"
            fn scoped_then_flush(outer: M, sink: F) {
                {
                    let g = outer.lock();
                    let _ = &g;
                }
                sink.flush();
            }
        "#,
    );
    let findings = scan_tree(&clean, &config);
    assert!(findings.is_empty(), "flush after release: {findings:?}");
}

#[test]
fn cross_function_lock_family_on_disk_fixture() {
    let seeded = TempTree::new("crosslock-bad");
    seeded.write(
        "crates/srv/src/main.rs",
        r#"
            fn top(inner: M, outer: M) {
                let gi = inner.lock();
                grab_outer(outer);
            }
            fn grab_outer(outer: M) {
                let go = outer.lock();
            }
        "#,
    );
    let findings = scan_tree(&seeded, INTERPROC_BASE);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(only_rule(&findings, Rule::CrossLocks), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("grab_outer"),
        "finding must carry the call chain: {}",
        findings[0].message
    );

    // Same shape, locks taken in the declared order: clean.
    let clean = TempTree::new("crosslock-good");
    clean.write(
        "crates/srv/src/main.rs",
        r#"
            fn top(outer: M, inner: M) {
                let go = outer.lock();
                grab_inner(inner);
            }
            fn grab_inner(inner: M) {
                let gi = inner.lock();
            }
        "#,
    );
    let findings = scan_tree(&clean, INTERPROC_BASE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn durability_family_on_disk_fixture() {
    let config = format!(
        "{INTERPROC_BASE}\n\
         [durability]\n\
         functions = [\"S::seal\"]\n\
         sync_methods = [\"sync\"]\n\
         truncate_methods = [\"set_len\"]\n\
         wal_paths = [\"wal\"]\n"
    );

    let seeded = TempTree::new("durability-bad");
    seeded.write(
        "crates/store/src/wal.rs",
        r#"
            struct S { wal: W }
            impl S {
                fn seal(&self) {
                    self.wal.set_len(0);
                    self.wal.sync();
                }
            }
        "#,
    );
    let findings = scan_tree(&seeded, &config);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(only_rule(&findings, Rule::Durability), 1, "{findings:?}");

    let clean = TempTree::new("durability-good");
    clean.write(
        "crates/store/src/wal.rs",
        r#"
            struct S { wal: W }
            impl S {
                fn seal(&self) {
                    self.wal.sync();
                    self.wal.set_len(0);
                }
            }
        "#,
    );
    let findings = scan_tree(&clean, &config);
    assert!(
        findings.is_empty(),
        "sync-then-truncate is the law: {findings:?}"
    );
}

#[test]
fn panic_reach_family_on_disk_fixture() {
    let config = format!("{INTERPROC_BASE}\n[reachability]\nroots = [\"accept_loop\"]\n");

    let seeded = TempTree::new("reach-bad");
    seeded.write("crates/srv/src/main.rs", "fn accept_loop() { lookup(); }");
    seeded.write(
        "crates/helper/src/lib.rs",
        r#"
            pub fn lookup() -> u32 { maybe().unwrap() }
            fn maybe() -> Option<u32> { Some(1) }
        "#,
    );
    let findings = scan_tree(&seeded, &config);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(only_rule(&findings, Rule::PanicReach), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("accept_loop → lookup"),
        "{}",
        findings[0].message
    );

    // The unwrap moves to a function no root reaches: clean.
    let clean = TempTree::new("reach-good");
    clean.write("crates/srv/src/main.rs", "fn accept_loop() { lookup(); }");
    clean.write(
        "crates/helper/src/lib.rs",
        r#"
            pub fn lookup() -> u32 { maybe().unwrap_or(0) }
            pub fn offline_tool() -> u32 { maybe().unwrap() }
            fn maybe() -> Option<u32> { Some(1) }
        "#,
    );
    let findings = scan_tree(&clean, &config);
    assert!(
        findings.is_empty(),
        "unreached panics are out of scope: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// End-to-end: on-disk mini-workspace + allowlist round-trip
// ---------------------------------------------------------------------------

struct TempTree(std::path::PathBuf);

impl TempTree {
    fn new(tag: &str) -> TempTree {
        let root =
            std::env::temp_dir().join(format!("memex-lint-fixture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        TempTree(root)
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.0.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn scan_and_baseline_round_trip_on_disk() {
    let tree = TempTree::new("e2e");
    tree.write(
        "crates/serving/src/main.rs",
        r#"
            pub fn risky(x: Option<u8>) -> u8 {
                x.unwrap()
            }
        "#,
    );
    tree.write(
        "crates/serving/src/wire.rs",
        r#"
            fn decode_thing(tag: u8) -> Result<u8, u8> {
                match tag {
                    0 => Ok(0),
                    _ => Err(tag),
                }
            }
        "#,
    );
    // Vendored and non-src code must be invisible to the scan.
    tree.write(
        "crates/serving/src/vendor/dep.rs",
        "pub fn v(x: Option<u8>) -> u8 { x.unwrap() }",
    );
    tree.write(
        "crates/serving/tests/it.rs",
        "fn t(x: Option<u8>) -> u8 { x.unwrap() }",
    );
    tree.write(
        "docs/METRICS.md",
        "| `app.requests` | counter | documented but unused |\n",
    );

    let cfg = Config::parse(BASE_CONFIG).unwrap();
    let scanned = scan(&tree.0, &cfg).unwrap();
    assert_eq!(
        scanned.files_scanned, 2,
        "vendor/ and tests/ must be invisible to the walker"
    );
    let by_rule: Vec<Rule> = scanned.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        by_rule,
        vec![Rule::Panic, Rule::Codec, Rule::Metrics],
        "{:?}",
        scanned.findings
    );

    // Freeze the findings into a baseline, as --fix-baseline would.
    let baseline = counts(&scanned.findings);
    let spliced = splice_baseline(BASE_CONFIG, &baseline);
    let cfg2 = Config::parse(&spliced).unwrap();
    assert_eq!(cfg2.baseline.len(), 3);

    // Under the new baseline the same tree is clean…
    let report = apply_baseline(scan(&tree.0, &cfg2).unwrap(), &cfg2);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(report.stale.is_empty());

    // …and a fresh violation still fails.
    tree.write(
        "crates/serving/src/extra.rs",
        "pub fn boom() { panic!(\"new\"); }",
    );
    let report = apply_baseline(scan(&tree.0, &cfg2).unwrap(), &cfg2);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].rule, Rule::Panic);
    assert!(report.failures[0].file.ends_with("extra.rs"));

    // Fixing the original unwrap makes its allowance stale (ratchet note).
    tree.write(
        "crates/serving/src/main.rs",
        "pub fn risky(x: Option<u8>) -> u8 { x.unwrap_or(0) }",
    );
    tree.write("crates/serving/src/extra.rs", "pub fn boom() {}");
    let report = apply_baseline(scan(&tree.0, &cfg2).unwrap(), &cfg2);
    assert!(report.failures.is_empty());
    assert_eq!(report.stale.len(), 1, "{:?}", report.stale);
    assert!(report.stale[0].contains("main.rs"));
}
