//! memex-lint: workspace-native static analysis for the memex codebase.
//!
//! Eight rule families over a hand-rolled token stream (no external
//! dependencies, no rustc internals):
//!
//! 1. **panic** — no `unwrap`/`expect`/panic-macros/indexing in non-test
//!    code of the serving crates ([`rules::panic_rule`]).
//! 2. **locks** — nested lock acquisitions must follow the order declared
//!    in `LINT.toml` ([`rules::locks`]).
//! 3. **metrics** — metric-name literals and `docs/METRICS.md` must agree
//!    bidirectionally ([`rules::metrics`]).
//! 4. **codec** — no wildcard `_ =>` arms in the wire codec
//!    ([`rules::codec`]).
//!
//! Plus four interprocedural families over a workspace [`callgraph`] and
//! guard [`dataflow`] pass:
//!
//! 5. **blocking** — no blocking operation while a declared lock guard is
//!    live, through calls ([`rules::blocking`]).
//! 6. **locks-cross** — lock order across function boundaries
//!    ([`rules::locks::check_cross`]).
//! 7. **durability** — sync-before-truncate on WAL storage along
//!    configured chains ([`rules::durability`]).
//! 8. **panic-reach** — panic sites reachable from dispatch roots
//!    ([`rules::reach`]).
//!
//! Pre-existing violations live in a checked-in baseline inside
//! `LINT.toml` (a per-file ratchet, regenerated with `--fix-baseline`);
//! anything beyond the baseline fails the run. **Hard findings** —
//! durability-order violations and undeclared nested acquisitions — have
//! no baseline escape hatch: they fail the run regardless, and
//! `--fix-baseline` never writes entries for them.

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::{Config, Rule};
use rules::locks::LockAnalysis;
use rules::metrics::MetricUse;
use rules::Finding;

/// Result of scanning the workspace (before the baseline is applied).
pub struct Scan {
    /// All raw findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Final report after the baseline ratchet.
pub struct Report {
    /// Findings exceeding the baseline — these fail the run. When a
    /// (rule, file) group exceeds its allowance, the whole group is
    /// listed (the tool cannot know which occurrences are "the new ones").
    pub failures: Vec<Finding>,
    /// Groups that exceeded, as (rule, file, actual, allowed).
    pub exceeded: Vec<(Rule, String, usize, usize)>,
    /// Baseline entries now above the actual count — tighten the ratchet.
    pub stale: Vec<String>,
    pub files_scanned: usize,
    pub total_findings: usize,
}

/// Directories under `src/` that never hold shipped code.
const SKIP_DIRS: [&str; 2] = ["target", "vendor"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every `.rs` file under the root crate's `src/` and each
/// `crates/*/src/`. Integration tests, benches, and vendored code live
/// outside `src/` and are excluded by construction.
pub fn source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut src_roots = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let candidate = entry.path().join("src");
            if candidate.is_dir() {
                src_roots.push(candidate);
            }
        }
    }
    let mut out = Vec::new();
    for src_root in src_roots {
        if src_root.is_dir() {
            walk(&src_root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// Repo-relative path with `/` separators.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Crate directory name owning a repo-relative source path
/// (`crates/memex-net/src/wire.rs` → `memex-net`; root `src/` → `<root>`).
fn crate_of(rel_path: &str) -> &str {
    match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest),
        None => "<root>",
    }
}

/// Scan the workspace rooted at `root` with the given configuration.
pub fn scan(root: &Path, cfg: &Config) -> io::Result<Scan> {
    let files = source_files(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut lock_analysis = LockAnalysis::default();
    let mut metric_uses: Vec<MetricUse> = Vec::new();
    let mut units: Vec<callgraph::FileUnit> = Vec::new();

    for path in &files {
        let rel_path = rel(root, path);
        let text = fs::read_to_string(path)?;
        let model = parse::model(lexer::lex(&text));

        if cfg.panic_crates.iter().any(|c| c == crate_of(&rel_path)) {
            findings.extend(rules::panic_rule::check(&model, &rel_path));
        }
        rules::locks::check(&model, &rel_path, cfg, &mut lock_analysis);
        metric_uses.extend(rules::metrics::collect_uses(&model, &rel_path));
        if cfg.codec_files.iter().any(|f| f == &rel_path) {
            findings.extend(rules::codec::check(&model, &rel_path, cfg));
        }
        units.push(callgraph::FileUnit {
            crate_name: crate_of(&rel_path).to_string(),
            path: rel_path,
            model,
        });
    }

    // Interprocedural pass: call graph + guard dataflow, then the four
    // cross-function families.
    let graph = callgraph::CallGraph::build(&units);
    let flow = dataflow::Dataflow::build(&units, &graph, cfg);
    findings.extend(rules::blocking::check(&units, &graph, &flow, cfg));
    rules::locks::check_cross(&units, &graph, &flow, cfg, &mut lock_analysis);
    findings.extend(rules::durability::check(&units, &graph, cfg));
    findings.extend(rules::reach::check(&units, &graph, cfg));

    findings.extend(lock_analysis.findings);
    findings.extend(rules::locks::cycle_findings(&lock_analysis.edges));

    let catalog_path = cfg.metrics_catalog.as_str();
    let catalog_text = fs::read_to_string(root.join(catalog_path)).unwrap_or_default();
    let entries = rules::metrics::parse_catalog(&catalog_text);
    findings.extend(rules::metrics::check(catalog_path, &entries, &metric_uses));

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(Scan {
        findings,
        files_scanned: files.len(),
    })
}

/// Hard findings bypass the baseline entirely: durability-order
/// violations and undeclared nested lock acquisitions (intra- or
/// cross-function) always fail the run, and `--fix-baseline` never
/// writes allowances for them.
pub fn is_hard(f: &Finding) -> bool {
    f.rule == Rule::Durability
        || ((f.rule == Rule::Locks || f.rule == Rule::CrossLocks)
            && f.message.contains("undeclared"))
}

/// Raw per-(rule, file) counts — the shape the baseline stores. Hard
/// findings are excluded (they can never be baselined).
pub fn counts(findings: &[Finding]) -> BTreeMap<(Rule, String), usize> {
    let mut out: BTreeMap<(Rule, String), usize> = BTreeMap::new();
    for f in findings {
        if is_hard(f) {
            continue;
        }
        *out.entry((f.rule, f.file.clone())).or_default() += 1;
    }
    out
}

/// Apply the baseline ratchet to a scan.
pub fn apply_baseline(scan: Scan, cfg: &Config) -> Report {
    let actual = counts(&scan.findings);
    let mut failures: Vec<Finding> = scan
        .findings
        .iter()
        .filter(|f| is_hard(f))
        .cloned()
        .collect();
    let mut exceeded = Vec::new();
    for (key, &count) in &actual {
        let allowed = cfg.baseline.get(key).copied().unwrap_or(0);
        if count > allowed {
            exceeded.push((key.0, key.1.clone(), count, allowed));
            failures.extend(
                scan.findings
                    .iter()
                    .filter(|f| f.rule == key.0 && f.file == key.1 && !is_hard(f))
                    .cloned(),
            );
        }
    }
    let mut stale = Vec::new();
    for (key, &allowed) in &cfg.baseline {
        let count = actual.get(key).copied().unwrap_or(0);
        if count < allowed {
            stale.push(format!(
                "baseline for [{}] {} allows {allowed} but only {count} remain — \
                 run --fix-baseline to ratchet down",
                key.0.name(),
                key.1
            ));
        }
    }
    Report {
        failures,
        exceeded,
        stale,
        files_scanned: scan.files_scanned,
        total_findings: scan.findings.len(),
    }
}

/// Minimal JSON string escaping (the only JSON this crate emits).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the report as a single JSON object (for the CI job).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"failures\": [\n");
    for (i, f) in report.failures.iter().enumerate() {
        let sep = if i + 1 == report.failures.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"function\": \"{}\", \"message\": \"{}\"}}{sep}\n",
            f.rule.name(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.function),
            json_escape(&f.message),
        ));
    }
    out.push_str("  ],\n  \"stale\": [\n");
    for (i, s) in report.stale.iter().enumerate() {
        let sep = if i + 1 == report.stale.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\"{sep}\n", json_escape(s)));
    }
    out.push_str(&format!(
        "  ],\n  \"files_scanned\": {},\n  \"total_findings\": {},\n  \"ok\": {}\n}}\n",
        report.files_scanned,
        report.total_findings,
        report.failures.is_empty(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::Rule;
    use rules::Finding;

    fn finding(rule: Rule, file: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            function: "f".to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn baseline_ratchet_semantics() {
        let mut cfg = Config::default();
        cfg.baseline.insert((Rule::Panic, "a.rs".to_string()), 2);
        cfg.baseline.insert((Rule::Panic, "gone.rs".to_string()), 5);
        let scan = Scan {
            findings: vec![
                finding(Rule::Panic, "a.rs"),
                finding(Rule::Panic, "a.rs"),
                finding(Rule::Codec, "b.rs"),
            ],
            files_scanned: 2,
        };
        let report = apply_baseline(scan, &cfg);
        // a.rs is exactly at baseline → passes; b.rs has no allowance →
        // fails; gone.rs allowance is stale.
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].file, "b.rs");
        assert_eq!(
            report.exceeded,
            vec![(Rule::Codec, "b.rs".to_string(), 1, 0)]
        );
        assert_eq!(report.stale.len(), 1);
        assert!(report.stale[0].contains("gone.rs"));
    }

    #[test]
    fn hard_findings_bypass_the_baseline() {
        let mut cfg = Config::default();
        // A generous baseline that would absorb these if they were soft.
        cfg.baseline
            .insert((Rule::Durability, "a.rs".to_string()), 10);
        cfg.baseline.insert((Rule::Locks, "a.rs".to_string()), 10);
        let hard_dur = finding(Rule::Durability, "a.rs");
        let hard_lock = Finding {
            message: "undeclared nested acquisition: x inside y".to_string(),
            ..finding(Rule::Locks, "a.rs")
        };
        let soft_lock = finding(Rule::Locks, "a.rs");
        assert!(is_hard(&hard_dur));
        assert!(is_hard(&hard_lock));
        assert!(!is_hard(&soft_lock));
        let scan = Scan {
            findings: vec![hard_dur, hard_lock, soft_lock],
            files_scanned: 1,
        };
        let report = apply_baseline(scan, &cfg);
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        assert!(report.failures.iter().all(is_hard));
        // counts() never offers hard findings to --fix-baseline.
        let c = counts(&report.failures);
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn json_escapes_and_shape() {
        let report = Report {
            failures: vec![finding(Rule::Codec, "a\"b.rs")],
            exceeded: vec![],
            stale: vec![],
            files_scanned: 1,
            total_findings: 1,
        };
        let json = render_json(&report);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"ok\": false"));
    }
}
