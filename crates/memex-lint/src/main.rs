//! CLI for memex-lint.
//!
//! ```text
//! cargo run -p memex-lint                 # human-readable report
//! cargo run -p memex-lint -- --json       # machine-readable (CI)
//! cargo run -p memex-lint -- --fix-baseline   # regenerate the ratchet
//! ```
//!
//! Exit codes: 0 clean (baseline respected), 1 findings beyond the
//! baseline, 2 usage / configuration / I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use memex_lint::config::Config;
use memex_lint::{apply_baseline, counts, render_json, scan};

/// Walk up from the current directory to the first `LINT.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("LINT.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("memex-lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut fix_baseline = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-baseline" => fix_baseline = true,
            "--help" | "-h" => {
                println!(
                    "memex-lint: workspace static analysis (panic-freedom, lock \
                     discipline,\nmetric catalog, codec coverage)\n\n\
                     usage: memex-lint [--json] [--fix-baseline]\n\n\
                     Configuration and baseline live in LINT.toml at the \
                     workspace root."
                );
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let Some(root) = find_root() else {
        return fail("no LINT.toml found walking up from the current directory");
    };
    let lint_toml = root.join("LINT.toml");
    let config_text = match std::fs::read_to_string(&lint_toml) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {}: {e}", lint_toml.display())),
    };
    let cfg = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let scanned = match scan(&root, &cfg) {
        Ok(s) => s,
        Err(e) => return fail(&format!("scanning workspace: {e}")),
    };

    if fix_baseline {
        let baseline = counts(&scanned.findings);
        let entries = baseline.len();
        let spliced = memex_lint::config::splice_baseline(&config_text, &baseline);
        if let Err(e) = std::fs::write(&lint_toml, spliced) {
            return fail(&format!("writing {}: {e}", lint_toml.display()));
        }
        println!(
            "memex-lint: baseline regenerated — {} findings across {entries} \
             (rule, file) entries in {} files",
            scanned.findings.len(),
            scanned.files_scanned,
        );
        return ExitCode::SUCCESS;
    }

    let report = apply_baseline(scanned, &cfg);
    if json {
        print!("{}", render_json(&report));
    } else {
        for f in &report.failures {
            println!("{f}");
        }
        for (rule, file, actual, allowed) in &report.exceeded {
            println!(
                "memex-lint: [{}] {file}: {actual} findings exceed baseline of \
                 {allowed}",
                rule.name()
            );
        }
        for s in &report.stale {
            println!("memex-lint: note: {s}");
        }
        println!(
            "memex-lint: {} files scanned, {} findings ({} beyond baseline)",
            report.files_scanned,
            report.total_findings,
            report.failures.len(),
        );
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
