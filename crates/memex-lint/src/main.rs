//! CLI for memex-lint.
//!
//! ```text
//! cargo run -p memex-lint                 # human-readable report
//! cargo run -p memex-lint -- --json       # machine-readable (CI artifact)
//! cargo run -p memex-lint -- --format github  # ::error annotations (CI)
//! cargo run -p memex-lint -- --fix-baseline   # regenerate the ratchet
//! ```
//!
//! Exit codes: 0 clean (baseline respected), 1 findings beyond the
//! baseline, 2 usage / configuration / I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use memex_lint::config::Config;
use memex_lint::{apply_baseline, counts, render_json, scan, Report};

/// Escape a value for a GitHub workflow-command *message* position.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\n', "%0A")
        .replace('\r', "%0D")
}

/// Escape a value for a workflow-command *property* position, where `,`
/// and `:` are also structural.
fn gh_escape_prop(s: &str) -> String {
    gh_escape(s).replace(',', "%2C").replace(':', "%3A")
}

/// Render the report as GitHub Actions workflow commands: one
/// `::error file=…,line=…` per failure (annotated inline on the PR) and
/// `::notice` lines for stale baseline entries.
fn render_github(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.failures {
        out.push_str(&format!(
            "::error file={},line={},title=memex-lint[{}]::{} (in {})\n",
            gh_escape_prop(&f.file),
            f.line,
            gh_escape_prop(f.rule.name()),
            gh_escape(&f.message),
            gh_escape(&f.function),
        ));
    }
    for s in &report.stale {
        out.push_str(&format!("::notice title=memex-lint::{}\n", gh_escape(s)));
    }
    out.push_str(&format!(
        "memex-lint: {} files scanned, {} findings ({} beyond baseline)\n",
        report.files_scanned,
        report.total_findings,
        report.failures.len(),
    ));
    out
}

/// Walk up from the current directory to the first `LINT.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("LINT.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("memex-lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut github = false;
    let mut fix_baseline = false;
    let mut want_format = false;
    for arg in std::env::args().skip(1) {
        if want_format {
            want_format = false;
            match arg.as_str() {
                "github" => github = true,
                "json" => json = true,
                "text" => {}
                other => return fail(&format!("unknown format {other:?} (github|json|text)")),
            }
            continue;
        }
        match arg.as_str() {
            "--json" => json = true,
            "--format" => want_format = true,
            "--fix-baseline" => fix_baseline = true,
            "--help" | "-h" => {
                println!(
                    "memex-lint: workspace static analysis (panic-freedom, lock \
                     discipline,\nmetric catalog, codec coverage, and the \
                     interprocedural families:\nblocking-under-lock, \
                     cross-function lock order, durability order,\n\
                     panic-reachability)\n\n\
                     usage: memex-lint [--json] [--format github|json|text] \
                     [--fix-baseline]\n\n\
                     Configuration and baseline live in LINT.toml at the \
                     workspace root."
                );
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    if want_format {
        return fail("--format requires a value (github|json|text)");
    }

    let Some(root) = find_root() else {
        return fail("no LINT.toml found walking up from the current directory");
    };
    let lint_toml = root.join("LINT.toml");
    let config_text = match std::fs::read_to_string(&lint_toml) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {}: {e}", lint_toml.display())),
    };
    let cfg = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let scanned = match scan(&root, &cfg) {
        Ok(s) => s,
        Err(e) => return fail(&format!("scanning workspace: {e}")),
    };

    if fix_baseline {
        let baseline = counts(&scanned.findings);
        let entries = baseline.len();
        let spliced = memex_lint::config::splice_baseline(&config_text, &baseline);
        if let Err(e) = std::fs::write(&lint_toml, spliced) {
            return fail(&format!("writing {}: {e}", lint_toml.display()));
        }
        println!(
            "memex-lint: baseline regenerated — {} findings across {entries} \
             (rule, file) entries in {} files",
            scanned.findings.len(),
            scanned.files_scanned,
        );
        return ExitCode::SUCCESS;
    }

    let report = apply_baseline(scanned, &cfg);
    if github {
        print!("{}", render_github(&report));
    } else if json {
        print!("{}", render_json(&report));
    } else {
        for f in &report.failures {
            println!("{f}");
        }
        for (rule, file, actual, allowed) in &report.exceeded {
            println!(
                "memex-lint: [{}] {file}: {actual} findings exceed baseline of \
                 {allowed}",
                rule.name()
            );
        }
        for s in &report.stale {
            println!("memex-lint: note: {s}");
        }
        println!(
            "memex-lint: {} files scanned, {} findings ({} beyond baseline)",
            report.files_scanned,
            report.total_findings,
            report.failures.len(),
        );
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
