//! Lightweight structure over the token stream: which function each token
//! belongs to, whether it sits in test-only code, and its brace depth.
//!
//! This is deliberately not a parser. It tracks exactly four things with
//! a single forward pass and a scope stack:
//!
//! 1. **Brace depth** — every `{`/`}` pushes/pops a scope.
//! 2. **Functions** — `fn name … {` opens a function scope (a `;` before
//!    the `{` cancels it: trait method declarations have no body).
//! 3. **Impl blocks** — `impl [Trait for] Type {` opens a typed scope;
//!    functions defined directly inside carry `Type` as their `self_ty`,
//!    which is what lets the call graph resolve `receiver.method()` to
//!    `Type::method`.
//! 4. **Test regions** — a `#[cfg(test)]` / `#[test]`-style attribute arms
//!    the next `{` it decorates; everything inside inherits test-ness.
//!    Files under `tests/`, `benches/`, or `examples/` are excluded before
//!    this module is ever consulted.

use crate::lexer::{Tok, Token};

/// One `fn` item (or nested fn) found in the file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Type of the enclosing `impl` block, when the fn is defined directly
    /// inside one (`impl Foo { fn m … }` and `impl Trait for Foo { … }`
    /// both yield `Foo`). Free fns — and fns nested inside another fn's
    /// body — carry `None`.
    pub self_ty: Option<String>,
    /// Token index of the body-opening `{`.
    pub body_start: usize,
    /// Token index one past the body-closing `}` (or `tokens.len()` when
    /// the file ends inside the body).
    pub body_end: usize,
    pub line: usize,
    pub in_test: bool,
}

impl FnInfo {
    /// `Type::name` for methods, bare `name` for free fns.
    pub fn qname(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Per-token structural facts, parallel to the token vector.
pub struct FileModel {
    pub tokens: Vec<Token>,
    /// Enclosing function id (innermost) per token, if any.
    pub fn_of: Vec<Option<usize>>,
    /// True when the token sits in test-only code.
    pub in_test: Vec<bool>,
    /// Brace depth per token (depth *after* processing a `{`, *before*
    /// processing its `}` — i.e. body tokens share the body depth).
    pub depth: Vec<usize>,
    pub functions: Vec<FnInfo>,
}

struct Scope {
    is_test: bool,
    /// Function whose body this brace opened, if any.
    fn_id: Option<usize>,
    /// Self type of the `impl` block this brace opened, if any.
    impl_ty: Option<String>,
}

/// Extract the self type of an `impl` header starting at token `start`
/// (the `impl` keyword): the last path segment at angle-bracket depth 0,
/// taken after the `for` when one is present, stopping at `where` or the
/// body `{`. Handles `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`,
/// `impl fmt::Display for Foo<'_>`, and `impl Trait for &mut Foo`.
fn impl_self_ty(tokens: &[Token], start: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut ty: Option<String> = None;
    let mut j = start + 1;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') if angle <= 0 => break,
            Tok::Punct(';') => break,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(s) if angle <= 0 => match s.as_str() {
                "for" => ty = None,
                "where" => break,
                "mut" | "dyn" | "unsafe" | "const" => {}
                _ => ty = Some(s.clone()),
            },
            _ => {}
        }
        j += 1;
    }
    ty
}

/// True when the attribute token span marks test-only code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[tokio::test]`, …
fn attr_is_test(tokens: &[Token]) -> bool {
    tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "test"))
}

/// Build the [`FileModel`] for a lexed file.
pub fn model(tokens: Vec<Token>) -> FileModel {
    let n = tokens.len();
    let mut fn_of = vec![None; n];
    let mut in_test = vec![false; n];
    let mut depth = vec![0usize; n];
    let mut functions: Vec<FnInfo> = Vec::new();

    let mut scopes: Vec<Scope> = Vec::new();
    // Armed by a test attribute; applied to the next `{`, cleared by `;`
    // at attribute level (e.g. `#[cfg(test)] use …;`).
    let mut test_armed = false;
    // Set when `fn` + name were seen and the body `{` is still pending.
    let mut pending_fn: Option<(String, usize)> = None;
    // Set when `impl` was seen and its body `{` is still pending.
    let mut pending_impl: Option<Option<String>> = None;

    let mut i = 0usize;
    while i < n {
        let cur_test = test_armed || scopes.iter().any(|s| s.is_test);
        let cur_fn = scopes.iter().rev().find_map(|s| s.fn_id);
        fn_of[i] = cur_fn;
        in_test[i] = cur_test;
        depth[i] = scopes.len();

        match &tokens[i].tok {
            // Attribute: `#` `[` … `]` (also `#![…]`). Consume it wholesale
            // so its brackets/idents never look like expressions.
            Tok::Punct('#')
                if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
                    || (matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                        && matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('[')))) =>
            {
                let open = if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    i + 1
                } else {
                    i + 2
                };
                let mut j = open + 1;
                let mut brackets = 1usize;
                while j < n && brackets > 0 {
                    match tokens[j].tok {
                        Tok::Punct('[') => brackets += 1,
                        Tok::Punct(']') => brackets -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if attr_is_test(&tokens[open..j]) {
                    test_armed = true;
                }
                for k in i..j.min(n) {
                    fn_of[k] = cur_fn;
                    in_test[k] = cur_test;
                    depth[k] = scopes.len();
                }
                i = j;
                continue;
            }
            Tok::Ident(id) if id == "fn" => {
                if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    pending_fn = Some((name.clone(), tokens[i].line));
                }
            }
            Tok::Ident(id) if id == "impl" && pending_fn.is_none() => {
                pending_impl = Some(impl_self_ty(&tokens, i));
            }
            Tok::Punct('{') => {
                let impl_ty = pending_impl.take().flatten();
                let fn_id = pending_fn.take().map(|(name, line)| {
                    // Innermost enclosing impl type — but not across a fn
                    // boundary: a free fn nested in a method body has no
                    // self type.
                    let self_ty = scopes.iter().rev().find_map(|s| {
                        if s.fn_id.is_some() {
                            Some(None)
                        } else {
                            s.impl_ty.clone().map(Some)
                        }
                    });
                    functions.push(FnInfo {
                        name,
                        self_ty: self_ty.flatten(),
                        body_start: i,
                        body_end: n,
                        line,
                        in_test: cur_test,
                    });
                    functions.len() - 1
                });
                scopes.push(Scope {
                    is_test: test_armed,
                    fn_id,
                    impl_ty,
                });
                test_armed = false;
            }
            Tok::Punct('}') => {
                if let Some(scope) = scopes.pop() {
                    if let Some(id) = scope.fn_id {
                        functions[id].body_end = i + 1;
                    }
                }
            }
            Tok::Punct(';') => {
                // A `;` before any body brace cancels a pending fn (trait
                // method declaration) and disarms an attribute that
                // decorated a non-brace item.
                if scopes.is_empty() || pending_fn.is_none() {
                    test_armed = false;
                }
                pending_fn = None;
                pending_impl = None;
            }
            _ => {}
        }
        i += 1;
    }

    FileModel {
        tokens,
        fn_of,
        in_test,
        depth,
        functions,
    }
}

impl FileModel {
    /// The name of the function enclosing token `i`, or `"<file>"`.
    pub fn fn_name(&self, i: usize) -> &str {
        match self.fn_of.get(i).copied().flatten() {
            Some(id) => &self.functions[id].name,
            None => "<file>",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_and_test_mods_are_tracked() {
        let src = r#"
            fn live() { body(); }

            #[cfg(test)]
            mod tests {
                #[test]
                fn exercised() { checked(); }
            }
        "#;
        let m = model(lex(src));
        assert_eq!(m.functions.len(), 2);
        assert!(!m.functions[0].in_test);
        assert!(m.functions[1].in_test);
        // Every token of the test mod body is flagged.
        let body = &m.functions[1];
        for k in body.body_start..body.body_end {
            assert!(m.in_test[k], "token {k} should be in test code");
        }
    }

    #[test]
    fn attr_on_use_does_not_leak_testness() {
        let src = r#"
            #[cfg(test)]
            use std::collections::HashMap;
            fn live() { body(); }
        "#;
        let m = model(lex(src));
        assert_eq!(m.functions.len(), 1);
        assert!(!m.functions[0].in_test);
        let f = &m.functions[0];
        assert!(!m.in_test[f.body_start + 1]);
    }

    #[test]
    fn trait_method_decl_is_not_a_body() {
        let src = r#"
            trait T {
                fn no_body(&self);
                fn with_body(&self) { x(); }
            }
        "#;
        let m = model(lex(src));
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "with_body");
    }

    #[test]
    fn impl_blocks_give_methods_a_self_type() {
        let src = r#"
            struct Foo;
            impl Foo {
                fn m(&self) { x(); }
            }
            impl std::fmt::Display for Foo {
                fn fmt(&self, f: &mut F) -> R { y(); }
            }
            impl<T: Clone> Wrapper<T> where T: Send {
                fn w(&self) { z(); }
            }
            fn free() -> impl Iterator<Item = u8> {
                fn inner() { q(); }
                std::iter::empty()
            }
        "#;
        let m = model(lex(src));
        let by_name = |n: &str| m.functions.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("m").self_ty.as_deref(), Some("Foo"));
        assert_eq!(by_name("m").qname(), "Foo::m");
        assert_eq!(by_name("fmt").self_ty.as_deref(), Some("Foo"));
        assert_eq!(by_name("w").self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(by_name("free").self_ty, None, "return-position impl");
        assert_eq!(by_name("inner").self_ty, None, "nested fn is free");
    }

    #[test]
    fn nested_fns_attribute_tokens_to_the_inner_one() {
        let src = r#"
            fn outer() {
                fn inner() { marker(); }
                after();
            }
        "#;
        let m = model(lex(src));
        let marker = m
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "marker"))
            .unwrap();
        assert_eq!(m.fn_name(marker), "inner");
        let after = m
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "after"))
            .unwrap();
        assert_eq!(m.fn_name(after), "outer");
    }
}
