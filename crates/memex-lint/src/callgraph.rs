//! Intra-workspace call graph over the token-level structure model.
//!
//! Nodes are every `fn` item the [`crate::parse`] pass found (methods
//! carry the self type of their `impl` block). Edges are call sites
//! resolved with deliberately bounded cleverness:
//!
//! - **Free calls** `helper(…)` resolve within the same file first, then
//!   the same crate, then workspace-wide when the name is unique.
//! - **Qualified calls** `Type::method(…)` (and `Self::method`) resolve
//!   by qualified name, preferring the caller's crate.
//! - **Method calls** `recv.method(…)` type the receiver through a local
//!   alias table — `self`, `let x = Type::new(…)`, `let x: Type`,
//!   `x: &Type` parameters, struct literals — then fold the remaining
//!   path segments through struct field types collected workspace-wide
//!   (`self.wal.sync()` → `Wal::sync` because `LsmStore { wal: Wal }`).
//! - **Trait-method fallback**: when the receiver cannot be typed, a
//!   method name implemented by exactly one function in the workspace
//!   resolves to it — unless the name is a common std method (`push`,
//!   `len`, `clone`, …), where a unique workspace homonym would create
//!   false edges to std calls.
//!
//! `#[cfg(test)]` functions are excluded both as callees (they are never
//! indexed) and as propagation sources, so interprocedural rules reason
//! only about non-test call chains. Vendored code never reaches this
//! module: the file walker skips `vendor/` entirely.
//!
//! Unresolved calls are dropped, which under-approximates the graph —
//! the safe direction for reachability-style rules is handled per rule
//! (panic-reachability accepts missing edges; the lock rules only ever
//! act on *resolved* effects).

use std::collections::HashMap;

use crate::lexer::Tok;
use crate::parse::FileModel;
use crate::rules::locks::receiver_path;

/// Index into [`CallGraph::nodes`].
pub type FnId = usize;

/// One source file, pre-lexed and modeled, with its workspace identity.
pub struct FileUnit {
    /// Repo-relative path (`crates/memex-net/src/server.rs`).
    pub path: String,
    /// Owning crate directory name (`memex-net`), `<root>` for `src/`.
    pub crate_name: String,
    pub model: FileModel,
}

/// One function item in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the `FileUnit` slice the graph was built from.
    pub file_idx: usize,
    /// Index into that file's `model.functions`.
    pub fn_idx: usize,
    pub file: String,
    pub crate_name: String,
    pub name: String,
    pub self_ty: Option<String>,
    pub line: usize,
    pub in_test: bool,
}

impl FnNode {
    /// `Type::name` for methods, bare `name` for free fns.
    pub fn qname(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A resolved call site inside a caller's body.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: FnId,
    /// Token index of the callee-name token in the caller's file.
    pub token: usize,
    pub line: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Per caller (indexed by `FnId`): resolved call sites in token order.
    pub calls: Vec<Vec<Call>>,
    /// (file_idx, fn_idx) → FnId.
    index: HashMap<(usize, usize), FnId>,
}

/// Method names so common in std that an accidental unique workspace
/// homonym would wire `v.push(x)` to some unrelated `Foo::push`. The
/// unique-name fallback refuses these; receiver-typed resolution still
/// handles them precisely.
const COMMON_STD_METHODS: [&str; 42] = [
    "new",
    "default",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "clear",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "contains",
    "contains_key",
    "drain",
    "extend",
    "join",
    "split",
    "find",
    "map",
    "filter",
    "collect",
    "take",
    "min",
    "max",
    "read",
    "write",
    "lock",
    "unwrap",
    "expect",
    "send",
    "recv",
    "drop",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "to_string",
];

/// Keywords that can precede `(` without being a call.
const NON_CALL_IDENTS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "in", "fn", "let", "as", "move", "else",
    "use", "where", "impl", "dyn",
];

fn punct_at(model: &FileModel, i: usize, c: char) -> bool {
    matches!(model.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn ident_at(model: &FileModel, i: usize) -> Option<&str> {
    match model.tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

/// Wrapper types whose single generic argument is the type we actually
/// care about when typing a receiver (`Arc<LsmShared>` → `LsmShared`).
const TRANSPARENT_WRAPPERS: [&str; 6] = ["Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell"];

/// Extract the core type name from a type-position token run starting at
/// `i`: skips `&`, `mut`, lifetimes and `dyn`, unwraps transparent
/// wrappers, and follows path segments to the last one. Returns the type
/// ident and the index one past the tokens consumed.
fn core_type(model: &FileModel, mut i: usize, end: usize) -> Option<String> {
    let mut guard = 0usize;
    while i < end && guard < 64 {
        guard += 1;
        match &model.tokens[i].tok {
            Tok::Punct('&') | Tok::Punct('*') => i += 1,
            Tok::Lifetime => i += 1,
            Tok::Ident(s) if s == "mut" || s == "dyn" || s == "impl" => i += 1,
            Tok::Ident(s) => {
                // Path: follow `a::b::C` to the last segment.
                let mut name = s.clone();
                let mut j = i + 1;
                while punct_at(model, j, ':') && punct_at(model, j + 1, ':') {
                    match ident_at(model, j + 2) {
                        Some(seg) => {
                            name = seg.to_string();
                            j += 3;
                        }
                        None => break,
                    }
                }
                if TRANSPARENT_WRAPPERS.contains(&name.as_str()) && punct_at(model, j, '<') {
                    // Descend into the wrapper's first generic argument.
                    i = j + 1;
                    continue;
                }
                return Some(name);
            }
            _ => return None,
        }
    }
    None
}

/// Per-function local variable → type-name table, built from the fn
/// signature (typed parameters) and `let` bindings in the body.
fn alias_table(model: &FileModel, fn_idx: usize) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let f = &model.functions[fn_idx];

    // --- Parameters: walk back from the body `{` to the `fn` keyword,
    // then forward through the parameter parens.
    let mut fn_kw = f.body_start;
    let lo = f.body_start.saturating_sub(256);
    while fn_kw > lo {
        fn_kw -= 1;
        if matches!(&model.tokens[fn_kw].tok, Tok::Ident(s) if s == "fn") {
            break;
        }
        if matches!(
            &model.tokens[fn_kw].tok,
            Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';')
        ) {
            fn_kw = f.body_start; // gave up: malformed or truncated
            break;
        }
    }
    let mut i = fn_kw;
    // Find the opening paren of the parameter list.
    while i < f.body_start && !punct_at(model, i, '(') {
        i += 1;
    }
    let mut paren = 0i32;
    while i < f.body_start {
        match &model.tokens[i].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            // `name : Type` at top level of the parameter list (a `::`
            // path segment would have a second colon on either side).
            Tok::Ident(name)
                if paren == 1
                    && punct_at(model, i + 1, ':')
                    && !punct_at(model, i + 2, ':')
                    && !punct_at(model, i - 1, ':') =>
            {
                if let Some(ty) = core_type(model, i + 2, f.body_start) {
                    out.insert(name.clone(), ty);
                }
            }
            _ => {}
        }
        i += 1;
    }

    // --- Let bindings inside the body.
    let mut i = f.body_start + 1;
    while i + 2 < f.body_end {
        if !matches!(&model.tokens[i].tok, Tok::Ident(s) if s == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(ident_at(model, j), Some("mut")) {
            j += 1;
        }
        let Some(name) = ident_at(model, j).map(|s| s.to_string()) else {
            i += 1;
            continue;
        };
        // `let x: Type = …`
        if punct_at(model, j + 1, ':') && !punct_at(model, j + 2, ':') {
            if let Some(ty) = core_type(model, j + 2, f.body_end) {
                out.insert(name, ty);
            }
        } else if punct_at(model, j + 1, '=') {
            // `let x = Type::ctor(…)` or `let x = Type { … }`
            if let Some(first) = ident_at(model, j + 2) {
                let first = first.to_string();
                if punct_at(model, j + 3, '{') {
                    out.insert(name, first);
                } else if punct_at(model, j + 3, ':') && punct_at(model, j + 4, ':') {
                    // Follow the path; the segment before the final call
                    // is the type (ctor call assumed to return Self).
                    let mut ty = first;
                    let mut k = j + 2;
                    while punct_at(model, k + 1, ':') && punct_at(model, k + 2, ':') {
                        match ident_at(model, k + 3) {
                            Some(seg) if punct_at(model, k + 4, '(') => {
                                let ctor = seg;
                                if matches!(
                                    ctor,
                                    "new"
                                        | "default"
                                        | "open"
                                        | "create"
                                        | "with_capacity"
                                        | "from"
                                        | "build"
                                ) {
                                    out.insert(name.clone(), ty.clone());
                                }
                                break;
                            }
                            Some(seg) => {
                                ty = seg.to_string();
                                k += 3;
                            }
                            None => break,
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Struct field types, collected per file: `(owner, field)` → core type.
fn field_types(model: &FileModel, out: &mut HashMap<(String, String), String>) {
    let toks = &model.tokens;
    let mut i = 0;
    while i + 2 < toks.len() {
        if !matches!(&toks[i].tok, Tok::Ident(s) if s == "struct") {
            i += 1;
            continue;
        }
        let Some(owner) = ident_at(model, i + 1).map(|s| s.to_string()) else {
            i += 1;
            continue;
        };
        // Find the body `{` (skip generics), bail at `;` (tuple/unit) or
        // `(` (tuple struct).
        let mut j = i + 2;
        let mut angle = 0i32;
        let open = loop {
            match toks.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('<')) => angle += 1,
                Some(Tok::Punct('>')) => angle -= 1,
                Some(Tok::Punct('{')) if angle <= 0 => break Some(j),
                Some(Tok::Punct(';')) | Some(Tok::Punct('(')) | None => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let body_depth = model.depth[open] + 1;
        let mut k = open + 1;
        while k < toks.len() && model.depth[k] >= body_depth {
            if model.depth[k] == body_depth {
                if let Some(field) = ident_at(model, k) {
                    if punct_at(model, k + 1, ':')
                        && !punct_at(model, k + 2, ':')
                        && !punct_at(model, k - 1, ':')
                    {
                        if let Some(ty) = core_type(model, k + 2, toks.len()) {
                            out.insert((owner.clone(), field.to_string()), ty);
                        }
                    }
                }
            }
            k += 1;
        }
        i = open + 1;
    }
}

impl CallGraph {
    /// Build the workspace graph from pre-modeled files.
    pub fn build(files: &[FileUnit]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut index = HashMap::new();
        for (file_idx, unit) in files.iter().enumerate() {
            for (fn_idx, f) in unit.model.functions.iter().enumerate() {
                let id = nodes.len();
                index.insert((file_idx, fn_idx), id);
                nodes.push(FnNode {
                    file_idx,
                    fn_idx,
                    file: unit.path.clone(),
                    crate_name: unit.crate_name.clone(),
                    name: f.name.clone(),
                    self_ty: f.self_ty.clone(),
                    line: f.line,
                    in_test: f.in_test,
                });
            }
        }

        // Name indexes over non-test nodes only: test helpers are never
        // legitimate callees of shipped code.
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut by_qname: HashMap<String, Vec<FnId>> = HashMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if n.in_test {
                continue;
            }
            by_name.entry(n.name.as_str()).or_default().push(id);
            by_qname.entry(n.qname()).or_default().push(id);
        }

        let mut fields: HashMap<(String, String), String> = HashMap::new();
        for unit in files {
            field_types(&unit.model, &mut fields);
        }

        let mut calls: Vec<Vec<Call>> = vec![Vec::new(); nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            let unit = &files[node.file_idx];
            let model = &unit.model;
            let f = &model.functions[node.fn_idx];
            let aliases = alias_table(model, node.fn_idx);
            let resolve_in_scope = |candidates: &[FnId]| -> Option<FnId> {
                // Same file → same crate → workspace-unique.
                let same_file: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| nodes[c].file_idx == node.file_idx)
                    .collect();
                if same_file.len() == 1 {
                    return Some(same_file[0]);
                }
                let same_crate: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| nodes[c].crate_name == node.crate_name)
                    .collect();
                if same_crate.len() == 1 {
                    return Some(same_crate[0]);
                }
                if candidates.len() == 1 {
                    return Some(candidates[0]);
                }
                None
            };
            // Type a receiver path (`self.shared.dir`) through the alias
            // table and struct field types.
            let type_receiver = |path: &str| -> Option<String> {
                let mut segs = path.split('.');
                let first = segs.next()?;
                let mut ty = if first == "self" {
                    node.self_ty.clone()?
                } else {
                    aliases.get(first)?.clone()
                };
                for seg in segs {
                    ty = fields.get(&(ty, seg.to_string()))?.clone();
                }
                Some(ty)
            };

            for i in f.body_start + 1..f.body_end.saturating_sub(1).min(model.tokens.len()) {
                if model.fn_of[i] != Some(node.fn_idx) || model.in_test[i] {
                    continue;
                }
                let Some(name) = ident_at(model, i) else {
                    continue;
                };
                if !punct_at(model, i + 1, '(') || NON_CALL_IDENTS.contains(&name) {
                    continue;
                }
                // `fn name(` is a nested definition, not a call.
                if matches!(ident_at(model, i.wrapping_sub(1)), Some("fn")) {
                    continue;
                }
                let target: Option<FnId> = if i > 0 && punct_at(model, i - 1, '.') {
                    // Method call through a receiver.
                    let recv = receiver_path(model, i - 1);
                    let typed = if recv.is_empty() {
                        None
                    } else {
                        type_receiver(&recv)
                    };
                    match typed {
                        Some(ty) => by_qname
                            .get(&format!("{ty}::{name}"))
                            .and_then(|c| resolve_in_scope(c)),
                        None if !COMMON_STD_METHODS.contains(&name) => {
                            // Trait-method fallback: unique implementor.
                            match by_name.get(name) {
                                Some(c) if c.len() == 1 => Some(c[0]),
                                _ => None,
                            }
                        }
                        None => None,
                    }
                } else if i >= 2 && punct_at(model, i - 1, ':') && punct_at(model, i - 2, ':') {
                    // Qualified call `Type::name(` (or `Self::name(`).
                    match ident_at(model, i.wrapping_sub(3)) {
                        Some(ty) => {
                            let ty = if ty == "Self" {
                                node.self_ty.clone().unwrap_or_else(|| ty.to_string())
                            } else {
                                ty.to_string()
                            };
                            by_qname
                                .get(&format!("{ty}::{name}"))
                                .and_then(|c| resolve_in_scope(c))
                        }
                        None => None,
                    }
                } else {
                    // Free call.
                    by_name.get(name).and_then(|candidates| {
                        let free: Vec<FnId> = candidates
                            .iter()
                            .copied()
                            .filter(|&c| nodes[c].self_ty.is_none())
                            .collect();
                        resolve_in_scope(&free)
                    })
                };
                if let Some(callee) = target {
                    calls[id].push(Call {
                        callee,
                        token: i,
                        line: model.tokens[i].line,
                    });
                }
            }
        }

        CallGraph {
            nodes,
            calls,
            index,
        }
    }

    /// FnId for a (file_idx, fn_idx) pair.
    pub fn node_of(&self, file_idx: usize, fn_idx: usize) -> Option<FnId> {
        self.index.get(&(file_idx, fn_idx)).copied()
    }

    /// Resolve a configured function name (`seal`, `LsmStore::seal`) to
    /// every matching non-test node.
    pub fn resolve_name(&self, name: &str) -> Vec<FnId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.in_test && (n.qname() == name || n.name == name))
            .map(|(id, _)| id)
            .collect()
    }
}
