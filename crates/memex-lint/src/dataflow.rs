//! Guard/effect dataflow over the call graph.
//!
//! Two layers:
//!
//! 1. **Direct facts** per function, from the token stream: lock
//!    acquisitions with their held region (reusing the lock rule's guard
//!    lifetime model), blocking operations (`[blocking] methods` from
//!    `LINT.toml`), and panic sites.
//! 2. **Transitive summaries**: what locks a call to `f` may acquire and
//!    what blocking ops it may perform, computed by bounded fixed-point
//!    iteration over the call graph (`[interproc] max_call_depth` rounds
//!    of callee-summary folding — depth-k chains converge after k
//!    rounds, and the insert-only merge guarantees termination even on
//!    recursive cycles).
//!
//! Each transitive effect keeps the shortest call chain that produced it
//! (`hops`, rendered as `Type::fn (file:line)` steps) so a cross-function
//! finding can show the path instead of just the endpoints.

use std::collections::HashMap;

use crate::callgraph::{CallGraph, FileUnit, FnId};
use crate::config::Config;
use crate::lexer::Tok;
use crate::parse::FileModel;
use crate::rules::locks::{acquisitions, held_until};

/// A lock acquisition with its resolved name and held region, attributed
/// to one graph node.
#[derive(Debug, Clone)]
pub struct HeldLock {
    /// Resolved lock name (`store.lsm.manifest`), or `None` when no
    /// alias matched — undeclared from the config's point of view.
    pub name: Option<String>,
    /// Receiver path as written.
    pub path: String,
    pub line: usize,
    /// Token range `[token, until)` over which the guard is considered
    /// live in the owning file.
    pub token: usize,
    pub until: usize,
}

/// A direct blocking operation site.
#[derive(Debug, Clone)]
pub struct BlockingOp {
    pub method: String,
    pub line: usize,
    pub token: usize,
}

/// What kind of transitive effect a summary entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EffectKind {
    /// Acquires the named lock (resolved name).
    Lock,
    /// Acquires a lock whose receiver path did not resolve; the name is
    /// the raw path.
    UndeclaredLock,
    /// Performs the named blocking operation.
    Blocking,
}

/// One transitive effect reachable from calling a function.
#[derive(Debug, Clone)]
pub struct Effect {
    pub kind: EffectKind,
    /// Lock name, raw receiver path, or blocking method name.
    pub name: String,
    /// Where the effect ultimately happens.
    pub file: String,
    pub line: usize,
    /// Call chain from the summarized function down to the effect site,
    /// rendered `Type::fn (file:line)` per hop. Empty for direct effects.
    pub hops: Vec<String>,
}

/// Direct facts for one function.
#[derive(Debug, Default, Clone)]
pub struct DirectFacts {
    pub locks: Vec<HeldLock>,
    pub blocking: Vec<BlockingOp>,
}

/// The computed dataflow: direct facts plus transitive summaries, both
/// indexed by `FnId`.
pub struct Dataflow {
    pub direct: Vec<DirectFacts>,
    /// Everything a call to this function may do, including through its
    /// callees up to the configured depth.
    pub summary: Vec<Vec<Effect>>,
}

fn punct_at(model: &FileModel, i: usize, c: char) -> bool {
    matches!(model.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Direct blocking operations in a function body: `ident(` where the
/// ident is a configured blocking method and the token is not a fn
/// definition. Method position (`.recv(`) and free position (`sleep(`)
/// both match — `thread::sleep` lexes as `thread : : sleep (`.
fn blocking_ops(model: &FileModel, fn_idx: usize, cfg: &Config) -> Vec<BlockingOp> {
    let f = &model.functions[fn_idx];
    let mut out = Vec::new();
    for i in f.body_start + 1..f.body_end.saturating_sub(1).min(model.tokens.len()) {
        if model.fn_of[i] != Some(fn_idx) || model.in_test[i] {
            continue;
        }
        let Tok::Ident(name) = &model.tokens[i].tok else {
            continue;
        };
        if !cfg.blocking_methods.iter().any(|m| m == name) {
            continue;
        }
        if !punct_at(model, i + 1, '(') {
            continue;
        }
        if i > 0 && matches!(&model.tokens[i - 1].tok, Tok::Ident(k) if k == "fn") {
            continue;
        }
        out.push(BlockingOp {
            method: name.clone(),
            line: model.tokens[i].line,
            token: i,
        });
    }
    out
}

/// Direct lock facts for every function of one file, resolved through
/// the config aliases.
fn lock_facts(model: &FileModel, file: &str, cfg: &Config) -> HashMap<usize, Vec<HeldLock>> {
    let mut out: HashMap<usize, Vec<HeldLock>> = HashMap::new();
    for acq in acquisitions(model) {
        let until = held_until(model, &acq);
        let name = cfg.resolve_lock(file, &acq.path).map(|s| s.to_string());
        out.entry(acq.fn_id).or_default().push(HeldLock {
            name,
            path: acq.path,
            line: acq.line,
            token: acq.token,
            until,
        });
    }
    out
}

impl Dataflow {
    /// Compute direct facts and transitive summaries for the workspace.
    pub fn build(files: &[FileUnit], graph: &CallGraph, cfg: &Config) -> Dataflow {
        let n = graph.nodes.len();
        let mut direct = vec![DirectFacts::default(); n];

        for (file_idx, unit) in files.iter().enumerate() {
            let mut per_fn = lock_facts(&unit.model, &unit.path, cfg);
            for (fn_idx, _) in unit.model.functions.iter().enumerate() {
                let Some(id) = graph.node_of(file_idx, fn_idx) else {
                    continue;
                };
                if graph.nodes[id].in_test {
                    continue;
                }
                direct[id] = DirectFacts {
                    locks: per_fn.remove(&fn_idx).unwrap_or_default(),
                    blocking: blocking_ops(&unit.model, fn_idx, cfg),
                };
            }
        }

        // Seed summaries with each function's own effects (no hops).
        let seed: Vec<Vec<Effect>> = (0..n)
            .map(|id| {
                let mut s = Vec::new();
                for l in &direct[id].locks {
                    let (kind, name) = match &l.name {
                        Some(name) => (EffectKind::Lock, name.clone()),
                        None => (EffectKind::UndeclaredLock, l.path.clone()),
                    };
                    s.push(Effect {
                        kind,
                        name,
                        file: graph.nodes[id].file.clone(),
                        line: l.line,
                        hops: Vec::new(),
                    });
                }
                for b in &direct[id].blocking {
                    s.push(Effect {
                        kind: EffectKind::Blocking,
                        name: b.method.clone(),
                        file: graph.nodes[id].file.clone(),
                        line: b.line,
                        hops: Vec::new(),
                    });
                }
                s
            })
            .collect();

        // Bounded fixed point: each round folds direct callee summaries
        // once, so after k rounds effects have propagated up chains of
        // length k. Keyed insert-if-absent keeps the first (shortest)
        // chain per (kind, name) and terminates on recursion.
        let mut summary = seed.clone();
        for _ in 0..cfg.call_depth() {
            let prev = summary.clone();
            let mut next = seed.clone();
            for (id, acc) in next.iter_mut().enumerate() {
                let mut have: std::collections::HashSet<(EffectKind, String)> =
                    acc.iter().map(|e| (e.kind, e.name.clone())).collect();
                for call in &graph.calls[id] {
                    let callee = &graph.nodes[call.callee];
                    if callee.in_test {
                        continue;
                    }
                    let hop = format!("{} ({}:{})", callee.qname(), callee.file, call.line);
                    for e in &prev[call.callee] {
                        let key = (e.kind, e.name.clone());
                        if have.contains(&key) {
                            continue;
                        }
                        have.insert(key);
                        let mut hops = Vec::with_capacity(e.hops.len() + 1);
                        hops.push(hop.clone());
                        hops.extend(e.hops.iter().cloned());
                        acc.push(Effect {
                            kind: e.kind,
                            name: e.name.clone(),
                            file: e.file.clone(),
                            line: e.line,
                            hops,
                        });
                    }
                }
            }
            summary = next;
        }

        Dataflow { direct, summary }
    }

    /// Transitive effects of calling `callee`, chain-prefixed with the
    /// call hop itself — ready to embed in a finding message.
    pub fn effects_of_call(
        &self,
        graph: &CallGraph,
        callee: FnId,
        call_line: usize,
    ) -> Vec<Effect> {
        let node = &graph.nodes[callee];
        let hop = format!("{} ({}:{})", node.qname(), node.file, call_line);
        self.summary[callee]
            .iter()
            .map(|e| {
                let mut hops = Vec::with_capacity(e.hops.len() + 1);
                hops.push(hop.clone());
                hops.extend(e.hops.iter().cloned());
                Effect {
                    kind: e.kind,
                    name: e.name.clone(),
                    file: e.file.clone(),
                    line: e.line,
                    hops,
                }
            })
            .collect()
    }
}

/// Render an effect's call chain for a finding message:
/// `via Store::seal (crates/…/lsm.rs:552) → Wal::sync (crates/…/wal.rs:193)`.
pub fn render_chain(hops: &[String]) -> String {
    if hops.is_empty() {
        String::new()
    } else {
        format!(" via {}", hops.join(" → "))
    }
}

/// An ordered durability event inside a configured function chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurEvent {
    /// A `sync`-class call on a WAL-tagged receiver.
    Sync { line: usize },
    /// A `truncate`-class call on a WAL-tagged receiver.
    Truncate {
        line: usize,
        file: String,
        function: String,
        method: String,
        /// Call chain from the configured root down to this site.
        hops: Vec<String>,
    },
}

/// Does `path` denote one of the configured WAL receivers? Matches the
/// whole path or a dotted suffix (`wal` matches both `wal` and
/// `self.wal`).
fn is_wal_path(cfg: &Config, path: &str) -> bool {
    cfg.durability_wal_paths
        .iter()
        .any(|w| path == w || path.ends_with(&format!(".{w}")))
}

/// Flatten the token-order durability events of `id`'s body, recursing
/// into resolved non-test callees (bounded by remaining `depth`, with a
/// visited stack as the cycle guard). A call site that is itself a
/// sync/truncate event does not recurse.
pub fn durability_events(
    files: &[FileUnit],
    graph: &CallGraph,
    cfg: &Config,
    id: FnId,
    depth: usize,
    stack: &mut Vec<FnId>,
    out: &mut Vec<DurEvent>,
) {
    if stack.contains(&id) {
        return;
    }
    stack.push(id);
    let node = &graph.nodes[id];
    let unit = &files[node.file_idx];
    let model = &unit.model;
    let f = &model.functions[node.fn_idx];

    // Calls from this body, by token index, for in-order interleaving.
    let calls: HashMap<usize, FnId> = graph.calls[id]
        .iter()
        .map(|c| (c.token, c.callee))
        .collect();

    for i in f.body_start + 1..f.body_end.saturating_sub(1).min(model.tokens.len()) {
        if model.fn_of[i] != Some(node.fn_idx) || model.in_test[i] {
            continue;
        }
        let Tok::Ident(name) = &model.tokens[i].tok else {
            continue;
        };
        if !punct_at(model, i + 1, '(') {
            continue;
        }
        let is_sync = cfg.durability_sync.iter().any(|m| m == name);
        let is_trunc = cfg.durability_truncate.iter().any(|m| m == name);
        if (is_sync || is_trunc) && i > 0 && punct_at(model, i - 1, '.') {
            let recv = crate::rules::locks::receiver_path(model, i - 1);
            if is_wal_path(cfg, &recv) {
                let line = model.tokens[i].line;
                if is_sync {
                    out.push(DurEvent::Sync { line });
                } else {
                    out.push(DurEvent::Truncate {
                        line,
                        file: unit.path.clone(),
                        function: model.fn_name(i).to_string(),
                        method: name.clone(),
                        hops: stack.iter().map(|&s| graph.nodes[s].qname()).collect(),
                    });
                }
                continue;
            }
        }
        if depth > 0 {
            if let Some(&callee) = calls.get(&i) {
                if !graph.nodes[callee].in_test {
                    durability_events(files, graph, cfg, callee, depth - 1, stack, out);
                }
            }
        }
    }
    stack.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::lexer::lex;
    use crate::parse::model;

    fn unit(path: &str, src: &str) -> FileUnit {
        FileUnit {
            path: path.to_string(),
            crate_name: "t".to_string(),
            model: model(lex(src)),
        }
    }

    fn cfg() -> Config {
        let mut c = Config {
            lock_order: vec!["l.a".into(), "l.b".into()],
            blocking_methods: vec!["sleep".into(), "sync".into(), "recv".into()],
            ..Config::default()
        };
        c.lock_aliases.insert("a".into(), "l.a".into());
        c.lock_aliases.insert("b".into(), "l.b".into());
        c
    }

    #[test]
    fn transitive_lock_and_blocking_effects_propagate_with_chains() {
        let src = r#"
            fn leaf(b: M, f: F) {
                let g = b.lock();
                f.sync();
            }
            fn mid(b: M, f: F) { leaf(b, f); }
            fn top(b: M, f: F) { mid(b, f); }
        "#;
        let files = vec![unit("x.rs", src)];
        let graph = CallGraph::build(&files);
        let mut c = cfg();
        c.max_call_depth = 4;
        let flow = Dataflow::build(&files, &graph, &c);
        let top = graph.resolve_name("top")[0];
        let locks: Vec<_> = flow.summary[top]
            .iter()
            .filter(|e| e.kind == EffectKind::Lock)
            .collect();
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].name, "l.b");
        assert_eq!(locks[0].hops.len(), 2, "{:?}", locks[0].hops);
        assert!(locks[0].hops[0].starts_with("mid "));
        assert!(locks[0].hops[1].starts_with("leaf "));
        assert!(flow.summary[top]
            .iter()
            .any(|e| e.kind == EffectKind::Blocking && e.name == "sync"));
    }

    #[test]
    fn depth_bound_cuts_off_deep_chains() {
        let src = r#"
            fn leaf(b: M) { let g = b.lock(); }
            fn mid(b: M) { leaf(b); }
            fn top(b: M) { mid(b); }
        "#;
        let files = vec![unit("x.rs", src)];
        let graph = CallGraph::build(&files);
        let mut c = cfg();
        c.max_call_depth = 1;
        let flow = Dataflow::build(&files, &graph, &c);
        let top = graph.resolve_name("top")[0];
        assert!(
            !flow.summary[top].iter().any(|e| e.kind == EffectKind::Lock),
            "depth 1 must not see a 2-hop acquisition"
        );
        let mid = graph.resolve_name("mid")[0];
        assert!(flow.summary[mid].iter().any(|e| e.kind == EffectKind::Lock));
    }

    #[test]
    fn recursion_terminates() {
        let src = r#"
            fn ping(b: M) { let g = b.lock(); pong(b); }
            fn pong(b: M) { ping(b); }
        "#;
        let files = vec![unit("x.rs", src)];
        let graph = CallGraph::build(&files);
        let flow = Dataflow::build(&files, &graph, &cfg());
        let pong = graph.resolve_name("pong")[0];
        assert!(flow.summary[pong]
            .iter()
            .any(|e| e.kind == EffectKind::Lock && e.name == "l.b"));
    }

    #[test]
    fn durability_events_flatten_through_calls_in_order() {
        let src = r#"
            struct S { wal: W }
            impl S {
                fn flush_wal(&self) { self.wal.sync(); }
                fn seal(&self) {
                    self.flush_wal();
                    self.wal.truncate();
                }
                fn broken(&self) {
                    self.wal.truncate();
                    self.flush_wal();
                }
            }
        "#;
        let files = vec![unit("s.rs", src)];
        let graph = CallGraph::build(&files);
        let mut c = cfg();
        c.durability_sync = vec!["sync".into()];
        c.durability_truncate = vec!["truncate".into()];
        c.durability_wal_paths = vec!["wal".into()];
        let seal = graph.resolve_name("S::seal")[0];
        let mut events = Vec::new();
        durability_events(&files, &graph, &c, seal, 4, &mut Vec::new(), &mut events);
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(matches!(events[0], DurEvent::Sync { .. }));
        assert!(matches!(events[1], DurEvent::Truncate { .. }));

        let broken = graph.resolve_name("S::broken")[0];
        let mut events = Vec::new();
        durability_events(&files, &graph, &c, broken, 4, &mut Vec::new(), &mut events);
        assert!(matches!(events[0], DurEvent::Truncate { .. }));
        assert!(matches!(events[1], DurEvent::Sync { .. }));
    }
}
