//! A hand-rolled Rust lexer — just enough fidelity for the rule families.
//!
//! The rules never need full parsing: they pattern-match short token
//! sequences (`.unwrap` `(` `)`, `_` `=` `>`, `counter` `(` `"…"`). What
//! they *do* need is for comments, strings (including raw and byte
//! strings), char literals, and lifetimes to never masquerade as code —
//! a `// .unwrap()` in a comment or an `"unreachable!"` in a string must
//! not produce findings. That is the bar this lexer clears.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (also the lone `_`).
    Ident(String),
    /// Lifetime (`'a`) — kept distinct so it never looks like code.
    Lifetime,
    /// Any string/char/byte-string literal; payload is the cooked content
    /// (escape handling is minimal — metric names are plain ASCII).
    Str(String),
    /// Numeric literal (value never matters to the rules).
    Num,
    /// Any other single character (`.` `(` `)` `{` `}` `[` `]` `!` …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens. Never fails: unterminated constructs simply run
/// to end-of-file (the lint must not crash on any input it is pointed at).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                let s = lex_string(&mut cur);
                out.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'a` followed by a non-quote is
                // a lifetime; `'a'`, `'\n'` etc. are chars.
                let next = cur.peek(1);
                let after = cur.peek(2);
                let is_lifetime = matches!(next, Some(n) if is_ident_start(n))
                    && after != Some(b'\'')
                    && next != Some(b'\\');
                if is_lifetime {
                    cur.bump(); // '
                    while matches!(cur.peek(0), Some(n) if is_ident_cont(n)) {
                        cur.bump();
                    }
                    out.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    cur.bump(); // opening '
                    if cur.peek(0) == Some(b'\\') {
                        cur.bump();
                        cur.bump(); // escaped char (`\n`, `\'`, `\\`, …)
                                    // multi-char escapes (\x41, \u{..}) run to the quote
                        while cur.peek(0).is_some() && cur.peek(0) != Some(b'\'') {
                            cur.bump();
                        }
                    } else {
                        cur.bump(); // the char itself
                    }
                    if cur.peek(0) == Some(b'\'') {
                        cur.bump(); // closing '
                    }
                    out.push(Token {
                        tok: Tok::Str(String::new()),
                        line,
                    });
                }
            }
            _ if b.is_ascii_digit() => {
                // Number: digits plus alphanumeric suffix soup; a `.` only
                // joins when followed by a digit (so `0..n` stays a range
                // and `x.1` tuple indexing keeps its dot).
                cur.bump();
                loop {
                    match cur.peek(0) {
                        Some(c) if is_ident_cont(c) => {
                            cur.bump();
                        }
                        Some(b'.') if matches!(cur.peek(1), Some(d) if d.is_ascii_digit()) => {
                            cur.bump();
                        }
                        _ => break,
                    }
                }
                out.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            _ if is_ident_start(b) => {
                // Might be a string prefix: r"", r#""#, b"", br#""#, c"".
                if let Some(s) = try_lex_prefixed_string(&mut cur) {
                    out.push(Token {
                        tok: Tok::Str(s),
                        line,
                    });
                    continue;
                }
                let start = cur.pos;
                while matches!(cur.peek(0), Some(c) if is_ident_cont(c)) {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.push(Token {
                    tok: Tok::Ident(text),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.push(Token {
                    tok: Tok::Punct(b as char),
                    line,
                });
            }
        }
    }
    out
}

/// Cooked string starting at the opening `"`. Returns the content with
/// simple escapes resolved.
fn lex_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening "
    let mut out = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            b'"' => {
                cur.bump();
                break;
            }
            b'\\' => {
                cur.bump();
                if let Some(esc) = cur.bump() {
                    match esc {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'0' => out.push('\0'),
                        other => out.push(other as char),
                    }
                }
            }
            other => {
                cur.bump();
                out.push(other as char);
            }
        }
    }
    out
}

/// Raw string starting after the `r` prefix: `#`*n* `"` … `"` `#`*n*.
fn lex_raw_string(cur: &mut Cursor<'_>) -> String {
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) == Some(b'"') {
        cur.bump();
    }
    let mut out = String::new();
    'outer: while let Some(c) = cur.peek(0) {
        if c == b'"' {
            // Candidate close: `"` followed by `hashes` hash marks.
            for i in 0..hashes {
                if cur.peek(1 + i) != Some(b'#') {
                    cur.bump();
                    out.push('"');
                    continue 'outer;
                }
            }
            cur.bump();
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        cur.bump();
        out.push(c as char);
    }
    out
}

/// If the cursor sits on a string prefix (`r`, `b`, `br`, `rb`, `c`…),
/// consume the whole literal and return its content.
fn try_lex_prefixed_string(cur: &mut Cursor<'_>) -> Option<String> {
    let (prefix_len, raw) = match (cur.peek(0), cur.peek(1), cur.peek(2)) {
        (Some(b'r'), Some(b'"' | b'#'), _) => (1, true),
        (Some(b'b' | b'c'), Some(b'"'), _) => (1, false),
        (Some(b'b'), Some(b'r'), Some(b'"' | b'#')) => (2, true),
        _ => return None,
    };
    for _ in 0..prefix_len {
        cur.bump();
    }
    Some(if raw {
        lex_raw_string(cur)
    } else {
        lex_string(cur)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r###"
            // x.unwrap() in a comment
            /* panic!("no") /* nested */ still comment */
            let s = "contains .unwrap() and panic!";
            let r = r#"raw "quoted" .expect("x")"#;
            let b = b"bytes .unwrap()";
            real.unwrap();
        "###;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|i| *i == "unwrap").count(),
            1,
            "only the real call survives: {ids:?}"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| matches!(t.tok, Tok::Str(_))).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn string_values_are_cooked() {
        let toks = lex(r#"counter("net.shed")"#);
        assert!(toks
            .iter()
            .any(|t| t.tok == Tok::Str("net.shed".to_string())));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = lex("for i in 0..10 {}");
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
