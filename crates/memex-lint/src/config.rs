//! `LINT.toml` — rule configuration plus the checked-in violation
//! baseline, parsed with a hand-rolled reader for the TOML subset the
//! file actually uses (tables, array-of-tables, string/number values,
//! string arrays, quoted keys, comments).
//!
//! The baseline lives between `# --- BEGIN BASELINE` / `# --- END
//! BASELINE` markers so `--fix-baseline` can regenerate it textually
//! without disturbing the hand-written configuration above it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which rule family a finding (or baseline entry) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    Panic,
    Locks,
    Metrics,
    Codec,
    /// Blocking operation while a declared lock guard is live.
    Blocking,
    /// Cross-function lock order / recursion through the call graph.
    CrossLocks,
    /// WAL truncate without a preceding sync in a configured fn chain.
    Durability,
    /// Panic site reachable from a serving-crate dispatch root.
    PanicReach,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Locks => "locks",
            Rule::Metrics => "metrics",
            Rule::Codec => "codec",
            Rule::Blocking => "blocking",
            Rule::CrossLocks => "locks-cross",
            Rule::Durability => "durability",
            Rule::PanicReach => "panic-reach",
        }
    }

    pub fn from_name(s: &str) -> Option<Rule> {
        match s {
            "panic" => Some(Rule::Panic),
            "locks" => Some(Rule::Locks),
            "metrics" => Some(Rule::Metrics),
            "codec" => Some(Rule::Codec),
            "blocking" => Some(Rule::Blocking),
            "locks-cross" => Some(Rule::CrossLocks),
            "durability" => Some(Rule::Durability),
            "panic-reach" => Some(Rule::PanicReach),
            _ => None,
        }
    }
}

/// Parsed `LINT.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Crates whose non-test `src/` code must be panic-free.
    pub panic_crates: Vec<String>,
    /// Files whose configured functions must have wildcard-free matches.
    pub codec_files: Vec<String>,
    /// Function names the codec rule applies to within `codec_files`.
    pub codec_functions: Vec<String>,
    /// Repo-relative path of the metric catalog document.
    pub metrics_catalog: String,
    /// Declared lock acquisition order, outermost first.
    pub lock_order: Vec<String>,
    /// Receiver-path → lock-name aliases. Keys are either a bare path
    /// suffix (`shared.memex`) or file-scoped (`server.rs:rx`).
    pub lock_aliases: BTreeMap<String, String>,
    /// Baseline: (rule, file) → tolerated finding count.
    pub baseline: BTreeMap<(Rule, String), usize>,
    /// Method names the blocking rule treats as blocking operations.
    pub blocking_methods: Vec<String>,
    /// `(lock name, function name-or-qname)` pairs exempted from the
    /// blocking rule — deliberate blocking-under-lock (e.g. a
    /// mutex-wrapped channel receiver).
    pub blocking_allow: Vec<(String, String)>,
    /// Function names (bare or `Type::name`) the durability rule roots
    /// its chain analysis at.
    pub durability_functions: Vec<String>,
    /// Method names counting as a durability `sync` event.
    pub durability_sync: Vec<String>,
    /// Method names counting as a durability `truncate` event.
    pub durability_truncate: Vec<String>,
    /// Receiver paths (or dotted suffixes) tagged as WAL storage.
    pub durability_wal_paths: Vec<String>,
    /// Dispatch roots (bare or `Type::name`) for panic-reachability.
    pub reach_roots: Vec<String>,
    /// Interprocedural propagation depth; 0 means "default" (4).
    pub max_call_depth: usize,
}

const BASELINE_BEGIN: &str = "# --- BEGIN BASELINE";
const BASELINE_END: &str = "# --- END BASELINE";

/// Strip a trailing comment from a TOML line (respecting quotes).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}

/// Parse a `["a", "b", …]` array body (already brace-stripped) into items.
fn parse_string_array(body: &str) -> Vec<String> {
    body.split(',')
        .map(unquote)
        .filter(|s| !s.is_empty())
        .collect()
}

impl Config {
    /// Parse the configuration text. Unknown keys are ignored (forward
    /// compatibility); malformed lines produce an error naming the line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        // Pending [[allow]] entry fields.
        let mut allow_rule: Option<Rule> = None;
        let mut allow_file: Option<String> = None;
        let mut allow_count: Option<usize> = None;
        // Pending [[blocking.allow]] entry fields.
        let mut ba_lock: Option<String> = None;
        let mut ba_func: Option<String> = None;
        // Multi-line array accumulation: (key, partial body).
        let mut open_array: Option<(String, String)> = None;

        let flush_allow =
            |rule: &mut Option<Rule>,
             file: &mut Option<String>,
             count: &mut Option<usize>,
             baseline: &mut BTreeMap<(Rule, String), usize>| {
                if let (Some(r), Some(f), Some(c)) = (rule.take(), file.take(), count.take()) {
                    baseline.insert((r, f), c);
                }
            };
        let flush_block = |lock: &mut Option<String>,
                           func: &mut Option<String>,
                           allow: &mut Vec<(String, String)>| {
            if let (Some(l), Some(f)) = (lock.take(), func.take()) {
                allow.push((l, f));
            }
        };

        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some((key, mut body)) = open_array.take() {
                // Continuing a multi-line array.
                body.push_str(line);
                if line.ends_with(']') {
                    let inner = body.trim_end_matches(']').to_string();
                    cfg.assign_array(&section, &key, parse_string_array(&inner));
                } else {
                    open_array = Some((key, body));
                }
                continue;
            }
            if line.starts_with("[[") && line.ends_with("]]") {
                flush_allow(
                    &mut allow_rule,
                    &mut allow_file,
                    &mut allow_count,
                    &mut cfg.baseline,
                );
                flush_block(&mut ba_lock, &mut ba_func, &mut cfg.blocking_allow);
                section = line[2..line.len() - 2].trim().to_string();
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                flush_allow(
                    &mut allow_rule,
                    &mut allow_file,
                    &mut allow_count,
                    &mut cfg.baseline,
                );
                flush_block(&mut ba_lock, &mut ba_func, &mut cfg.blocking_allow);
                section = line[1..line.len() - 1].trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("LINT.toml line {}: expected key = value", ln + 1));
            };
            let key = unquote(key);
            let value = value.trim();
            if let Some(body) = value.strip_prefix('[') {
                if let Some(inner) = body.strip_suffix(']') {
                    cfg.assign_array(&section, &key, parse_string_array(inner));
                } else {
                    open_array = Some((key, body.to_string()));
                }
                continue;
            }
            match (section.as_str(), key.as_str()) {
                ("allow", "rule") => {
                    allow_rule = Rule::from_name(&unquote(value));
                    if allow_rule.is_none() {
                        return Err(format!("LINT.toml line {}: unknown rule {value:?}", ln + 1));
                    }
                }
                ("allow", "file") => allow_file = Some(unquote(value)),
                ("allow", "count") => {
                    allow_count = Some(value.parse().map_err(|_| {
                        format!("LINT.toml line {}: count must be an integer", ln + 1)
                    })?)
                }
                ("lint", "metrics_catalog") => cfg.metrics_catalog = unquote(value),
                ("locks.aliases", _) => {
                    cfg.lock_aliases.insert(key, unquote(value));
                }
                ("blocking.allow", "lock") => ba_lock = Some(unquote(value)),
                ("blocking.allow", "function") => ba_func = Some(unquote(value)),
                ("interproc", "max_call_depth") => {
                    cfg.max_call_depth = value.parse().map_err(|_| {
                        format!(
                            "LINT.toml line {}: max_call_depth must be an integer",
                            ln + 1
                        )
                    })?
                }
                _ => {} // unknown key: ignore
            }
        }
        flush_allow(
            &mut allow_rule,
            &mut allow_file,
            &mut allow_count,
            &mut cfg.baseline,
        );
        flush_block(&mut ba_lock, &mut ba_func, &mut cfg.blocking_allow);
        if cfg.metrics_catalog.is_empty() {
            cfg.metrics_catalog = "docs/METRICS.md".to_string();
        }
        Ok(cfg)
    }

    fn assign_array(&mut self, section: &str, key: &str, items: Vec<String>) {
        match (section, key) {
            ("lint", "panic_crates") => self.panic_crates = items,
            ("lint", "codec_files") => self.codec_files = items,
            ("lint", "codec_functions") => self.codec_functions = items,
            ("locks", "order") => self.lock_order = items,
            ("blocking", "methods") => self.blocking_methods = items,
            ("durability", "functions") => self.durability_functions = items,
            ("durability", "sync_methods") => self.durability_sync = items,
            ("durability", "truncate_methods") => self.durability_truncate = items,
            ("durability", "wal_paths") => self.durability_wal_paths = items,
            ("reachability", "roots") => self.reach_roots = items,
            _ => {}
        }
    }

    /// Index of a lock name in the declared order, if declared.
    pub fn lock_rank(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|n| n == name)
    }

    /// Effective interprocedural propagation depth (default 4).
    pub fn call_depth(&self) -> usize {
        if self.max_call_depth == 0 {
            4
        } else {
            self.max_call_depth
        }
    }

    /// Is `(lock, function)` exempted from the blocking rule? Function
    /// matches on the bare name or the `Type::name` qname.
    pub fn blocking_allowed(&self, lock: &str, name: &str, qname: &str) -> bool {
        self.blocking_allow
            .iter()
            .any(|(l, f)| l == lock && (f == name || f == qname))
    }

    /// Resolve a receiver path (e.g. `shared.memex`) in `file` (repo-
    /// relative path) to a declared lock name. Tries file-scoped aliases
    /// (`server.rs:memex`) before bare ones, longest path suffix first.
    pub fn resolve_lock(&self, file: &str, path: &str) -> Option<&str> {
        let basename = file.rsplit('/').next().unwrap_or(file);
        let segments: Vec<&str> = path.split('.').collect();
        for start in 0..segments.len() {
            let suffix = segments[start..].join(".");
            if let Some(name) = self.lock_aliases.get(&format!("{basename}:{suffix}")) {
                return Some(name);
            }
        }
        for start in 0..segments.len() {
            let suffix = segments[start..].join(".");
            if let Some(name) = self.lock_aliases.get(&suffix) {
                return Some(name);
            }
        }
        None
    }
}

/// Render a baseline section body from (rule, file) → count.
pub fn render_baseline(baseline: &BTreeMap<(Rule, String), usize>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{BASELINE_BEGIN} (regenerate with: cargo run -p memex-lint -- --fix-baseline) ---"
    );
    for ((rule, file), count) in baseline {
        if *count == 0 {
            continue;
        }
        let _ = writeln!(out, "\n[[allow]]");
        let _ = writeln!(out, "rule = \"{}\"", rule.name());
        let _ = writeln!(out, "file = \"{file}\"");
        let _ = writeln!(out, "count = {count}");
    }
    let _ = writeln!(out, "{BASELINE_END} ---");
    out
}

/// Replace the baseline section of the LINT.toml text (everything between
/// the BEGIN/END markers, inclusive) with a freshly rendered one. When no
/// markers exist, the section is appended.
pub fn splice_baseline(text: &str, baseline: &BTreeMap<(Rule, String), usize>) -> String {
    let rendered = render_baseline(baseline);
    let begin = text.find(BASELINE_BEGIN);
    let end = text
        .find(BASELINE_END)
        .and_then(|p| text[p..].find('\n').map(|nl| p + nl + 1));
    match (begin, end) {
        (Some(b), Some(e)) if b < e => {
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..b]);
            out.push_str(&rendered);
            out.push_str(&text[e..]);
            out
        }
        _ => {
            let mut out = text.trim_end().to_string();
            out.push_str("\n\n");
            out.push_str(&rendered);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[lint]
panic_crates = ["memex-net", "memex-store"]
codec_files = ["crates/memex-net/src/wire.rs"]
codec_functions = [
    "encode_request",
    "decode_request",
]
metrics_catalog = "docs/METRICS.md"

[locks]
order = ["net.accept_rx", "net.memex"]

[locks.aliases]
"server.rs:rx" = "net.accept_rx"
"shared.memex" = "net.memex"

# --- BEGIN BASELINE (regenerate with: cargo run -p memex-lint -- --fix-baseline) ---

[[allow]]
rule = "panic"
file = "crates/memex-store/src/kv.rs"
count = 12
# --- END BASELINE ---
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.panic_crates, vec!["memex-net", "memex-store"]);
        assert_eq!(
            cfg.codec_functions,
            vec!["encode_request", "decode_request"]
        );
        assert_eq!(cfg.lock_order, vec!["net.accept_rx", "net.memex"]);
        assert_eq!(
            cfg.baseline
                .get(&(Rule::Panic, "crates/memex-store/src/kv.rs".into())),
            Some(&12)
        );
    }

    #[test]
    fn lock_resolution_prefers_file_scope_and_longest_suffix() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(
            cfg.resolve_lock("crates/memex-net/src/server.rs", "rx"),
            Some("net.accept_rx")
        );
        assert_eq!(
            cfg.resolve_lock("crates/memex-net/src/server.rs", "shared.memex"),
            Some("net.memex")
        );
        assert_eq!(cfg.resolve_lock("other.rs", "rx"), None);
    }

    #[test]
    fn baseline_splice_round_trips() {
        let mut baseline = BTreeMap::new();
        baseline.insert((Rule::Panic, "a.rs".to_string()), 3usize);
        baseline.insert((Rule::Codec, "b.rs".to_string()), 1usize);
        let spliced = splice_baseline(SAMPLE, &baseline);
        let cfg = Config::parse(&spliced).unwrap();
        assert_eq!(cfg.baseline.len(), 2);
        assert_eq!(cfg.baseline.get(&(Rule::Panic, "a.rs".into())), Some(&3));
        // The hand-written config above the markers survived.
        assert_eq!(cfg.lock_order, vec!["net.accept_rx", "net.memex"]);
        // Splicing twice is stable.
        let again = splice_baseline(&spliced, &baseline);
        assert_eq!(spliced, again);
    }

    #[test]
    fn interproc_sections_parse() {
        let text = r#"
[interproc]
max_call_depth = 3

[blocking]
methods = ["sync", "sleep", "recv"]

[[blocking.allow]]
lock = "net.accept_rx"
function = "worker_loop"
reason = "mutex-wrapped channel receiver: recv under the lock is the design"

[durability]
functions = ["LsmStore::seal", "KvStore::checkpoint"]
sync_methods = ["sync", "sync_all"]
truncate_methods = ["truncate", "set_len"]
wal_paths = ["wal"]

[reachability]
roots = ["accept_loop", "worker_loop"]
"#;
        let cfg = Config::parse(text).unwrap();
        assert_eq!(cfg.max_call_depth, 3);
        assert_eq!(cfg.call_depth(), 3);
        assert_eq!(Config::default().call_depth(), 4);
        assert_eq!(cfg.blocking_methods, vec!["sync", "sleep", "recv"]);
        assert_eq!(
            cfg.blocking_allow,
            vec![("net.accept_rx".to_string(), "worker_loop".to_string())]
        );
        assert!(cfg.blocking_allowed("net.accept_rx", "worker_loop", "worker_loop"));
        assert!(!cfg.blocking_allowed("net.memex", "worker_loop", "worker_loop"));
        assert_eq!(
            cfg.durability_functions,
            vec!["LsmStore::seal", "KvStore::checkpoint"]
        );
        assert_eq!(cfg.durability_wal_paths, vec!["wal"]);
        assert_eq!(cfg.reach_roots, vec!["accept_loop", "worker_loop"]);
    }

    #[test]
    fn new_rule_names_round_trip() {
        for r in [
            Rule::Blocking,
            Rule::CrossLocks,
            Rule::Durability,
            Rule::PanicReach,
        ] {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
    }

    #[test]
    fn zero_count_entries_are_dropped() {
        let mut baseline = BTreeMap::new();
        baseline.insert((Rule::Panic, "a.rs".to_string()), 0usize);
        let body = render_baseline(&baseline);
        assert!(!body.contains("a.rs"));
    }
}
