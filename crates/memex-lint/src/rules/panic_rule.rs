//! Rule family 1: **panic-freedom**.
//!
//! In the long-running serving crates, a panic is an outage-shaped event:
//! it kills a worker thread, poisons whatever lock it held, and turns one
//! bad request into degraded service for everyone behind it. This rule
//! flags the panic-shaped constructs in non-test code — `unwrap()`,
//! `expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, and
//! slice/array indexing (`buf[i]`, `buf[a..b]`) — so every new one must
//! either be rewritten as a typed error or consciously burned into the
//! baseline.

use crate::config::Rule;
use crate::lexer::Tok;
use crate::parse::FileModel;
use crate::rules::Finding;

/// Macro names that unconditionally panic when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without the bracket being an
/// index expression (array literals, mostly).
const NON_INDEX_PREV: [&str; 20] = [
    "return", "break", "in", "if", "else", "match", "as", "mut", "ref", "move", "const", "static",
    "let", "dyn", "impl", "where", "for", "while", "loop", "use",
];

fn punct_at(m: &FileModel, i: usize, c: char) -> bool {
    matches!(m.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// One panic-shaped construct in non-test code.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Token index of the construct.
    pub token: usize,
    pub line: usize,
    pub message: String,
}

/// Collect panic-shaped constructs in non-test code. `include_indexing`
/// controls whether slice/array index expressions count — the in-crate
/// panic rule includes them; panic-reachability deliberately does not
/// (indexing is pervasive in non-panic crates and would drown the
/// signal; see docs/LINT.md).
pub fn sites(model: &FileModel, include_indexing: bool) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for i in 0..model.tokens.len() {
        if model.in_test[i] {
            continue;
        }
        let line = model.tokens[i].line;
        let mut push = |message: String| {
            out.push(PanicSite {
                token: i,
                line,
                message,
            });
        };
        match &model.tokens[i].tok {
            // Method call: `.unwrap()` / `.expect(` — a bare fn named
            // `unwrap` or a struct field does not count.
            Tok::Ident(id)
                if (id == "unwrap" || id == "expect")
                    && i > 0
                    && punct_at(model, i - 1, '.')
                    && punct_at(model, i + 1, '(') =>
            {
                push(format!("`.{id}()` on the non-test path"));
            }
            Tok::Ident(id)
                if PANIC_MACROS.contains(&id.as_str()) && punct_at(model, i + 1, '!') =>
            {
                push(format!("`{id}!` on the non-test path"));
            }
            Tok::Punct('[') if include_indexing && i > 0 => {
                // Index expression: `expr[…]` where expr ends in an
                // identifier, `)`, or `]`. Array literals/types follow
                // punctuation or keywords instead.
                let is_index = match &model.tokens[i - 1].tok {
                    Tok::Ident(prev) => !NON_INDEX_PREV.contains(&prev.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if is_index {
                    push("slice/array index (can panic out-of-bounds)".to_string());
                }
            }
            _ => {}
        }
    }
    out
}

/// Scan one file of a panic-checked crate.
pub fn check(model: &FileModel, file: &str) -> Vec<Finding> {
    sites(model, true)
        .into_iter()
        .map(|s| Finding {
            rule: Rule::Panic,
            file: file.to_string(),
            line: s.line,
            function: model.fn_name(s.token).to_string(),
            message: s.message,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::model;

    fn findings(src: &str) -> Vec<String> {
        check(&model(lex(src)), "f.rs")
            .into_iter()
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn flags_the_panic_family() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a > b { panic!("no"); }
                unreachable!()
            }
        "#;
        let got = findings(src);
        assert_eq!(got.len(), 4, "{got:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            fn live(x: Option<u32>) -> Option<u32> { x }

            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { super::live(Some(1)).unwrap(); }
            }
        "#;
        assert!(findings(src).is_empty());
    }

    #[test]
    fn index_expressions_but_not_array_literals() {
        let src = r#"
            fn f(buf: &[u8], n: usize) -> u8 {
                let arr = [0u8; 4];
                let t: [u8; 2] = [1, 2];
                let x = buf[n];
                let y = &buf[1..n];
                x + y[0] + t[0] + arr[1]
            }
        "#;
        let got = findings(src);
        assert_eq!(got.len(), 5, "{got:?}");
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = r#"
            fn f() -> &'static str {
                // panic!("commented out") and x.unwrap()
                "contains panic! and .unwrap() text"
            }
        "#;
        assert!(findings(src).is_empty());
    }

    #[test]
    fn vec_macro_is_not_an_index() {
        let src = "fn f() -> Vec<u8> { vec![0u8; 4] }";
        assert!(findings(src).is_empty());
    }
}
