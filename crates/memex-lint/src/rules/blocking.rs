//! Rule family 5: **blocking-under-lock**.
//!
//! While a guard for a lock declared in `[locks] order` is live, nothing
//! in the guarded region may block: no file sync/flush, no socket
//! connect/accept/read, no `thread::sleep`, no channel `recv`, no thread
//! `join`. A blocked critical section stalls every other thread queued
//! on that lock — for the serving shards that means writes stall reads,
//! which is exactly the hazard PR 5 split the dispatch path to avoid.
//!
//! The check is interprocedural: a call inside the guarded region whose
//! transitive summary (bounded depth) contains a blocking effect is
//! flagged with the call chain that reaches it. Deliberate designs — a
//! mutex-wrapped channel receiver, a sealed-run write under the manifest
//! lock — are exempted per `(lock, function)` pair via
//! `[[blocking.allow]]`, each with a human-readable `reason`.

use crate::callgraph::{CallGraph, FileUnit};
use crate::config::{Config, Rule};
use crate::dataflow::{render_chain, Dataflow, EffectKind};
use crate::rules::Finding;

/// Check every non-test function of the workspace.
pub fn check(files: &[FileUnit], graph: &CallGraph, flow: &Dataflow, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.in_test {
            continue;
        }
        let model = &files[node.file_idx].model;
        for held in &flow.direct[id].locks {
            // Only locks in the declared order define critical sections;
            // undeclared nesting is the lock rules' business.
            let Some(lock) = held.name.as_deref() else {
                continue;
            };
            if cfg.lock_rank(lock).is_none() {
                continue;
            }
            if cfg.blocking_allowed(lock, &node.name, &node.qname()) {
                continue;
            }
            // Direct blocking ops inside the guarded region.
            for op in &flow.direct[id].blocking {
                if op.token > held.token && op.token < held.until {
                    out.push(Finding {
                        rule: Rule::Blocking,
                        file: node.file.clone(),
                        line: op.line,
                        function: model.fn_name(op.token).to_string(),
                        message: format!(
                            "blocking `{}()` while `{lock}` guard (acquired line {}) is held",
                            op.method, held.line
                        ),
                    });
                }
            }
            // Calls inside the region whose summaries block.
            for call in &graph.calls[id] {
                if call.token <= held.token || call.token >= held.until {
                    continue;
                }
                for e in flow.effects_of_call(graph, call.callee, call.line) {
                    if e.kind != EffectKind::Blocking {
                        continue;
                    }
                    out.push(Finding {
                        rule: Rule::Blocking,
                        file: node.file.clone(),
                        line: call.line,
                        function: model.fn_name(call.token).to_string(),
                        message: format!(
                            "call blocks (`{}()` at {}:{}) while `{lock}` guard \
                             (acquired line {}) is held{}",
                            e.name,
                            e.file,
                            e.line,
                            held.line,
                            render_chain(&e.hops)
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::FileUnit;
    use crate::dataflow::Dataflow;
    use crate::lexer::lex;
    use crate::parse::model;

    fn run(src: &str, allow: &[(&str, &str)]) -> Vec<Finding> {
        let mut cfg = Config {
            lock_order: vec!["l.m".into()],
            blocking_methods: vec!["sleep".into(), "sync".into(), "recv".into()],
            ..Config::default()
        };
        cfg.lock_aliases.insert("m".into(), "l.m".into());
        for (l, f) in allow {
            cfg.blocking_allow.push((l.to_string(), f.to_string()));
        }
        let files = vec![FileUnit {
            path: "x.rs".into(),
            crate_name: "t".into(),
            model: model(lex(src)),
        }];
        let graph = CallGraph::build(&files);
        let flow = Dataflow::build(&files, &graph, &cfg);
        check(&files, &graph, &flow, &cfg)
    }

    #[test]
    fn direct_blocking_under_guard_is_flagged() {
        let src = r#"
            fn f(m: M, file: F) {
                let g = m.lock();
                file.sync();
            }
        "#;
        let got = run(src, &[]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("blocking `sync()`"));
    }

    #[test]
    fn blocking_after_guard_scope_passes() {
        let src = r#"
            fn f(m: M, file: F) {
                {
                    let g = m.lock();
                }
                file.sync();
            }
        "#;
        assert!(run(src, &[]).is_empty());
    }

    #[test]
    fn transitive_blocking_through_a_callee_is_flagged_with_chain() {
        let src = r#"
            fn helper(file: F) { file.sync(); }
            fn f(m: M, file: F) {
                let g = m.lock();
                helper(file);
            }
        "#;
        let got = run(src, &[]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("via helper"), "{}", got[0].message);
    }

    #[test]
    fn allow_entry_exempts_the_pair() {
        let src = r#"
            fn worker(m: M) {
                let g = m.lock();
                g.recv();
            }
        "#;
        assert_eq!(run(src, &[]).len(), 1);
        assert!(run(src, &[("l.m", "worker")]).is_empty());
    }
}
