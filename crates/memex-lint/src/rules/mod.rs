//! The rule families. The intra-function rules (panic, locks, metrics,
//! codec) consume a [`FileModel`](crate::parse::FileModel) plus the
//! repo-relative path; the interprocedural rules (blocking, locks-cross,
//! durability, panic-reach) additionally consume the workspace
//! [`CallGraph`](crate::callgraph::CallGraph) and
//! [`Dataflow`](crate::dataflow::Dataflow). Every rule yields
//! [`Finding`]s; the driver in `lib.rs` applies the baseline and decides
//! the exit code.

pub mod blocking;
pub mod codec;
pub mod durability;
pub mod locks;
pub mod metrics;
pub mod panic_rule;
pub mod reach;

use crate::config::Rule;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Repo-relative path.
    pub file: String,
    pub line: usize,
    /// Enclosing function, or `<file>` outside any.
    pub function: String,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (in {})",
            self.file,
            self.line,
            self.rule.name(),
            self.message,
            self.function
        )
    }
}
