//! The four rule families. Each rule consumes a [`FileModel`] (plus the
//! repo-relative path) and yields [`Finding`]s; the driver in `lib.rs`
//! applies the baseline and decides the exit code.

pub mod codec;
pub mod locks;
pub mod metrics;
pub mod panic_rule;

use crate::config::Rule;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Repo-relative path.
    pub file: String,
    pub line: usize,
    /// Enclosing function, or `<file>` outside any.
    pub function: String,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (in {})",
            self.file,
            self.line,
            self.rule.name(),
            self.message,
            self.function
        )
    }
}
