//! Rule family 8: **panic-reachability** — panics reachable from the
//! serving dispatch roots.
//!
//! The in-crate panic rule (`[lint] panic_crates`) draws the line at
//! crate boundaries: memex-core helpers can `unwrap()` freely because
//! they are "library code". But a helper is on the serving path the
//! moment a dispatch root reaches it — `worker_loop → dispatch →
//! InvertedIndex::query → unwrap()` takes a worker down just as surely
//! as an unwrap in the server itself. This rule walks the call graph
//! from `[reachability] roots` over non-test edges (BFS, recording the
//! shortest chain) and flags `unwrap`/`expect`/panic-macro sites in any
//! reached function *outside* the panic crates (inside them, the
//! per-crate rule already owns the site; double-reporting would double
//! the baseline bookkeeping for the same fix).
//!
//! Indexing sites are deliberately excluded here — they are pervasive in
//! the non-panic crates, and the per-crate rule is the ratchet for them.
//! Findings baseline per (rule, file) like the panic rule, so the
//! existing ratchet covers reachable-panic burn-down too.

use std::collections::{HashMap, VecDeque};

use crate::callgraph::{CallGraph, FileUnit, FnId};
use crate::config::{Config, Rule};
use crate::rules::panic_rule;
use crate::rules::Finding;

/// Check the workspace. `crate_of` maps a node's crate name, used to
/// skip sites the per-crate panic rule already reports.
pub fn check(files: &[FileUnit], graph: &CallGraph, cfg: &Config) -> Vec<Finding> {
    // BFS from every root over non-test edges, keeping parent pointers
    // for the shortest chain.
    let mut parent: HashMap<FnId, Option<FnId>> = HashMap::new();
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    for root in &cfg.reach_roots {
        let ids = graph.resolve_name(root);
        if ids.is_empty() {
            // An unresolvable root silently shrinks the reachable set —
            // surface it as a finding so a rename cannot blind the rule.
            out.push(Finding {
                rule: Rule::PanicReach,
                file: "LINT.toml".to_string(),
                line: 0,
                function: "<config>".to_string(),
                message: format!(
                    "[reachability] roots entry `{root}` matches no function in \
                     the workspace — fix the name or remove the entry"
                ),
            });
            continue;
        }
        for id in ids {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(id) {
                e.insert(None);
                queue.push_back(id);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        for call in &graph.calls[id] {
            let callee = call.callee;
            if graph.nodes[callee].in_test || parent.contains_key(&callee) {
                continue;
            }
            parent.insert(callee, Some(id));
            queue.push_back(callee);
        }
    }

    let chain = |mut id: FnId| -> String {
        let mut names = vec![graph.nodes[id].qname()];
        while let Some(Some(p)) = parent.get(&id) {
            names.push(graph.nodes[*p].qname());
            id = *p;
        }
        names.reverse();
        names.join(" → ")
    };

    for (&id, _) in parent.iter() {
        let node = &graph.nodes[id];
        if cfg.panic_crates.iter().any(|c| c == &node.crate_name) {
            continue; // the per-crate panic rule owns these sites
        }
        let unit = &files[node.file_idx];
        let f = &unit.model.functions[node.fn_idx];
        for site in panic_rule::sites(&unit.model, false) {
            if site.token <= f.body_start || site.token >= f.body_end {
                continue;
            }
            if unit.model.fn_of[site.token] != Some(node.fn_idx) {
                continue;
            }
            out.push(Finding {
                rule: Rule::PanicReach,
                file: node.file.clone(),
                line: site.line,
                function: node.name.clone(),
                message: format!(
                    "{} — reachable from a dispatch root: {}",
                    site.message,
                    chain(id)
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::model;

    fn run(units: &[(&str, &str, &str)], roots: &[&str], panic_crates: &[&str]) -> Vec<Finding> {
        let cfg = Config {
            reach_roots: roots.iter().map(|s| s.to_string()).collect(),
            panic_crates: panic_crates.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        };
        let files: Vec<FileUnit> = units
            .iter()
            .map(|(path, krate, src)| FileUnit {
                path: path.to_string(),
                crate_name: krate.to_string(),
                model: model(lex(src)),
            })
            .collect();
        let graph = CallGraph::build(&files);
        check(&files, &graph, &cfg)
    }

    #[test]
    fn reachable_unwrap_in_helper_crate_is_flagged_with_chain() {
        let server = r#"
            fn worker_loop() { dispatch(); }
            fn dispatch() { lookup(); }
        "#;
        let core = r#"
            pub fn lookup() -> u32 { compute().unwrap() }
            fn compute() -> Option<u32> { Some(1) }
        "#;
        let got = run(
            &[
                ("crates/srv/src/server.rs", "srv", server),
                ("crates/core/src/lib.rs", "core", core),
            ],
            &["worker_loop"],
            &["srv"],
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, Rule::PanicReach);
        assert!(
            got[0].message.contains("worker_loop → dispatch → lookup"),
            "{}",
            got[0].message
        );
    }

    #[test]
    fn unreachable_unwrap_passes() {
        let core = r#"
            pub fn lookup() -> u32 { 1 }
            pub fn offline_tool() -> u32 { maybe().unwrap() }
            fn maybe() -> Option<u32> { Some(1) }
        "#;
        let server = "fn worker_loop() { lookup(); }";
        let got = run(
            &[
                ("crates/srv/src/server.rs", "srv", server),
                ("crates/core/src/lib.rs", "core", core),
            ],
            &["worker_loop"],
            &["srv"],
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn panic_crate_sites_are_left_to_the_per_crate_rule() {
        let server = r#"
            fn worker_loop() { helper(); }
            fn helper() { danger().unwrap(); }
            fn danger() -> Option<u32> { None }
        "#;
        let got = run(
            &[("crates/srv/src/server.rs", "srv", server)],
            &["worker_loop"],
            &["srv"],
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn test_only_chains_do_not_reach() {
        let server = r#"
            fn worker_loop() { serve(); }
            fn serve() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { super::serve(); helper_for_tests(); }
            }
        "#;
        let core = r#"
            pub fn helper_for_tests() -> u32 { maybe().unwrap() }
            fn maybe() -> Option<u32> { Some(1) }
        "#;
        let got = run(
            &[
                ("crates/srv/src/server.rs", "srv", server),
                ("crates/core/src/lib.rs", "core", core),
            ],
            &["worker_loop"],
            &["srv"],
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
