//! Rule family 7: **durability-order** — sync-before-truncate on WAL
//! storage, checked along call chains.
//!
//! The bug class: a checkpoint that truncates the WAL before the state
//! it covers is durable loses committed writes on crash. PR 2 found it
//! in `KvStore::checkpoint`, PR 4 re-found it under review, PR 8 had to
//! get it right again in `LsmStore::seal`. This rule encodes the
//! invariant: within each function chain rooted at a `[durability]
//! functions` entry, every `truncate`/`set_len` on a WAL-tagged receiver
//! (`[durability] wal_paths`) must be preceded — in flattened call
//! order, recursing through resolved callees — by a `sync`-class call on
//! WAL storage.
//!
//! Findings are **hard**: the baseline cannot absorb them. A truncate
//! that is legitimately sync-free (e.g. the inner `checkpoint_wal`
//! helper whose callers sync first) should not be listed as a root —
//! roots are the entry points whose *whole chains* carry the invariant.

use crate::callgraph::{CallGraph, FileUnit};
use crate::config::{Config, Rule};
use crate::dataflow::{durability_events, DurEvent};
use crate::rules::Finding;

/// Check every configured root in the workspace.
pub fn check(files: &[FileUnit], graph: &CallGraph, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for root in &cfg.durability_functions {
        let ids = graph.resolve_name(root);
        if ids.is_empty() {
            // A root that matches nothing makes the whole pass vacuous —
            // fail loudly (hard, like every durability finding) so a
            // rename cannot silently retire the invariant.
            out.push(Finding {
                rule: Rule::Durability,
                file: "LINT.toml".to_string(),
                line: 0,
                function: "<config>".to_string(),
                message: format!(
                    "[durability] functions entry `{root}` matches no function in \
                     the workspace — fix the name or remove the entry"
                ),
            });
            continue;
        }
        for id in ids {
            let mut events = Vec::new();
            durability_events(
                files,
                graph,
                cfg,
                id,
                cfg.call_depth(),
                &mut Vec::new(),
                &mut events,
            );
            let mut synced = false;
            for ev in &events {
                match ev {
                    DurEvent::Sync { .. } => synced = true,
                    DurEvent::Truncate {
                        line,
                        file,
                        function,
                        method,
                        hops,
                    } => {
                        if !synced {
                            let chain = if hops.len() > 1 {
                                format!(" (chain: {})", hops.join(" → "))
                            } else {
                                String::new()
                            };
                            out.push(Finding {
                                rule: Rule::Durability,
                                file: file.clone(),
                                line: *line,
                                function: function.clone(),
                                message: format!(
                                    "durability order violation in `{root}` chain: \
                                     `{method}()` on WAL storage before any `sync`{chain} \
                                     — committed state must be durable before the log \
                                     that covers it is destroyed"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::model;

    fn run(src: &str, roots: &[&str]) -> Vec<Finding> {
        let cfg = Config {
            durability_functions: roots.iter().map(|s| s.to_string()).collect(),
            durability_sync: vec!["sync".into(), "sync_all".into()],
            durability_truncate: vec!["truncate".into(), "set_len".into()],
            durability_wal_paths: vec!["wal".into()],
            ..Config::default()
        };
        let files = vec![FileUnit {
            path: "s.rs".into(),
            crate_name: "t".into(),
            model: model(lex(src)),
        }];
        let graph = CallGraph::build(&files);
        check(&files, &graph, &cfg)
    }

    #[test]
    fn sync_before_truncate_passes_truncate_first_fails() {
        let good = r#"
            struct S { wal: W }
            impl S {
                fn seal(&self) {
                    self.wal.sync();
                    self.wal.truncate();
                }
            }
        "#;
        assert!(run(good, &["S::seal"]).is_empty());
        let bad = r#"
            struct S { wal: W }
            impl S {
                fn seal(&self) {
                    self.wal.truncate();
                    self.wal.sync();
                }
            }
        "#;
        let got = run(bad, &["S::seal"]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, Rule::Durability);
    }

    #[test]
    fn order_is_checked_across_helpers() {
        // The sync lives in a helper the root calls first: fine.
        let good = r#"
            struct S { wal: W }
            impl S {
                fn make_durable(&self) { self.wal.sync(); }
                fn seal(&self) {
                    self.make_durable();
                    self.wal.truncate();
                }
            }
        "#;
        assert!(run(good, &["S::seal"]).is_empty());
        // The truncate lives in a helper called before any sync: flagged,
        // and the chain names the helper.
        let bad = r#"
            struct S { wal: W }
            impl S {
                fn reset_log(&self) { self.wal.truncate(); }
                fn seal(&self) {
                    self.reset_log();
                    self.wal.sync();
                }
            }
        "#;
        let got = run(bad, &["S::seal"]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("chain:"), "{}", got[0].message);
        assert_eq!(got[0].function, "reset_log");
    }

    #[test]
    fn non_wal_receivers_are_ignored() {
        let src = r#"
            struct S { wal: W, scratch: F }
            impl S {
                fn seal(&self) {
                    self.scratch.truncate();
                    self.wal.sync();
                    self.wal.truncate();
                }
            }
        "#;
        assert!(run(src, &["S::seal"]).is_empty());
    }

    #[test]
    fn unlisted_functions_are_not_checked() {
        // `checkpoint_wal` truncates sync-free but is not a root and is
        // not called from one — its callers carry the invariant.
        let src = r#"
            struct S { wal: W }
            impl S {
                fn checkpoint_wal(&self) { self.wal.truncate(); }
                fn seal(&self) { self.wal.sync(); }
            }
        "#;
        assert!(run(src, &["S::seal"]).is_empty());
    }

    #[test]
    fn unresolvable_root_is_a_hard_config_error() {
        let got = run("fn other() {}", &["S::seal"]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].file, "LINT.toml");
        assert!(
            got[0].message.contains("matches no function"),
            "{}",
            got[0].message
        );
    }
}
