//! Rule family 4: **codec coverage** — no `_ =>` arms in the wire codec.
//!
//! The encode/decode functions in `wire.rs` must match exhaustively over
//! named variants or bound tags (`tag => Err(UnknownKind(tag))`). A bare
//! `_ =>` arm silently swallows every future message kind: adding a
//! variant compiles clean and then misbehaves on the wire, which is the
//! worst possible place to discover it. Forcing named arms turns that
//! mistake into a compile error (non-exhaustive match) or at least a
//! reviewable line.
//!
//! Applies only to the functions listed in `[lint] codec_functions`
//! within the files listed in `[lint] codec_files`.

use crate::config::{Config, Rule};
use crate::lexer::Tok;
use crate::parse::FileModel;
use crate::rules::Finding;

/// Scan one configured file for wildcard match arms inside the
/// configured functions.
pub fn check(model: &FileModel, file: &str, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..model.tokens.len() {
        if model.in_test[i] {
            continue;
        }
        // Shape: `_` `=` `>` — the arm pattern is exactly the wildcard.
        // Tuple patterns like `(_, x) =>` or bound tags `tag =>` don't
        // match.
        if !matches!(&model.tokens[i].tok, Tok::Ident(s) if s == "_") {
            continue;
        }
        let arrow = matches!(
            model.tokens.get(i + 1).map(|t| &t.tok),
            Some(Tok::Punct('='))
        ) && matches!(
            model.tokens.get(i + 2).map(|t| &t.tok),
            Some(Tok::Punct('>'))
        );
        if !arrow {
            continue;
        }
        let function = model.fn_name(i);
        if !cfg.codec_functions.iter().any(|f| f == function) {
            continue;
        }
        out.push(Finding {
            rule: Rule::Codec,
            file: file.to_string(),
            line: model.tokens[i].line,
            function: function.to_string(),
            message: "wildcard `_ =>` arm in a codec function — bind the tag and \
                      return a typed error instead"
                .to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::model;

    fn cfg() -> Config {
        Config {
            codec_files: vec!["wire.rs".to_string()],
            codec_functions: vec!["decode_request".to_string(), "encode_request".to_string()],
            ..Config::default()
        }
    }

    #[test]
    fn wildcard_arm_in_codec_fn_is_flagged() {
        let src = r#"
            fn decode_request(tag: u8) -> Result<Request, WireError> {
                match tag {
                    1 => Ok(Request::Ping),
                    _ => Ok(Request::Ping),
                }
            }
        "#;
        let got = check(&model(lex(src)), "wire.rs", &cfg());
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("wildcard"));
    }

    #[test]
    fn bound_tag_arm_passes() {
        let src = r#"
            fn decode_request(tag: u8) -> Result<Request, WireError> {
                match tag {
                    1 => Ok(Request::Ping),
                    tag => Err(WireError::UnknownKind(tag)),
                }
            }
        "#;
        assert!(check(&model(lex(src)), "wire.rs", &cfg()).is_empty());
    }

    #[test]
    fn other_functions_in_the_file_are_exempt() {
        let src = r#"
            fn helper(tag: u8) -> u8 {
                match tag {
                    1 => 2,
                    _ => 0,
                }
            }
        "#;
        assert!(check(&model(lex(src)), "wire.rs", &cfg()).is_empty());
    }

    #[test]
    fn tuple_wildcards_are_not_arms() {
        let src = r#"
            fn decode_request(pair: (u8, u8)) -> u8 {
                match pair {
                    (_, x) => x,
                }
            }
        "#;
        assert!(check(&model(lex(src)), "wire.rs", &cfg()).is_empty());
    }
}
